"""Unit tests for cluster snapshots, targets, and configuration diffs."""

import pytest

from repro.cluster.instance import InstanceType, fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.state import (
    ClusterSnapshot,
    InstanceState,
    TargetConfiguration,
    diff_configuration,
    remaining_capacity,
    tasks_fit_on_type,
)
from repro.cluster.task import make_job

IT = InstanceType("m", "f", ResourceVector(4, 16, 64), 2.0)


def _mk_tasks(n, cpus=4):
    tasks = []
    for i in range(n):
        job = make_job(
            f"w{i}", {"*": ResourceVector(1, cpus, 8)}, 1.0, job_id=f"j{i}"
        )
        tasks.append(job.tasks[0])
    return tasks


def _snapshot(tasks, placements):
    """placements: dict instance -> task ids."""
    jobs = {}
    task_map = {}
    for t in tasks:
        task_map[t.task_id] = t
    for t in tasks:
        jobs.setdefault(t.job_id, make_job(
            t.workload, dict(t.demands), 1.0, job_id=t.job_id
        ))
    # Rebuild jobs from the actual tasks to keep ids consistent.
    from repro.cluster.task import Job
    jobs = {
        t.job_id: Job(
            job_id=t.job_id, tasks=(t,), arrival_time_s=0.0,
            duration_hours=1.0, workload=t.workload,
        )
        for t in tasks
    }
    instances = [
        InstanceState(instance=inst, task_ids=frozenset(tids))
        for inst, tids in placements.items()
    ]
    return ClusterSnapshot(time_s=0.0, tasks=task_map, jobs=jobs, instances=instances)


class TestFit:
    def test_tasks_fit_on_type(self):
        tasks = _mk_tasks(4)
        assert tasks_fit_on_type(tasks, IT)
        assert not tasks_fit_on_type(_mk_tasks(5), IT)

    def test_remaining_capacity(self):
        tasks = _mk_tasks(2)
        rem = remaining_capacity(IT, tasks)
        assert rem == ResourceVector(2, 8, 48)


class TestSnapshot:
    def test_unassigned_tasks(self):
        tasks = _mk_tasks(3)
        inst = fresh_instance(IT)
        snap = _snapshot(tasks, {inst: [tasks[0].task_id]})
        unassigned = {t.task_id for t in snap.unassigned_tasks()}
        assert unassigned == {tasks[1].task_id, tasks[2].task_id}

    def test_instance_of_and_neighbours(self):
        tasks = _mk_tasks(3)
        inst = fresh_instance(IT)
        snap = _snapshot(
            tasks, {inst: [tasks[0].task_id, tasks[1].task_id]}
        )
        assert snap.instance_of(tasks[0].task_id).instance_id == inst.instance_id
        assert snap.instance_of(tasks[2].task_id) is None
        co = snap.co_located_tasks(tasks[0].task_id)
        assert [t.task_id for t in co] == [tasks[1].task_id]


class TestTargetConfiguration:
    def test_assignment_and_cost(self):
        tasks = _mk_tasks(2)
        inst = fresh_instance(IT)
        target = TargetConfiguration.from_pairs(
            [(inst, [t.task_id for t in tasks])]
        )
        assert target.hourly_cost() == 2.0
        assert target.assignment() == {
            tasks[0].task_id: inst.instance_id,
            tasks[1].task_id: inst.instance_id,
        }

    def test_duplicate_assignment_rejected(self):
        tasks = _mk_tasks(1)
        a, b = fresh_instance(IT), fresh_instance(IT)
        target = TargetConfiguration.from_pairs(
            [(a, [tasks[0].task_id]), (b, [tasks[0].task_id])]
        )
        with pytest.raises(ValueError):
            target.assignment()

    def test_validate_unknown_task(self):
        tasks = _mk_tasks(1)
        snap = _snapshot(tasks, {})
        target = TargetConfiguration.from_pairs([(fresh_instance(IT), ["ghost"])])
        with pytest.raises(ValueError):
            target.validate(snap)

    def test_validate_oversubscription(self):
        tasks = _mk_tasks(5)
        snap = _snapshot(tasks, {})
        target = TargetConfiguration.from_pairs(
            [(fresh_instance(IT), [t.task_id for t in tasks])]
        )
        with pytest.raises(ValueError):
            target.validate(snap)


class TestDiff:
    def test_full_diff(self):
        tasks = _mk_tasks(3)
        kept = fresh_instance(IT)
        dropped = fresh_instance(IT)
        added = fresh_instance(IT)
        snap = _snapshot(
            tasks,
            {kept: [tasks[0].task_id], dropped: [tasks[1].task_id]},
        )
        target = TargetConfiguration.from_pairs(
            [
                (kept, [tasks[0].task_id, tasks[1].task_id]),
                (added, [tasks[2].task_id]),
            ]
        )
        diff = diff_configuration(snap, target)
        assert [ti.instance_id for ti in diff.launches] == [added.instance_id]
        assert diff.terminations == (dropped.instance_id,)
        assert diff.num_migrations == 1  # task 1 moved dropped -> kept
        assert diff.num_placements == 1  # task 2 placed fresh
        assert tasks[0].task_id in diff.unchanged_tasks

    def test_empty_diff(self):
        tasks = _mk_tasks(1)
        inst = fresh_instance(IT)
        snap = _snapshot(tasks, {inst: [tasks[0].task_id]})
        target = TargetConfiguration.from_pairs([(inst, [tasks[0].task_id])])
        diff = diff_configuration(snap, target)
        assert not diff.launches and not diff.terminations
        assert diff.num_migrations == 0 and diff.num_placements == 0
