"""Unit and property tests for reservation price (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.cluster.task import make_job
from repro.core.reservation_price import (
    InfeasibleTaskError,
    ReservationPriceCalculator,
    no_packing_cost,
)


class TestPaperExample:
    def test_table3_reservation_prices(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        prices = [calc.rp(t) for t in example_tasks]
        assert prices == [12.0, 3.0, 0.8, 0.4]

    def test_table3_rp_types(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        names = [calc.rp_type(t).name for t in example_tasks]
        assert names == ["it1", "it2", "it3", "it4"]

    def test_rp_of_set_additive(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        assert calc.rp_of_set(example_tasks) == pytest.approx(16.2)
        assert no_packing_cost(example_tasks, calc) == pytest.approx(16.2)


class TestMechanics:
    def test_infeasible_raises(self, example_catalog):
        job = make_job("huge", {"*": ResourceVector(100, 1, 1)}, 1.0)
        calc = ReservationPriceCalculator(example_catalog)
        with pytest.raises(InfeasibleTaskError):
            calc.rp(job.tasks[0])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ReservationPriceCalculator([])

    def test_ghost_types_ignored(self, example_catalog):
        from repro.cluster.instance import ghost_instance_type

        calc = ReservationPriceCalculator(list(example_catalog) + [ghost_instance_type()])
        job = make_job("w", {"*": ResourceVector(0, 1, 1)}, 1.0)
        # The ghost's zero cost must never be the RP.
        assert calc.rp(job.tasks[0]) == 0.4

    def test_cache_shared_across_identical_tasks(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        job = make_job("w", {"*": ResourceVector(0, 4, 8)}, 1.0, num_tasks=50)
        for task in job.tasks:
            calc.rp(task)
        assert len(calc._cache) == 1

    def test_family_specific_demand(self, catalog):
        from repro.workloads.workloads import workload

        calc = ReservationPriceCalculator(catalog)
        gcn = workload("GCN").make_job(1.0).tasks[0]
        # GCN needs 12 CPUs on P3 but only 6 on C7i/R7i; 40 GB RAM steers
        # it to the memory family.
        assert calc.rp_type(gcn).name == "r7i.2xlarge"

    def test_is_cost_efficient(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        it1 = example_catalog[0]
        assert calc.is_cost_efficient([example_tasks[0]], it1)  # 12 >= 12
        assert not calc.is_cost_efficient([example_tasks[1]], it1)  # 3 < 12


class TestProperties:
    demand = st.builds(
        ResourceVector,
        st.sampled_from([0.0, 1.0, 2.0, 4.0]),
        st.floats(min_value=1, max_value=16),
        st.floats(min_value=1, max_value=244),
    )

    @settings(max_examples=50, deadline=None)
    @given(demand)
    def test_rp_is_cheapest_feasible(self, demand):
        from repro.cloud.catalog import ec2_catalog

        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        job = make_job("w", {"*": demand}, 1.0)
        task = job.tasks[0]
        rp = calc.rp(task)
        feasible = [
            it.hourly_cost
            for it in catalog
            if task.demand_for(it.family).fits_within(it.capacity)
        ]
        assert rp == min(feasible)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1, max_value=8), st.floats(min_value=1, max_value=8))
    def test_rp_monotone_in_demand(self, small_cpu, extra):
        from repro.cloud.catalog import ec2_catalog

        calc = ReservationPriceCalculator(ec2_catalog())
        lo = make_job("w", {"*": ResourceVector(0, small_cpu, 4)}, 1.0).tasks[0]
        hi = make_job(
            "w", {"*": ResourceVector(0, small_cpu + extra, 4)}, 1.0
        ).tasks[0]
        assert calc.rp(hi) >= calc.rp(lo)


class TestCatalogTokenKeying:
    """Satellite-1 regression: RP-derived caches shared across schedulers
    must key on the catalog *content* snapshot, or two schedulers priced
    against different catalogs would serve each other's prices."""

    @staticmethod
    def _repriced(catalog, factor=2.0):
        from dataclasses import replace

        return [replace(it, hourly_cost=it.hourly_cost * factor) for it in catalog]

    def test_token_is_content_derived(self, example_catalog):
        a = ReservationPriceCalculator(example_catalog)
        b = ReservationPriceCalculator(list(example_catalog))
        assert a.catalog_token == b.catalog_token
        c = ReservationPriceCalculator(self._repriced(example_catalog))
        assert c.catalog_token != a.catalog_token

    def test_evaluator_cache_tokens_distinguish_catalogs(self, example_catalog):
        from repro.core.evaluation import RPEvaluator, TNRPEvaluator
        from repro.core.throughput_table import CoLocationThroughputTable

        a = ReservationPriceCalculator(example_catalog)
        c = ReservationPriceCalculator(self._repriced(example_catalog))
        assert RPEvaluator(a).cache_token() != RPEvaluator(c).cache_token()
        table = CoLocationThroughputTable()
        assert (
            TNRPEvaluator(a, table).cache_token()
            != TNRPEvaluator(c, table).cache_token()
        )

    def test_shared_caches_rebind_drops_stale_prices(self, example_catalog):
        """The cross-round TNRP memo survives rounds but not a catalog
        change: the same task must get each catalog's own price."""
        from repro.core.evaluation import TNRPCaches, TNRPEvaluator
        from repro.core.throughput_table import CoLocationThroughputTable

        job = make_job(
            "w", {"*": ResourceVector(0, 4, 8)}, 1.0, num_tasks=2, job_id="j"
        )
        jobs = {"j": job}
        task = job.tasks[0]
        table = CoLocationThroughputTable()
        caches = TNRPCaches()

        calc_a = ReservationPriceCalculator(example_catalog)
        ev_a = TNRPEvaluator(calc_a, table, jobs=jobs, caches=caches)
        value_a = ev_a.tnrp_from_tput(task, 0.5)
        assert caches.tnrp and caches.job_rp  # memos populated

        calc_b = ReservationPriceCalculator(self._repriced(example_catalog))
        ev_b = TNRPEvaluator(calc_b, table, jobs=jobs, caches=caches)
        # Construction rebinds the shared caches to the new catalog token
        # and drops every RP-derived entry.
        assert not caches.tnrp and not caches.job_rp
        value_b = ev_b.tnrp_from_tput(task, 0.5)
        assert value_b == pytest.approx(2.0 * value_a)
        # Rebinding back also invalidates (no cross-catalog survivors).
        ev_a2 = TNRPEvaluator(calc_a, table, jobs=jobs, caches=caches)
        assert not caches.tnrp
        assert ev_a2.tnrp_from_tput(task, 0.5) == value_a
