"""Unit tests for the simulated cloud provider."""

import numpy as np
import pytest

from repro.cloud.delays import DelayModel
from repro.cloud.provider import CapacityError, SimulatedCloud
from repro.cluster.instance import InstanceType, fresh_instance
from repro.cluster.resources import ResourceVector

IT = InstanceType("t", "f", ResourceVector(0, 4, 8), 1.0)


class TestLaunch:
    def test_receipt_and_billing(self):
        cloud = SimulatedCloud()
        receipt = cloud.launch(IT, 100.0)
        assert receipt.request_time_s == 100.0
        # Deterministic delays: acquisition 19s + setup 190s.
        assert receipt.ready_time_s == pytest.approx(100.0 + 209.0)
        assert receipt.attempts == 1
        assert cloud.active_instances() == [receipt.instance.instance_id]

    def test_premade_instance_identity_kept(self):
        cloud = SimulatedCloud()
        inst = fresh_instance(IT)
        receipt = cloud.launch(IT, 0.0, instance=inst)
        assert receipt.instance.instance_id == inst.instance_id

    def test_mismatched_premade_type_rejected(self):
        cloud = SimulatedCloud()
        other = InstanceType("o", "f", ResourceVector(0, 1, 1), 2.0)
        with pytest.raises(ValueError):
            cloud.launch(IT, 0.0, instance=fresh_instance(other))

    def test_terminate_stops_billing(self):
        cloud = SimulatedCloud()
        receipt = cloud.launch(IT, 0.0)
        cloud.terminate(receipt.instance.instance_id, 3600.0)
        assert cloud.total_cost(7200.0) == pytest.approx(1.0)


class TestStockouts:
    def test_stockout_adds_attempts(self):
        cloud = SimulatedCloud(
            stockout_probability=0.5, rng=np.random.default_rng(0)
        )
        receipts = []
        for _ in range(20):
            try:
                receipts.append(cloud.launch(IT, 0.0))
            except CapacityError:
                pass  # all four zones stocked out: possible at p=0.5
        assert any(r.attempts > 1 for r in receipts)

    def test_all_zones_stocked_out(self):
        cloud = SimulatedCloud(
            stockout_probability=0.999999, rng=np.random.default_rng(1)
        )
        with pytest.raises(CapacityError):
            for _ in range(50):
                cloud.launch(IT, 0.0)

    def test_retries_extend_ready_time(self):
        rng = np.random.default_rng(3)
        slow = SimulatedCloud(stockout_probability=0.9, rng=rng)
        fast = SimulatedCloud()
        slow_receipts = []
        for _ in range(20):
            try:
                slow_receipts.append(slow.launch(IT, 0.0))
            except CapacityError:
                pass
        multi = [r for r in slow_receipts if r.attempts > 1]
        baseline = fast.launch(IT, 0.0)
        assert multi, "expected at least one multi-attempt launch"
        assert all(r.ready_time_s > baseline.ready_time_s for r in multi)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCloud(stockout_probability=1.0)

    def test_zoneless_provider_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCloud(zones=())
