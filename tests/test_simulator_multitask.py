"""Deeper simulator tests: multi-task stragglers, re-migration, learning."""

import pytest

from repro.baselines import NoPackingScheduler
from repro.cluster.resources import ResourceVector
from repro.cluster.state import ClusterSnapshot, TargetConfiguration
from repro.core.interfaces import Scheduler
from repro.core.scheduler import EvaScheduler
from repro.interference.model import InterferenceModel
from repro.sim.simulator import ClusterSimulator, run_simulation
from repro.workloads.trace import Trace, sort_jobs_by_arrival
from repro.workloads.workloads import workload
from repro.cluster.task import make_job


def _trace(jobs, name="t"):
    return Trace(name=name, jobs=sort_jobs_by_arrival(jobs))


class _PackPairScheduler(Scheduler):
    """Deterministic test scheduler: puts everything on one big instance."""

    name = "pack-all"

    def __init__(self, catalog):
        from repro.cluster.instance import fresh_instance

        self._itype = next(it for it in catalog if it.name == "p3.16xlarge")
        self._fresh = fresh_instance
        self._instance = None

    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        if self._instance is None or not any(
            s.instance_id == self._instance.instance_id
            for s in snapshot.instances
        ):
            self._instance = self._fresh(self._itype)
        return TargetConfiguration.from_pairs(
            [(self._instance, list(snapshot.tasks))]
        )


class TestStragglerSemantics:
    def test_one_interfered_task_slows_whole_job(self, catalog):
        """A 2-task job with one task co-located at 0.5 finishes at the
        straggler's pace."""
        job = make_job(
            "W", {"*": ResourceVector(0, 2, 4)}, 1.0, num_tasks=2, job_id="mt"
        )
        lonely = make_job(
            "V", {"*": ResourceVector(0, 2, 4)}, 4.0, job_id="other"
        )
        trace = _trace([job, lonely])
        interference = InterferenceModel(uniform_value=0.5)
        result = run_simulation(
            trace,
            _PackPairScheduler(catalog),
            interference=interference,
            validate=True,
        )
        mt = next(j for j in result.jobs if j.job_id == "mt")
        # Both tasks co-located with 2 neighbours each: rate 0.25.
        assert mt.active_hours == pytest.approx(1.0 / 0.25, rel=0.05)

    def test_multi_task_idle_until_all_tasks_ready(self, catalog):
        """A job only progresses once every task is running."""
        job = workload("ResNet18-2").make_job(duration_hours=0.5, job_id="r2")
        trace = _trace([job])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        (outcome,) = result.jobs
        # Idle covers instance-ready (209s) + launch (80s) at least.
        assert outcome.idle_hours * 3600 >= 289.0 - 1.0


class TestMigrationEdgeCases:
    def test_remigration_before_resume_is_consistent(self, catalog):
        """Eva may re-plan a PENDING task; stale TASK_READY events must
        not resurrect the old placement."""
        jobs = [
            workload("ViT").make_job(
                duration_hours=1.0, arrival_time_s=i * 300.0, job_id=f"v{i}"
            )
            for i in range(3)
        ]
        trace = _trace(jobs)
        sim = ClusterSimulator(trace, EvaScheduler(catalog), validate=True)
        result = sim.run()
        assert result.num_jobs == 3
        # All instances cleaned up; ledger balanced.
        assert sim.cloud.ledger.active_instance_ids() == []

    def test_arrival_on_round_boundary(self, catalog):
        """A job arriving exactly at t = k·period is scheduled that round."""
        job = workload("A3C").make_job(duration_hours=0.2, arrival_time_s=600.0, job_id="a")
        trace = _trace([job])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        (outcome,) = result.jobs
        # Wait-for-round is zero: idle is only ready+launch delay.
        assert outcome.idle_hours * 3600 == pytest.approx(209.0 + 10.0, abs=1.0)


class TestOnlineLearning:
    def test_monitor_converges_to_ground_truth_pairs(self, catalog):
        """After co-residence, Eva's table holds the true pairwise value."""
        jobs = [
            workload("ViT").make_job(
                duration_hours=2.0, arrival_time_s=i * 300.0, job_id=f"l{i}"
            )
            for i in range(2)
        ]
        trace = _trace(jobs)
        eva = EvaScheduler(catalog)
        run_simulation(trace, eva, validate=True)
        table = eva.monitor.table
        # ViT aliases ResNet18: Figure 1 self-pair is 0.93.
        learned = table.tput("ViT", ["ViT"])
        assert learned == pytest.approx(0.93, abs=0.02)

    def test_learning_is_lower_bound_of_truth(self, catalog):
        from repro.interference.matrix import pairwise_throughput

        trace = _trace(
            [
                workload(name).make_job(
                    duration_hours=1.5, arrival_time_s=i * 600.0, job_id=f"j{i}"
                )
                for i, name in enumerate(
                    ("ViT", "CycleGAN", "OpenFOAM", "Diamond", "A3C")
                )
            ]
        )
        eva = EvaScheduler(catalog)
        run_simulation(trace, eva, validate=True)
        for (w, other), value in eva.monitor.table.pairwise_snapshot().items():
            assert value <= pairwise_throughput(w, other) + 1e-6
