"""ExperimentTable export formats: json/csv round trips, stable render."""

import json

import numpy as np

from repro.analysis.reporting import ExperimentTable


def _table() -> ExperimentTable:
    return ExperimentTable(
        title="Table X: demo",
        headers=("Scheduler", "Cost ($)", "Norm. Cost", "Jobs"),
        rows=(
            ("Eva", 123.456, "94.8%", 32),
            ("No-Packing", 130.0, "100.0%", 32),
        ),
        notes=("a note", "another note"),
    )


class TestJsonRoundTrip:
    def test_round_trip_is_exact(self):
        table = _table()
        assert ExperimentTable.from_json(table.to_json()) == table

    def test_accepts_dict_payload(self):
        table = _table()
        assert ExperimentTable.from_json(table.to_jsonable()) == table

    def test_numpy_cells_are_encodable(self):
        table = ExperimentTable(
            title="t",
            headers=("a", "b"),
            rows=((np.float64(1.5), np.int64(2)),),
        )
        payload = json.loads(table.to_json())
        assert payload["rows"] == [[1.5, 2]]
        restored = ExperimentTable.from_json(payload)
        assert restored.rows == ((1.5, 2),)
        assert restored == table  # numpy scalars compare equal to plain ones

    def test_render_of_round_trip_is_identical(self):
        table = _table()
        assert ExperimentTable.from_json(table.to_json()).render() == table.render()


class TestCsvRoundTrip:
    def test_round_trip_values(self):
        table = _table()
        restored = ExperimentTable.from_csv(
            table.to_csv(), title=table.title, notes=table.notes
        )
        assert restored == table

    def test_reemission_is_identity(self):
        csv_text = _table().to_csv()
        assert ExperimentTable.from_csv(csv_text).to_csv() == csv_text

    def test_quoting_survives(self):
        table = ExperimentTable(
            title="t",
            headers=("name", "value"),
            rows=(('comma, "quoted"', 1.0),),
        )
        restored = ExperimentTable.from_csv(table.to_csv())
        assert restored.rows[0][0] == 'comma, "quoted"'


class TestRenderUnchanged:
    def test_render_golden(self):
        """render() is the byte-level contract the old CLI printed."""
        expected = (
            "Table X: demo\n"
            "=============\n"
            "Scheduler   Cost ($)  Norm. Cost  Jobs\n"
            "--------------------------------------\n"
            "Eva         123.46    94.8%       32\n"
            "No-Packing  130.00    100.0%      32\n"
            "  note: a note\n"
            "  note: another note"
        )
        assert _table().render() == expected
