"""Property-style invariant checks over randomized small traces.

Every simulation — whatever the scheduler, seed, or spot configuration —
must preserve a few conservation laws:

* **No lost work**: every job in the trace either finishes (appears in
  the outcomes) or is still queued when the simulator stops; with the
  run-to-completion entry point that means *all* jobs finish, and the
  task counts match the trace exactly.
* **Billing floor**: the total bill is at least the cheapest hourly
  price times every instance's lifetime (spot runs use the discounted
  floor) — cost can exceed the floor (pricier SKUs) but never undercut
  it.
* **Time sanity**: the makespan covers the latest arrival and the latest
  finish, and no job finishes before it arrives or runs faster than its
  standalone duration.
* **Allocation sanity**: the time-weighted allocation integrator never
  reports a negative (or, with validation on, over-committed) ratio.
"""

from __future__ import annotations

import numpy as np
import pytest

import pickle

from repro.cloud.catalog import ec2_catalog
from repro.cloud.market import CreditModel, MarketConfig, MarketPool
from repro.cloud.provider import SimulatedCloud
from repro.cluster.resources import RESOURCE_NAMES
from repro.cluster.state import tasks_fit_on_type
from repro.core import make_scheduler
from repro.core.interfaces import Scheduler
from repro.core.protocol import (
    AssignTask,
    MigrateTask,
    TerminateInstance,
    replay_decision,
)
from repro.sim.accounting import (
    naive_deadline_totals,
    naive_failure_totals,
    naive_totals,
)
from repro.sim.batch import Scenario, TraceSpec, run_batch
from repro.sim.metrics import AllocationIntegrator, SimulationResult
from repro.sim.simulator import (
    ClusterSimulator,
    FailureConfig,
    RetryPolicy,
    SpotConfig,
    run_simulation,
)
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import Trace

_EPS = 1e-6


def _random_trace(seed: int) -> Trace:
    """A small trace whose size/durations vary with the seed."""
    rng = np.random.default_rng(seed)
    num_jobs = int(rng.integers(3, 9))
    lo = float(rng.uniform(0.2, 0.6))
    hi = lo + float(rng.uniform(0.5, 2.0))
    return synthetic_trace(
        num_jobs,
        seed=seed,
        duration_range_hours=(lo, hi),
        name=f"invariant-{seed}",
    )


def check_invariants(
    trace: Trace, result: SimulationResult, price_floor_factor: float = 1.0
) -> None:
    # -- no lost jobs or tasks ----------------------------------------
    assert result.num_jobs == len(trace)
    assert {o.job_id for o in result.jobs} == {j.job_id for j in trace}
    assert result.num_tasks == trace.num_tasks()

    # -- billing floor -------------------------------------------------
    min_hourly = min(t.hourly_cost for t in ec2_catalog() if t.hourly_cost > 0)
    floor = min_hourly * price_floor_factor * sum(result.uptimes_hours)
    assert result.total_cost >= floor - _EPS
    assert result.total_cost > 0
    assert all(u >= 0 for u in result.uptimes_hours)
    assert len(result.uptimes_hours) == result.instances_launched

    # -- time sanity ---------------------------------------------------
    makespan_s = result.makespan_hours * 3600.0
    last_arrival_s = max(j.arrival_time_s for j in trace)
    assert makespan_s + _EPS >= last_arrival_s
    for outcome in result.jobs:
        assert makespan_s + _EPS >= outcome.finish_s
        assert outcome.finish_s + _EPS >= outcome.arrival_s
        assert outcome.idle_hours >= -_EPS
        # Interference only slows jobs down (throughput <= 1), so no job
        # can beat its standalone duration.
        assert outcome.jct_hours + _EPS >= outcome.duration_hours

    # -- allocation sanity ---------------------------------------------
    for resource in RESOURCE_NAMES:
        assert result.allocation[resource] >= 0.0
        assert result.allocation[resource] <= 1.0 + _EPS
    assert result.tasks_per_instance >= 0.0
    assert result.migrations >= 0
    assert result.placements >= 0
    assert result.preemptions >= 0

    # -- SLO accounting consistency ------------------------------------
    check_slo_consistency(trace, result)

    # -- failure accounting consistency --------------------------------
    check_failure_consistency(result)


def check_failure_consistency(result: SimulationResult) -> None:
    """The reliability records must be complete and self-consistent.

    * the naive re-scan of the failure/repair records reproduces the
      incremental O(1)-per-event counters bit for bit (records are
      stored in dispatch/recovery order — the accumulation order);
    * every repair span is non-negative and goodput is a fraction;
    * a fault-free run carries exactly the zero defaults (so its pickle
      stays byte-identical to the pre-failure-subsystem encoding).
    """
    failures, restarts, lost, repairs, repair_s = naive_failure_totals(
        result.failure_outcomes, result.repair_outcomes
    )
    assert failures == result.instance_failures
    assert restarts == result.task_restarts
    assert lost == result.work_lost_h
    assert repairs == len(result.repair_outcomes)
    # statistics.mean is exact (fraction arithmetic); the naive float
    # sum may differ in the last ulp, so the *mean* is approx — the
    # bit-for-bit contract lives on the totals above.
    assert result.mean_mttr_s() == pytest.approx(
        repair_s / repairs if repairs else 0.0, rel=1e-12, abs=0.0
    )
    for outcome in result.failure_outcomes:
        assert outcome.kind in ("crash", "domain-shock")
        assert outcome.tasks_lost >= 0
        assert outcome.instance_index >= 0
        assert all(l > 0.0 for _, l in outcome.job_losses)
    for repair in result.repair_outcomes:
        assert repair.recovered_s >= repair.failed_s
    assert 0.0 < result.goodput_fraction <= 1.0
    if not result.failure_outcomes:
        assert result.task_restarts == 0
        assert result.work_lost_h == 0.0
        assert result.repair_outcomes == ()
        assert result.goodput_fraction == 1.0


def check_slo_consistency(trace: Trace, result: SimulationResult) -> None:
    """The deadline-SLO records must be complete and self-consistent.

    * exactly the deadline-bearing trace jobs have a record;
    * every record's lateness re-derives from its own finish/deadline
      and from the matching :class:`~repro.sim.metrics.JobOutcome`;
    * attainment counts partition: met + missed == deadline-bearing
      jobs <= all jobs, and zero total lateness iff zero misses;
    * the naive re-scan of the records reproduces the incremental
      O(delta) totals bit for bit (the records are stored in finish
      order, the order the totals accumulated in).
    """
    deadline_jobs = {
        j.job_id: j for j in trace if j.deadline_hours is not None
    }
    records = result.deadline_outcomes
    assert {r.job_id for r in records} == set(deadline_jobs)
    assert len(records) == len(deadline_jobs)
    outcomes = {o.job_id: o for o in result.jobs}
    for record in records:
        job = deadline_jobs[record.job_id]
        outcome = outcomes[record.job_id]
        assert record.finish_s == outcome.finish_s
        assert record.deadline_s == pytest.approx(
            outcome.arrival_s + job.deadline_hours * 3600.0
        )
        assert record.lateness_s == max(
            0.0, record.finish_s - record.deadline_s
        )
        assert record.met == (record.lateness_s == 0.0)

    assert result.deadline_job_count == len(deadline_jobs)
    assert 0 <= result.deadline_miss_count <= result.deadline_job_count
    assert (
        result.deadline_met_count + result.deadline_miss_count
        == result.deadline_job_count
        <= result.num_jobs
    )
    assert result.deadline_miss_count == sum(1 for r in records if not r.met)
    assert (result.deadline_total_lateness_s == 0.0) == (
        result.deadline_miss_count == 0
    )
    assert 0.0 <= result.deadline_attainment <= 1.0
    if deadline_jobs:
        assert result.deadline_attainment == (
            result.deadline_met_count / result.deadline_job_count
        )
    else:
        assert result.deadline_attainment == 1.0
        assert result.deadline_total_lateness_s == 0.0

    # Naive vs incremental SLO totals: byte-identical.
    jobs, misses, lateness = naive_deadline_totals(records)
    assert jobs == result.deadline_job_count
    assert misses == result.deadline_miss_count
    assert lateness == result.deadline_total_lateness_s


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("scheduler", ["eva", "stratus", "no-packing"])
def test_randomized_traces_preserve_invariants(scheduler, seed, catalog):
    trace = _random_trace(seed)
    result = run_simulation(
        trace, make_scheduler(scheduler, catalog), validate=True
    )
    check_invariants(trace, result)


@pytest.mark.parametrize("seed", [1, 4])
def test_spot_preemption_preserves_invariants(seed, catalog):
    trace = _random_trace(seed)
    result = run_simulation(
        trace,
        make_scheduler("eva", catalog),
        validate=True,
        spot=SpotConfig(enabled=True, preemption_rate_per_hour=0.5, seed=seed),
    )
    check_invariants(
        trace, result, price_floor_factor=SimulatedCloud().spot_discount
    )
    # Preempted tasks must be re-placed, never dropped.
    assert result.num_jobs == len(trace)


def test_invariants_hold_through_batch_layer():
    """The batch executor returns the same invariant-respecting results."""
    traces = [_random_trace(seed) for seed in (10, 11)]
    scenarios = [
        Scenario(scheduler=name, trace=trace, validate=True)
        for trace in traces
        for name in ("eva", "owl")
    ]
    outcomes = run_batch(scenarios, workers=2)
    for outcome in outcomes:
        trace = outcome.scenario.trace
        assert isinstance(trace, Trace)
        check_invariants(trace, outcome.result)


def test_results_identical_across_hash_seeds():
    """Simulations must not depend on hash-randomized set iteration.

    Regression test: Eva's repacking used to iterate ``frozenset``
    task-id fields directly, so tie-breaking (and float summation order)
    varied with ``PYTHONHASHSEED`` — two identical runs in different
    processes produced different costs.  This exact configuration
    (100-job Alibaba trace, Eva-RP, uniform 0.95 interference) diverged
    before the iteration order was pinned.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    src_dir = Path(repro.__file__).resolve().parents[1]
    script = (
        "from repro.core import make_scheduler\n"
        "from repro.cloud.catalog import ec2_catalog\n"
        "from repro.sim.simulator import run_simulation\n"
        "from repro.workloads.alibaba import synthesize_alibaba_trace\n"
        "from repro.interference.model import InterferenceModel\n"
        "trace = synthesize_alibaba_trace(100, seed=0)\n"
        "r = run_simulation(trace, make_scheduler('eva-rp', ec2_catalog()),\n"
        "                   interference=InterferenceModel(uniform_value=0.95))\n"
        "print(f'{r.total_cost:.12f} {r.migrations} {r.placements} "
        "{r.makespan_hours:.10f}')\n"
    )
    outputs = set()
    for hash_seed in ("0", "1"):
        env = {**os.environ, "PYTHONHASHSEED": hash_seed}
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"hash-seed-dependent results: {outputs}"


class _RecordingScheduler(Scheduler):
    """Transparent wrapper capturing every (snapshot, decision) pair."""

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.name = inner.name
        self.action_types = inner.action_types
        self.records: list[tuple] = []

    def schedule(self, snapshot):  # pragma: no cover - decide() is the path
        return self.inner.schedule(snapshot)

    def decide(self, snapshot, observations=()):
        decision = self.inner.decide(snapshot, observations)
        self.records.append((snapshot, decision))
        return decision


class TestActionConservation:
    """Action-level conservation laws over every round of real runs.

    For every decision an evaluation scheduler emits against a live
    snapshot: assignments target live tasks on capacity-respecting
    instances, terminations never strand a running task (a matching
    migrate/unassign must precede them in the stream), and the planned
    action stream round-trips — structurally replaying
    ``diff_target(snapshot, target)`` reproduces the target
    configuration exactly.
    """

    @staticmethod
    def _check_round(snapshot, decision):
        live_tasks = set(snapshot.tasks)
        for action in decision.actions:
            if isinstance(action, (AssignTask, MigrateTask)):
                assert action.task_id in live_tasks, (
                    f"action moves dead task {action.task_id}"
                )
        # replay_decision raises on: assigning an already-placed task,
        # migrating from the wrong source, terminating with tasks still
        # hosted (no matching unassign/migrate earlier in the stream),
        # and final-state over-subscription.
        final = replay_decision(snapshot, decision)
        # Terminated instances are really gone from the final state.
        for action in decision.actions:
            if isinstance(action, TerminateInstance):
                assert action.instance_id not in final
        # Per-instance capacity holds in the planned end state.
        instance_types = {
            st.instance_id: st.instance_type for st in snapshot.instances
        }
        for action in decision.actions:
            if hasattr(action, "instance"):  # LaunchInstance
                instance_types[action.instance_id] = (
                    action.instance.instance_type
                )
        for iid, task_ids in final.items():
            tasks = [snapshot.tasks[tid] for tid in sorted(task_ids)]
            assert tasks_fit_on_type(tasks, instance_types[iid]), iid
        # Round-trip: the planner's actions reproduce the target.
        if decision.target is not None:
            assert final == {
                ti.instance_id: ti.task_ids
                for ti in decision.target.instances
            }

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "scheduler", ["eva", "stratus", "synergy", "owl", "no-packing"]
    )
    def test_actions_conserve_tasks_and_instances(self, scheduler, seed, catalog):
        trace = _random_trace(seed)
        recorder = _RecordingScheduler(make_scheduler(scheduler, catalog))
        result = run_simulation(trace, recorder, validate=True)
        check_invariants(trace, result)
        assert recorder.records, "no scheduling rounds recorded"
        for snapshot, decision in recorder.records:
            self._check_round(snapshot, decision)

    @pytest.mark.parametrize("seed", [2, 5])
    def test_actions_conserve_under_spot_eviction_notices(self, seed, catalog):
        trace = _random_trace(seed)
        recorder = _RecordingScheduler(
            make_scheduler("eva-eviction-aware", catalog)
        )
        result = run_simulation(
            trace,
            recorder,
            validate=True,
            spot=SpotConfig(
                enabled=True,
                preemption_rate_per_hour=0.5,
                seed=seed,
                notice_s=600.0,
            ),
        )
        check_invariants(
            trace, result, price_floor_factor=SimulatedCloud().spot_discount
        )
        for snapshot, decision in recorder.records:
            self._check_round(snapshot, decision)


class _NaiveAccountingSimulator(ClusterSimulator):
    """The pre-incremental engine: re-scan the whole cluster per event.

    Uses the retained :func:`repro.sim.accounting.naive_totals` reference
    so the equivalence test below compares the incremental O(delta)
    accounting path against an independently derived ground truth.
    """

    def _account_until(self, time_s: float) -> None:
        dt = time_s - self._accounting_time_s
        if dt <= 0:
            return
        allocated, capacity, num_tasks, num_instances = naive_totals(
            self._instances, self._tasks
        )
        self._alloc.accumulate(dt, allocated, capacity, num_tasks, num_instances)
        self._accounting_time_s = time_s


class TestIncrementalAccountingEquivalence:
    """The O(delta) engine must be indistinguishable from a full re-scan."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("scheduler", ["eva", "stratus", "no-packing"])
    def test_results_byte_identical_to_naive_reference(
        self, scheduler, seed, catalog
    ):
        trace = _random_trace(seed)
        results = []
        for sim_cls in (ClusterSimulator, _NaiveAccountingSimulator):
            sim = sim_cls(trace=trace, scheduler=make_scheduler(scheduler, catalog))
            results.append(sim.run())
        incremental, naive = results
        assert pickle.dumps(incremental) == pickle.dumps(naive)

    def test_spot_preemption_byte_identical_to_naive_reference(self, catalog):
        trace = _random_trace(2)
        spot = SpotConfig(enabled=True, preemption_rate_per_hour=0.5, seed=2)
        results = []
        for sim_cls in (ClusterSimulator, _NaiveAccountingSimulator):
            sim = sim_cls(
                trace=trace, scheduler=make_scheduler("eva", catalog), spot=spot
            )
            results.append(sim.run())
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])

    def test_validate_mode_cross_checks_every_event(self, catalog):
        """validate=True asserts incremental == naive on every accounting
        step; a green run is itself an equivalence proof over the whole
        event stream."""
        trace = _random_trace(5)
        result = run_simulation(
            trace, make_scheduler("eva", catalog), validate=True
        )
        check_invariants(trace, result)


def _fuzz_scenario(seed: int) -> Scenario:
    """One seeded random scenario over the full configuration space.

    Draws scheduler (deadline-aware, eviction-aware, failure-aware, Eva,
    baselines) × spot market (off / on, with and without notice windows)
    × deadline knobs (fraction, tightness, warning horizon) × fault
    injection (crash/shock/straggler rates, retry backoff, checkpoint
    cadence and overhead) × period, on top of a seed-sized synthetic
    trace.  Everything derives from ``seed``, so a failing case replays
    exactly; ``validate=True`` arms the per-event accounting cross-check
    (including the naive failure/repair totals) and decision replay
    inside the run itself.
    """
    rng = np.random.default_rng(100_000 + seed)
    scheduler = ["eva", "eva-deadline", "eva-eviction-aware", "stratus",
                 "no-packing", "owl"][int(rng.integers(6))]
    num_jobs = int(rng.integers(3, 10))
    deadline_fraction = float(rng.choice([0.0, 0.3, 0.7, 1.0]))
    slack_lo = float(rng.uniform(1.02, 1.8))
    slack_hi = slack_lo + float(rng.uniform(0.0, 1.5))
    builder_roll = rng.random()
    if builder_roll < 0.3:
        # Replay-trace axis: the densified Alibaba/Gavel builders (the
        # vectorized packing kernel's target regime), shrunk to fuzz
        # size.  Durations are clipped tight so the scenario stays fast.
        trace = TraceSpec.make(
            "alibaba-replay" if builder_roll < 0.15 else "gavel-replay",
            num_jobs=num_jobs,
            seed=seed,
            arrival_rate_per_hour=float(rng.choice([20.0, 40.0])),
            clip_hours=float(rng.choice([2.0, 6.0])),
        )
    else:
        trace = TraceSpec.make(
            "synthetic",
            num_jobs=num_jobs,
            seed=seed,
            duration_range_hours=(float(rng.uniform(0.2, 0.5)),
                                  float(rng.uniform(0.6, 2.5))),
            mean_interarrival_s=float(rng.choice([300.0, 600.0, 1200.0])),
            deadline_fraction=deadline_fraction,
            deadline_slack_range=(slack_lo, slack_hi),
        )
    spot = None
    if rng.random() < 0.4:
        spot = SpotConfig(
            enabled=True,
            preemption_rate_per_hour=float(rng.uniform(0.1, 0.6)),
            seed=seed,
            notice_s=float(rng.choice([0.0, 300.0, 600.0])),
        )
    deadline_warning_s = float(
        rng.choice([0.0, 600.0, 3600.0, 7 * 24 * 3600.0])
    )
    period_s = float(rng.choice([150.0, 300.0]))
    # Fault-injection axis (drawn last so earlier axes replay unchanged
    # for a given seed against the pre-failure fuzz corpus).
    failures = None
    if rng.random() < 0.5:
        retry = RetryPolicy(
            backoff_base_s=float(rng.choice([0.0, 60.0, 300.0])),
            checkpoint_interval_s=float(rng.choice([600.0, 1800.0])),
            checkpoint_overhead=float(rng.choice([0.0, 0.02, 0.05])),
        )
        failures = FailureConfig(
            enabled=True,
            crash_rate_per_hour=float(rng.choice([0.0, 0.2, 0.5])),
            domain_shock_rate_per_hour=float(rng.choice([0.0, 0.15])),
            straggler_rate_per_hour=float(rng.choice([0.0, 0.4])),
            num_domains=int(rng.integers(2, 5)),
            retry=retry,
            seed=seed,
        )
        if rng.random() < 0.4:
            scheduler = "eva-failure"
    # Spot-market axis (drawn last so earlier axes replay unchanged for
    # a given seed against the pre-market fuzz corpus).
    market = None
    if rng.random() < 0.4:
        volatility = float(rng.choice([0.0, 0.15, 0.4]))
        pools = (
            MarketPool(
                name="fuzz-c",
                families=("c7i",),
                volatility=volatility,
                step_s=float(rng.choice([600.0, 1800.0])),
                capacity=int(rng.choice([0, 3])),
                min_multiplier=float(rng.choice([0.25, 0.5])),
            ),
            MarketPool(
                name="fuzz-r",
                families=("r7i",),
                volatility=volatility,
                step_s=1800.0,
            ),
        )
        credits = None
        if rng.random() < 0.3:
            credits = CreditModel(
                families=("c7i", "r7i"),
                initial_credit_s=float(rng.choice([1800.0, 7200.0])),
            )
        market = MarketConfig(
            enabled=True,
            pools=pools,
            seed=seed,
            eviction_coupling=float(rng.choice([0.0, 1.0, 2.0])),
            credits=credits,
        )
        if rng.random() < 0.4:
            scheduler = "eva-market"
    return Scenario(
        scheduler=scheduler,
        trace=trace,
        name=f"fuzz-{seed}",
        spot=spot,
        period_s=period_s,
        validate=True,
        seed=seed,
        deadline_warning_s=deadline_warning_s,
        failures=failures,
        market=market,
    )


class _NaiveSLOSimulator(ClusterSimulator):
    """Recomputes the SLO aggregates from scratch on every accounting step.

    Overwrites the incremental counters with a full re-scan of the
    finish-order records — results must stay byte-identical to the
    O(delta) path.
    """

    def _account_until(self, time_s: float) -> None:
        super()._account_until(time_s)
        jobs, misses, lateness = naive_deadline_totals(self._deadline_outcomes)
        self._acct.deadline_jobs = jobs
        self._acct.deadline_misses = misses
        self._acct.deadline_lateness_s = lateness


class _NaiveFailureSimulator(ClusterSimulator):
    """Recomputes the reliability aggregates from scratch every step.

    Same pattern as :class:`_NaiveSLOSimulator`, for the failure side:
    the O(1)-per-event restart/work-lost/repair counters are overwritten
    with a full replay of the dispatch-order records — results must stay
    byte-identical to the incremental path.
    """

    def _account_until(self, time_s: float) -> None:
        super()._account_until(time_s)
        failures, restarts, lost, repairs, repair_s = naive_failure_totals(
            self._failure_outcomes, self._repair_outcomes
        )
        self._acct.instance_failures = failures
        self._acct.task_restarts = restarts
        self._acct.work_lost_h = lost
        self._acct.repairs = repairs
        self._acct.repair_time_s = repair_s


class TestFuzzedScenarioInvariants:
    """Property-style fuzz layer over the full scenario space.

    Every generated case — scheduler × spot/notice × deadlines ×
    warning horizon — must satisfy the conservation laws, keep the SLO
    accounting consistent (naive == incremental, bit for bit), and
    produce byte-identical results serially and through the parallel
    batch path.
    """

    SEEDS = range(24)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzzed_scenario_preserves_invariants(self, seed):
        scenario = _fuzz_scenario(seed)
        outcome = run_batch([scenario], workers=1)[0]
        trace = scenario.trace.build(default_seed=scenario.seed)
        floor = 1.0
        if scenario.spot is not None and scenario.spot.enabled:
            floor = SimulatedCloud().spot_discount
        if scenario.market is not None and scenario.market.active:
            # Pool prices are clamped at min_multiplier, so the billing
            # floor scales by the deepest discount any pool can reach.
            floor *= min(p.min_multiplier for p in scenario.market.pools)
        check_invariants(trace, outcome.result, price_floor_factor=floor)

    def test_fuzzed_scenarios_deterministic_serial_vs_parallel(self):
        scenarios = [_fuzz_scenario(seed) for seed in self.SEEDS]
        serial = run_batch(scenarios, workers=1)
        parallel = run_batch(scenarios, workers=4)
        for s_out, p_out in zip(serial, parallel):
            assert pickle.dumps(s_out.result) == pickle.dumps(p_out.result), (
                s_out.scenario.name
            )

    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_fuzzed_slo_totals_naive_vs_incremental_byte_identical(
        self, seed, catalog
    ):
        scenario = _fuzz_scenario(seed)
        trace = scenario.trace.build(default_seed=scenario.seed)
        results = []
        for sim_cls in (ClusterSimulator, _NaiveSLOSimulator):
            sim = sim_cls(
                trace=trace,
                scheduler=make_scheduler(scenario.scheduler, catalog),
                period_s=scenario.period_s,
                spot=scenario.spot,
                deadline_warning_s=scenario.deadline_warning_s,
                failures=scenario.failures,
                market=scenario.market,
            )
            results.append(sim.run())
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])

    @pytest.mark.parametrize("seed", [1, 5, 9, 14])
    def test_fuzzed_failure_totals_naive_vs_incremental_byte_identical(
        self, seed, catalog
    ):
        scenario = _fuzz_scenario(seed)
        trace = scenario.trace.build(default_seed=scenario.seed)
        results = []
        for sim_cls in (ClusterSimulator, _NaiveFailureSimulator):
            sim = sim_cls(
                trace=trace,
                scheduler=make_scheduler(scenario.scheduler, catalog),
                period_s=scenario.period_s,
                spot=scenario.spot,
                deadline_warning_s=scenario.deadline_warning_s,
                failures=scenario.failures,
                market=scenario.market,
            )
            results.append(sim.run())
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])

    def test_fuzz_space_actually_covers_deadlines_and_schedulers(self):
        """The generator must exercise the axes it claims to fuzz."""
        scenarios = [_fuzz_scenario(seed) for seed in self.SEEDS]
        assert len(scenarios) >= 20
        schedulers = {s.scheduler for s in scenarios}
        assert "eva-deadline" in schedulers
        assert "eva-failure" in schedulers
        assert len(schedulers) >= 4
        assert any(s.spot is not None and s.spot.notice_s > 0 for s in scenarios)
        assert any(s.spot is None for s in scenarios)
        builders = {s.trace.builder for s in scenarios}
        assert {"synthetic", "alibaba-replay", "gavel-replay"} <= builders
        deadline_jobs = 0
        for scenario in scenarios:
            trace = scenario.trace.build(default_seed=scenario.seed)
            deadline_jobs += sum(
                1 for j in trace if j.deadline_hours is not None
            )
        assert deadline_jobs > 10
        # Fault-injection axis: both arms populated, every fault family
        # drawn somewhere, and backoff/checkpoint knobs actually vary.
        with_faults = [s.failures for s in scenarios if s.failures is not None]
        assert with_faults and any(s.failures is None for s in scenarios)
        assert any(f.crash_rate_per_hour > 0 for f in with_faults)
        assert any(f.domain_shock_rate_per_hour > 0 for f in with_faults)
        assert any(f.straggler_rate_per_hour > 0 for f in with_faults)
        assert len({f.retry.checkpoint_overhead for f in with_faults}) > 1
        # Spot-market axis: both arms populated, volatile and finite
        # pools drawn somewhere, the coupled eviction path exercised,
        # and the market-aware policy in the scheduler mix.
        with_market = [s.market for s in scenarios if s.market is not None]
        assert with_market and any(s.market is None for s in scenarios)
        assert "eva-market" in schedulers
        assert any(
            any(p.volatility > 0 for p in m.pools) for m in with_market
        )
        assert any(
            any(p.capacity > 0 for p in m.pools) for m in with_market
        )
        assert any(m.eviction_coupling > 0 for m in with_market)
        assert any(m.credits is not None for m in with_market)


class TestPackKernelByteIdentity:
    """End-to-end kernel equivalence: an entire simulation run under the
    vectorized packing kernel (forced onto every pool width) must produce
    byte-identical results to the scalar scan — the kernel is mechanism
    only, never policy."""

    @pytest.mark.parametrize("seed", [0, 2, 5, 9, 13, 17])
    def test_fuzzed_scenarios_identical_across_kernels(self, seed, monkeypatch):
        scenario = _fuzz_scenario(seed)
        trace = scenario.trace.build(default_seed=scenario.seed)
        catalog = ec2_catalog()
        results = []
        for kernel, min_lanes in (("scalar", "0"), ("numpy", "0")):
            monkeypatch.setenv("EVA_PACK_KERNEL", kernel)
            monkeypatch.setenv("EVA_PACK_NUMPY_MIN_LANES", min_lanes)
            sim = ClusterSimulator(
                trace=trace,
                scheduler=make_scheduler(scenario.scheduler, catalog),
                period_s=scenario.period_s,
                spot=scenario.spot,
                deadline_warning_s=scenario.deadline_warning_s,
                failures=scenario.failures,
                market=scenario.market,
            )
            results.append(sim.run())
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])

    def test_replay_trace_identical_across_kernels(self, monkeypatch):
        """The kernel's target regime: a (shrunk) replay trace with wide
        pools, run with the production lane threshold vs forced scalar."""
        spec = TraceSpec.make(
            "alibaba-replay",
            num_jobs=40,
            seed=1,
            arrival_rate_per_hour=40.0,
            clip_hours=4.0,
        )
        trace = spec.build(default_seed=1)
        catalog = ec2_catalog()
        results = []
        for kernel, min_lanes in (("scalar", "0"), ("numpy", "1")):
            monkeypatch.setenv("EVA_PACK_KERNEL", kernel)
            monkeypatch.setenv("EVA_PACK_NUMPY_MIN_LANES", min_lanes)
            sim = ClusterSimulator(
                trace=trace, scheduler=make_scheduler("eva", catalog)
            )
            results.append(sim.run())
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])


class TestAllocationIntegrator:
    def test_never_reports_negative_allocation(self):
        integrator = AllocationIntegrator()
        zero = {r: 0.0 for r in RESOURCE_NAMES}
        some = {r: 2.0 for r in RESOURCE_NAMES}
        cap = {r: 4.0 for r in RESOURCE_NAMES}
        # Negative and zero intervals are ignored, not subtracted.
        integrator.accumulate(-5.0, some, cap, 3, 2)
        integrator.accumulate(0.0, some, cap, 3, 2)
        assert integrator.allocation_ratios() == {r: 0.0 for r in RESOURCE_NAMES}
        assert integrator.tasks_per_instance() == 0.0

        integrator.accumulate(10.0, some, cap, 3, 2)
        ratios = integrator.allocation_ratios()
        for resource in RESOURCE_NAMES:
            assert ratios[resource] == pytest.approx(0.5)
        assert integrator.tasks_per_instance() == pytest.approx(1.5)

        # An idle stretch dilutes but never drives ratios negative.
        integrator.accumulate(10.0, zero, cap, 0, 2)
        for value in integrator.allocation_ratios().values():
            assert 0.0 <= value <= 1.0
