"""Unit tests for the migration-aware ensemble (§4.5)."""

import math

import numpy as np
import pytest

from repro.cloud.delays import DelayModel
from repro.cluster.instance import fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.state import (
    ClusterSnapshot,
    InstanceState,
    TargetConfiguration,
)
from repro.cluster.task import Job, make_job
from repro.core.ensemble import (
    EnsemblePolicy,
    PoissonEventEstimator,
    mean_time_to_full_reconfig_hours,
    migration_cost,
    provisioning_saving,
)
from repro.core.evaluation import RPEvaluator
from repro.core.reservation_price import ReservationPriceCalculator


class TestDurationFormula:
    def test_closed_form(self):
        # D = -1 / (lambda ln(1-p))
        assert mean_time_to_full_reconfig_hours(2.0, 0.5) == pytest.approx(
            -1.0 / (2.0 * math.log(0.5))
        )

    def test_monotone_in_p(self):
        low = mean_time_to_full_reconfig_hours(1.0, 0.1)
        high = mean_time_to_full_reconfig_hours(1.0, 0.9)
        assert high < low  # frequent triggers -> shorter expected duration

    def test_monotone_in_lambda(self):
        slow = mean_time_to_full_reconfig_hours(0.5, 0.3)
        fast = mean_time_to_full_reconfig_hours(5.0, 0.3)
        assert fast < slow

    def test_clamping_keeps_finite(self):
        assert math.isfinite(mean_time_to_full_reconfig_hours(0.0, 0.0))
        assert math.isfinite(mean_time_to_full_reconfig_hours(100.0, 1.0))

    def test_monte_carlo_agrees_with_formula(self):
        """Mean time until a Poisson event triggers (geometric trials)."""
        rng = np.random.default_rng(0)
        lam, p = 3.0, 0.25
        times = []
        for _ in range(4000):
            t = 0.0
            while True:
                t += rng.exponential(1.0 / lam)
                if rng.random() < p:
                    break
            times.append(t)
        empirical = float(np.mean(times))
        analytic = 1.0 / (lam * p)
        formula = mean_time_to_full_reconfig_hours(lam, p)
        assert empirical == pytest.approx(analytic, rel=0.1)
        # The paper's continuous approximation is close to the exact
        # geometric mean for small p.
        assert formula == pytest.approx(analytic, rel=0.2)


class TestEstimator:
    def test_rate_estimation(self):
        est = PoissonEventEstimator()
        est.record_events(5, 0.0)
        est.record_events(5, 3600.0)
        assert est.rate_per_hour == pytest.approx(10.0)

    def test_prior_rate_before_observations(self):
        est = PoissonEventEstimator(prior_rate_per_hour=2.5)
        assert est.rate_per_hour == 2.5

    def test_trigger_probability_laplace(self):
        est = PoissonEventEstimator()
        assert est.trigger_probability == pytest.approx(0.5)  # 1/2 prior
        est.record_events(8, 0.0)
        est.record_decision(True)
        est.record_decision(False)
        assert est.trigger_probability == pytest.approx(2.0 / 10.0)

    def test_negative_events_rejected(self):
        est = PoissonEventEstimator()
        with pytest.raises(ValueError):
            est.record_events(-1, 0.0)


def _snapshot_and_targets(example_catalog, calc):
    """One running task on it2; a queued task; two candidate targets."""
    running = make_job(
        "w", {"*": ResourceVector(1, 4, 10)}, 1.0, job_id="run"
    )
    queued = make_job(
        "w", {"*": ResourceVector(1, 4, 10)}, 1.0, job_id="que"
    )
    inst = fresh_instance(example_catalog[1])  # it2 $3
    snapshot = ClusterSnapshot(
        time_s=0.0,
        tasks={
            running.tasks[0].task_id: running.tasks[0],
            queued.tasks[0].task_id: queued.tasks[0],
        },
        jobs={"run": running, "que": queued},
        instances=[
            InstanceState(instance=inst, task_ids=frozenset({running.tasks[0].task_id}))
        ],
    )
    # Partial-style: keep the running task, open a new it2 for the queued.
    partial = TargetConfiguration.from_pairs(
        [
            (inst, [running.tasks[0].task_id]),
            (fresh_instance(example_catalog[1]), [queued.tasks[0].task_id]),
        ]
    )
    # Full-style: co-locate both on a fresh it1 (migrates the runner).
    full = TargetConfiguration.from_pairs(
        [
            (
                fresh_instance(example_catalog[0]),
                [running.tasks[0].task_id, queued.tasks[0].task_id],
            )
        ]
    )
    return snapshot, full, partial


class TestCosts:
    def test_provisioning_saving(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        snapshot, full, partial = _snapshot_and_targets(example_catalog, calc)
        # Partial: two it2 instances, each RP 3 vs cost 3 -> saving 0.
        assert provisioning_saving(partial, snapshot, ev) == pytest.approx(0.0)
        # Full: one it1 at $12 hosting RP 6 -> saving -6 (inefficient!).
        assert provisioning_saving(full, snapshot, ev) == pytest.approx(-6.0)

    def test_migration_cost_components(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        snapshot, full, partial = _snapshot_and_targets(example_catalog, calc)
        m_full = migration_cost(full, snapshot, DelayModel())
        m_partial = migration_cost(partial, snapshot, DelayModel())
        # Full migrates the running task and launches a pricier instance.
        assert m_full > m_partial > 0

    def test_migration_cost_scales_with_multiplier(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        snapshot, full, _ = _snapshot_and_targets(example_catalog, calc)
        base = migration_cost(full, snapshot, DelayModel())
        doubled = migration_cost(
            full, snapshot, DelayModel(migration_multiplier=2.0)
        )
        assert doubled > base

    def test_no_op_target_costs_nothing(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        snapshot, _, _ = _snapshot_and_targets(example_catalog, calc)
        keep = TargetConfiguration.from_pairs(
            [
                (s.instance, s.task_ids)
                for s in snapshot.instances
            ]
        )
        assert migration_cost(keep, snapshot, DelayModel()) == pytest.approx(0.0)


class TestPolicy:
    def test_chooses_partial_when_full_saves_nothing(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        snapshot, full, partial = _snapshot_and_targets(example_catalog, calc)
        policy = EnsemblePolicy()
        policy.record_events(4, 0.0)
        chosen, decision = policy.decide(full, partial, snapshot, ev)
        assert not decision.adopted_full
        assert chosen is partial
        assert decision.net_partial > decision.net_full

    def test_chooses_full_when_savings_dominate(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        running = make_job(
            "w", {"*": ResourceVector(2, 8, 24)}, 1.0, job_id="a"
        )
        other = make_job(
            "w", {"*": ResourceVector(1, 4, 10)}, 1.0, job_id="b"
        )
        big_a = fresh_instance(example_catalog[0])
        big_b = fresh_instance(example_catalog[0])
        snapshot = ClusterSnapshot(
            time_s=0.0,
            tasks={
                running.tasks[0].task_id: running.tasks[0],
                other.tasks[0].task_id: other.tasks[0],
            },
            jobs={"a": running, "b": other},
            instances=[
                InstanceState(big_a, frozenset({running.tasks[0].task_id})),
                InstanceState(big_b, frozenset({other.tasks[0].task_id})),
            ],
        )
        # Wasteful partial: keep both $12 instances (saving -12-9 = -21/hr
        # vs consolidation saving -9).
        partial = TargetConfiguration.from_pairs(
            [
                (big_a, [running.tasks[0].task_id]),
                (big_b, [other.tasks[0].task_id]),
            ]
        )
        full = TargetConfiguration.from_pairs(
            [
                (
                    big_a,
                    [running.tasks[0].task_id, other.tasks[0].task_id],
                )
            ]
        )
        policy = EnsemblePolicy()
        policy.record_events(2, 0.0)
        chosen, decision = policy.decide(full, partial, snapshot, ev)
        assert decision.adopted_full
        assert chosen is full

    def test_adoption_fraction_tracking(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        snapshot, full, partial = _snapshot_and_targets(example_catalog, calc)
        policy = EnsemblePolicy()
        for _ in range(4):
            policy.decide(full, partial, snapshot, ev)
        assert policy.full_adoption_fraction() == pytest.approx(0.0)
        assert len(policy.history) == 4

    def test_higher_migration_delay_discourages_full(self, example_catalog):
        """Figure 5a's mechanism: raising M_F flips the decision."""
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        running = make_job("w", {"*": ResourceVector(0, 4, 12)}, 1.0, job_id="a")
        queued = make_job("w", {"*": ResourceVector(0, 4, 12)}, 1.0, job_id="b")
        small = fresh_instance(example_catalog[3])  # it4 $0.4
        snapshot = ClusterSnapshot(
            time_s=0.0,
            tasks={
                running.tasks[0].task_id: running.tasks[0],
                queued.tasks[0].task_id: queued.tasks[0],
            },
            jobs={"a": running, "b": queued},
            instances=[InstanceState(small, frozenset({running.tasks[0].task_id}))],
        )
        partial = TargetConfiguration.from_pairs(
            [
                (small, [running.tasks[0].task_id]),
                (fresh_instance(example_catalog[3]), [queued.tasks[0].task_id]),
            ]
        )
        # "Full" consolidates both onto one it3 ($0.8 = RP sum): saving 0
        # but fewer instances; make it strictly better by using it4+it4
        # demands that fit an it3 with RP sum 0.8 == cost 0.8. Saving
        # equal; migration decides. With tiny delays full could win ties;
        # with huge delays partial must win.
        full = TargetConfiguration.from_pairs(
            [
                (
                    fresh_instance(example_catalog[2]),
                    [running.tasks[0].task_id, queued.tasks[0].task_id],
                )
            ]
        )
        slow = EnsemblePolicy(delay_model=DelayModel(migration_multiplier=100.0))
        slow.record_events(2, 0.0)
        _, decision = slow.decide(full, partial, snapshot, ev)
        assert not decision.adopted_full
