"""Integration tests for the master-worker runtime (artifact E1 style)."""

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import EvaScheduler
from repro.interference.model import no_interference_model
from repro.runtime.iterator import EvaIterator
from repro.runtime.master import EvaMaster
from repro.runtime.profiler import Profiler
from repro.workloads.workloads import workload


def _master(catalog):
    return EvaMaster(
        catalog=catalog,
        scheduler=EvaScheduler(catalog),
        interference=no_interference_model(),
    )


class TestMasterFlow:
    def test_e1_three_jobs_complete(self, catalog):
        master = _master(catalog)
        for name, dur in (
            ("ResNet18-2", 0.5),
            ("GraphSAGE", 0.4),
            ("A3C", 0.3),
        ):
            master.submit_job(
                workload(name).make_job(duration_hours=dur, job_id=name)
            )
        master.run_for(hours=1.0)
        assert len(master.completed) == 3
        stats = master.stats()
        assert stats["live_jobs"] == 0
        assert stats["active_instances"] == 0
        assert stats["total_cost"] > 0
        assert stats["rpc_calls"] > 0

    def test_duplicate_submission_rejected(self, catalog):
        master = _master(catalog)
        job = workload("A3C").make_job(duration_hours=0.1, job_id="dup")
        master.submit_job(job)
        with pytest.raises(ValueError):
            master.submit_job(job)

    def test_jct_reflects_duration(self, catalog):
        master = _master(catalog)
        master.submit_job(
            workload("A3C").make_job(duration_hours=0.5, job_id="j")
        )
        master.run_for(hours=1.0)
        (done,) = master.completed
        # Progress advances in period_s steps; JCT is within one period
        # of the ideal duration.
        assert done.jct_hours == pytest.approx(0.5, abs=master.period_s / 3600.0 + 1e-9)

    def test_cost_accrues_with_instances(self, catalog):
        master = _master(catalog)
        master.submit_job(
            workload("GPT2").make_job(duration_hours=0.2, job_id="g")
        )
        master.run_round()
        master.advance(600.0)
        assert master.total_cost() > 0


class TestEvaIterator:
    def test_throughput_window(self):
        clock = {"t": 0.0}
        it = EvaIterator(inner=(), clock=lambda: clock["t"])
        for _ in range(100):
            clock["t"] += 1.0
            it.record_iteration()
        # Window boundary is inclusive: 51 samples in [50, 100].
        assert it.throughput(window_s=50.0) == pytest.approx(1.0, rel=0.05)
        assert it.total_iterations == 100

    def test_iteration_protocol(self):
        clock = {"t": 0.0}

        def tick():
            clock["t"] += 0.5
            return clock["t"]

        it = EvaIterator(inner=range(10), clock=tick)
        consumed = list(it)
        assert consumed == list(range(10))
        assert it.total_iterations == 10

    def test_normalized_throughput_capped(self):
        clock = {"t": 0.0}
        it = EvaIterator(inner=(), clock=lambda: clock["t"])
        for _ in range(100):
            clock["t"] += 0.1
            it.record_iteration()
        assert it.normalized_throughput(standalone_iters_per_s=5.0, window_s=5.0) == 1.0

    def test_invalid_window(self):
        it = EvaIterator(inner=())
        with pytest.raises(ValueError):
            it.throughput(window_s=0.0)


class TestProfiler:
    def test_profile_caches_per_workload(self, catalog):
        profiler = Profiler(catalog=catalog, window_s=10.0)
        task = workload("GCN").make_job(1.0).tasks[0]
        first = profiler.standalone_throughput(task, true_iters_per_s=2.0)
        second = profiler.standalone_throughput(task, true_iters_per_s=99.0)
        assert first == pytest.approx(2.0, rel=0.1)
        assert second == first  # cached; the 99.0 run never happens
        assert profiler.profiles_run == 1

    def test_invalidate_forces_reprofile(self, catalog):
        profiler = Profiler(catalog=catalog, window_s=10.0)
        task = workload("GCN").make_job(1.0).tasks[0]
        profiler.standalone_throughput(task, true_iters_per_s=2.0)
        profiler.invalidate("GCN")
        profiler.standalone_throughput(task, true_iters_per_s=4.0)
        assert profiler.profiles_run == 2

    def test_profiling_instance_is_rp_type(self, catalog):
        profiler = Profiler(catalog=catalog)
        task = workload("GPT2").make_job(1.0).tasks[0]
        assert profiler.profiling_instance_type(task).name == "p3.8xlarge"
