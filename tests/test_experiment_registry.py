"""ExperimentSpec registry tests: coverage, equivalence with directly
composed simulations, multi-seed presentation, and cache integration."""

import pytest

import repro.experiments  # noqa: F401 — populates the registry
from repro.analysis.comparison import STANDARD_SCHEDULERS, comparison_from_results
from repro.cloud.catalog import ec2_catalog
from repro.core import make_scheduler
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get_experiment,
    register,
    run_experiment,
)
from repro.sim.results import ResultStore
from repro.sim.simulator import run_simulation
from repro.workloads.alibaba import (
    alibaba_gavel_trace,
    alibaba_multi_gpu_trace,
    alibaba_multi_task_trace,
    remix_multi_gpu,
    remix_multi_task,
    synthesize_alibaba_trace,
)
from repro.workloads.synthetic import small_physical_trace

ALL_IDS = {
    "deadline-slo",
    "reliability",
    "fig01", "fig04", "fig05", "fig06", "fig07", "fig08",
    "spot-eviction",
    "spot-market",
    "table01", "table04", "table05", "table06", "table07",
    "table08", "table09", "table10", "table11", "table12",
    "table13", "table14",
}

GRID_IDS = {
    "deadline-slo",
    "reliability",
    "fig04", "fig05", "fig06", "fig07", "fig08",
    "spot-eviction",
    "spot-market",
    "table06", "table10", "table11", "table13", "table14",
}


class TestRegistryCoverage:
    def test_every_experiment_registered(self):
        assert set(experiment_ids()) == ALL_IDS

    def test_kinds(self):
        for spec in all_specs():
            expected = "grid" if spec.id in GRID_IDS else "direct"
            assert spec.kind == expected, spec.id

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("tableXX")

    def test_conflicting_registration_rejected(self):
        spec = get_experiment("table11")
        clone = ExperimentSpec(
            id="table11", title="imposter", build=spec.build, aggregate=spec.aggregate
        )
        with pytest.raises(ValueError):
            register(clone)

    def test_spec_shape_validated(self):
        with pytest.raises(ValueError):
            ExperimentSpec(id="bad", title="neither grid nor direct")


class TestEquivalence:
    """Single-seed registry runs == directly composed simulations."""

    def test_table11_byte_identical_to_manual_composition(self):
        run = run_experiment("table11", ExperimentContext(seed=0))

        catalog = ec2_catalog()
        trace = small_physical_trace(seed=0)
        manual = {}
        for display, registry_name in STANDARD_SCHEDULERS.items():
            manual[display] = run_simulation(
                trace, make_scheduler(registry_name, catalog)
            )
        expected = comparison_from_results(trace, manual).allocation_table(
            "Table 11: end-to-end experiment with 32 jobs"
        )
        assert run.value.table == expected
        assert run.presentation.text == expected.render()

    def test_run_shim_matches_registry(self):
        from repro.experiments import table11_e2e_small

        assert (
            table11_e2e_small.run().table
            == run_experiment("table11", ExperimentContext()).value.table
        )

    def test_named_remix_builders_match_inline_remixes(self):
        base = synthesize_alibaba_trace(40, seed=5)
        assert (
            alibaba_multi_gpu_trace(40, 0.4, seed=5).to_json()
            == remix_multi_gpu(base, 0.4, seed=5).to_json()
        )
        assert (
            alibaba_multi_task_trace(40, 0.4, seed=5).to_json()
            == remix_multi_task(base, 0.4, seed=5).to_json()
        )
        assert alibaba_gavel_trace(30, seed=2).name == "alibaba-gavel-30"


class TestGridExecution:
    def test_every_grid_spec_builds_a_consistent_grid(self):
        ctx = ExperimentContext(
            seed=0, params={"num_jobs": 20, "trials": 2, "jobs_per_trial": 6}
        )
        for spec_id in sorted(GRID_IDS):
            grid = get_experiment(spec_id).build(ctx)
            assert grid.cells, spec_id
            labels = {(c.point, c.display) for c in grid.cells}
            assert len(labels) == len(grid.cells), f"{spec_id}: duplicate cells"
            for cell in grid.cells:
                assert cell.scenario.name is not None

    def test_cache_makes_second_run_simulation_free(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_experiment("table11", ExperimentContext(store=store))
        assert first.cache.misses == len(STANDARD_SCHEDULERS)
        second = run_experiment("table11", ExperimentContext(store=store))
        assert second.cache.misses == 0
        assert second.cache.hits == len(STANDARD_SCHEDULERS)
        assert second.presentation.text == first.presentation.text

    def test_multi_seed_emits_mean_std_columns(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_experiment(
            "table11", ExperimentContext(seeds=(0, 1), store=store)
        )
        assert run.seeds == (0, 1)
        [table] = run.presentation.tables
        assert "Norm. Cost" in table.headers
        assert all("±" in row[1] for row in table.rows)
        eva_row = next(row for row in table.rows if row[0] == "Eva")
        assert "±" in eva_row[2]
        # trial values come from the same scenarios a single-seed run uses
        aggregate = run.value.by_label()["Eva"]
        single = run_experiment(
            "table11", ExperimentContext(seed=1, store=store)
        )
        assert aggregate.total_cost.values[1] == pytest.approx(
            single.value.comparison.results["Eva"].total_cost
        )

    def test_direct_specs_ignore_seeds(self):
        run = run_experiment(
            "table08", ExperimentContext(seeds=(0, 1), params={"num_jobs": 1000})
        )
        assert run.seeds is None
        assert len(run.value.rows) == 5

    def test_table06_opts_out_of_generic_reseeding(self):
        # Its grid axis already is a seed sweep; generic reseeding would
        # collapse every trial onto one seed, so seeds are ignored.
        assert get_experiment("table06").multi_seed is False
        run = run_experiment(
            "table06",
            ExperimentContext(
                seeds=(0, 1), params={"trials": 2, "jobs_per_trial": 6}
            ),
        )
        assert run.seeds is None
        assert set(run.value.norm_costs) == {"No-Packing", "Eva-Single", "Eva-Multi"}


class TestJsonPayload:
    def test_run_payload_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_experiment("table11", ExperimentContext(store=store))
        payload = run.to_jsonable()
        assert payload["id"] == "table11"
        assert payload["kind"] == "grid"
        assert payload["cache"]["misses"] == 5
        assert payload["tables"][0]["headers"][0] == "Scheduler"
        assert payload["text"] == run.presentation.text
