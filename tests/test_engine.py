"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.JOB_ARRIVAL, "late"))
        q.push(Event(5.0, EventKind.JOB_ARRIVAL, "early"))
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_priority_within_timestamp(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.SCHEDULING_ROUND))
        q.push(Event(1.0, EventKind.JOB_FINISH, ("j", 1)))
        q.push(Event(1.0, EventKind.JOB_ARRIVAL, "job"))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.JOB_ARRIVAL,
            EventKind.JOB_FINISH,
            EventKind.SCHEDULING_ROUND,
        ]

    def test_fifo_among_equal(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.TASK_READY, "first"))
        q.push(Event(1.0, EventKind.TASK_READY, "second"))
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(Event(3.0, EventKind.JOB_ARRIVAL))
        assert q.peek_time() == 3.0
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, EventKind.JOB_ARRIVAL))
