"""Unit tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import line_chart, sweep_chart


class TestLineChart:
    def test_renders_title_and_legend(self):
        text = line_chart(
            "demo", [1, 2, 3], {"Eva": [0.9, 0.8, 0.7], "Stratus": [1.0, 0.9, 0.85]}
        )
        assert text.splitlines()[0] == "demo"
        assert "* Eva" in text
        assert "o Stratus" in text

    def test_extremes_on_axis_labels(self):
        text = line_chart("t", [0, 10], {"s": [2.0, 4.0]})
        assert "4.000" in text
        assert "2.000" in text

    def test_flat_series_renders(self):
        text = line_chart("flat", [1, 2], {"s": [1.0, 1.0]})
        assert "*" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart("t", [1, 2], {"s": [1.0]})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            line_chart("t", [], {"s": []})
        with pytest.raises(ValueError):
            line_chart("t", [1], {})

    def test_y_label_included(self):
        text = line_chart("t", [1, 2], {"s": [1, 2]}, y_label="cost")
        assert "y: cost" in text


class TestSweepChart:
    def test_from_norm_cost_mapping(self):
        norm_cost = {
            ("Eva", 0.5): 0.9,
            ("Eva", 1.0): 0.8,
            ("No-Packing", 0.5): 1.0,
            ("No-Packing", 1.0): 1.0,
        }
        text = sweep_chart("Figure 8", norm_cost)
        assert "Eva" in text and "No-Packing" in text

    def test_incomplete_series_dropped(self):
        norm_cost = {
            ("Eva", 0.5): 0.9,
            ("Eva", 1.0): 0.8,
            ("Partial", 0.5): 0.95,  # missing x=1.0 -> dropped
        }
        text = sweep_chart("t", norm_cost)
        assert "Eva" in text
        assert "Partial" not in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_chart("t", {})

    def test_integrates_with_experiment_result_shape(self):
        """The sweep drivers' norm_cost dicts plot directly."""
        from repro.experiments import fig08_arrival_rate

        result = fig08_arrival_rate.run(num_jobs=30)
        text = sweep_chart("Figure 8 (tiny)", result.norm_cost)
        assert "Eva" in text
