"""Unit tests for the in-process RPC bus."""

import pytest

from repro.runtime.rpc import RpcBus, RpcError


def _echo_service(bus):
    bus.register("echo", {"say": lambda text: {"text": text}})


class TestBus:
    def test_register_and_call(self):
        bus = RpcBus()
        _echo_service(bus)
        assert bus.call("echo", "say", text="hi") == {"text": "hi"}
        assert bus.calls_made == 1

    def test_channel(self):
        bus = RpcBus()
        _echo_service(bus)
        channel = bus.channel("echo")
        assert channel.call("say", text="yo") == {"text": "yo"}

    def test_duplicate_service_rejected(self):
        bus = RpcBus()
        _echo_service(bus)
        with pytest.raises(RpcError):
            _echo_service(bus)

    def test_unknown_service(self):
        bus = RpcBus()
        with pytest.raises(RpcError):
            bus.call("nope", "x")
        with pytest.raises(RpcError):
            bus.channel("nope")

    def test_unknown_method(self):
        bus = RpcBus()
        _echo_service(bus)
        with pytest.raises(RpcError):
            bus.call("echo", "shout", text="hi")

    def test_unregister(self):
        bus = RpcBus()
        _echo_service(bus)
        bus.unregister("echo")
        with pytest.raises(RpcError):
            bus.call("echo", "say", text="hi")

    def test_services_listing(self):
        bus = RpcBus()
        _echo_service(bus)
        bus.register("other", {})
        assert bus.services() == ["echo", "other"]


class TestSerialization:
    def test_non_serializable_request_rejected(self):
        bus = RpcBus()
        bus.register("s", {"m": lambda value: {"ok": True}})
        with pytest.raises(RpcError):
            bus.call("s", "m", value=object())

    def test_non_serializable_response_rejected(self):
        bus = RpcBus()
        bus.register("s", {"m": lambda: {"bad": object()}})
        with pytest.raises(RpcError):
            bus.call("s", "m")

    def test_non_dict_response_rejected(self):
        bus = RpcBus()
        bus.register("s", {"m": lambda: 42})
        with pytest.raises(RpcError):
            bus.call("s", "m")

    def test_non_string_dict_keys_rejected(self):
        bus = RpcBus()
        bus.register("s", {"m": lambda: {"map": {1: "x"}}})
        with pytest.raises(RpcError):
            bus.call("s", "m")

    def test_nested_payloads_allowed(self):
        bus = RpcBus()
        bus.register(
            "s", {"m": lambda: {"nested": {"list": [1, 2.5, "x", None, True]}}}
        )
        assert bus.call("s", "m")["nested"]["list"] == [1, 2.5, "x", None, True]
