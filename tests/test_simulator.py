"""Integration-grade unit tests for the cluster simulator (§5)."""

import pytest

from repro.baselines import NoPackingScheduler
from repro.cloud.delays import DelayModel
from repro.cluster.resources import ResourceVector
from repro.core.scheduler import EvaScheduler
from repro.interference.model import InterferenceModel, no_interference_model
from repro.sim.simulator import ClusterSimulator, run_simulation
from repro.workloads.trace import Trace, sort_jobs_by_arrival
from repro.workloads.workloads import workload
from repro.workloads.synthetic import synthetic_trace


def _trace(specs, name="t"):
    """specs: list of (workload_name, duration_h, arrival_s[, num_tasks])."""
    jobs = []
    for i, spec in enumerate(specs):
        wname, dur, arrival = spec[:3]
        num_tasks = spec[3] if len(spec) > 3 else None
        jobs.append(
            workload(wname).make_job(
                duration_hours=dur,
                arrival_time_s=arrival,
                num_tasks=num_tasks,
                job_id=f"{name}-{i}",
            )
        )
    return Trace(name=name, jobs=sort_jobs_by_arrival(jobs))


class TestSingleJob:
    def test_jct_decomposition_no_interference(self, catalog):
        """JCT = wait-for-round + instance ready + launch + duration."""
        trace = _trace([("A3C", 1.0, 10.0)])
        result = run_simulation(
            trace, NoPackingScheduler(catalog), validate=True
        )
        job = result.jobs[0]
        # Round fires at 300s (period boundary); instance ready 209s
        # later; A3C launch delay 10s; then 1h of work.
        expected_start = 300.0 + 209.0 + 10.0
        expected_jct_h = (expected_start - 10.0) / 3600.0 + 1.0
        assert job.jct_hours == pytest.approx(expected_jct_h, abs=1e-6)
        assert job.idle_hours == pytest.approx(
            (expected_start - 10.0) / 3600.0, abs=1e-6
        )
        assert job.normalized_tput == pytest.approx(1.0)

    def test_billing_matches_uptime(self, catalog):
        trace = _trace([("A3C", 1.0, 0.0)])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        # One c7i.xlarge from t=0 (round at 0) to job end.
        expected_uptime_h = (209.0 + 10.0) / 3600.0 + 1.0
        assert result.total_cost == pytest.approx(
            0.1785 * expected_uptime_h, rel=1e-6
        )
        assert result.instances_launched == 1

    def test_multi_task_job_completes_together(self, catalog):
        trace = _trace([("ResNet18-2", 0.5, 0.0)])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        assert result.num_jobs == 1
        assert result.jobs[0].num_tasks == 2
        assert result.instances_launched == 2  # no packing: one per task


class TestInterference:
    def test_colocation_stretches_duration(self, catalog):
        """Two co-located GCN+A3C tasks run at Figure-1 rates."""
        trace = _trace([("GCN", 1.0, 0.0), ("A3C", 1.0, 0.0)])
        uniform = InterferenceModel(uniform_value=0.5)
        eva = EvaScheduler(catalog)
        result = run_simulation(trace, eva, interference=uniform)
        for job in result.jobs:
            # If ever co-located, active time > duration.
            assert job.normalized_tput <= 1.0

    def test_no_interference_means_unit_tput(self, catalog):
        trace = synthetic_trace(10, seed=0)
        result = run_simulation(
            trace,
            EvaScheduler(catalog),
            interference=no_interference_model(),
        )
        for job in result.jobs:
            assert job.normalized_tput == pytest.approx(1.0, abs=1e-6)

    def test_work_conservation(self, catalog):
        """Every job finishes exactly its standalone work."""
        trace = synthetic_trace(15, seed=2)
        sim = ClusterSimulator(trace, EvaScheduler(catalog))
        result = sim.run()
        assert result.num_jobs == 15
        for job in result.jobs:
            # JCT >= duration always; active time >= duration.
            assert job.jct_hours >= job.duration_hours - 1e-9
            assert job.active_hours >= job.duration_hours - 1e-6


class TestDeterminism:
    def test_same_seed_same_result(self, catalog):
        trace = synthetic_trace(20, seed=3)
        a = run_simulation(trace, EvaScheduler(catalog))
        b = run_simulation(trace, EvaScheduler(catalog))
        assert a.total_cost == pytest.approx(b.total_cost)
        assert a.migrations == b.migrations
        assert [j.finish_s for j in a.jobs] == [j.finish_s for j in b.jobs]


class TestDelays:
    def test_longer_migration_delays_increase_idle(self, catalog):
        trace = synthetic_trace(20, seed=4)
        fast = run_simulation(
            trace, EvaScheduler(catalog), delay_model=DelayModel()
        )
        slow = run_simulation(
            trace,
            EvaScheduler(
                catalog, delay_model=DelayModel(migration_multiplier=10.0)
            ),
            delay_model=DelayModel(migration_multiplier=10.0),
        )
        assert slow.mean_idle_hours() >= fast.mean_idle_hours() - 1e-6

    def test_instance_ready_time_gates_start(self, catalog):
        trace = _trace([("GPT2", 0.5, 0.0)])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        job = result.jobs[0]
        # GPT2 launch is 15s; instance ready 209s dominates.
        assert job.idle_hours * 3600.0 == pytest.approx(209.0 + 15.0, abs=1.0)


class TestLifecycle:
    def test_all_instances_terminated_at_end(self, catalog):
        trace = synthetic_trace(12, seed=5)
        sim = ClusterSimulator(trace, EvaScheduler(catalog))
        result = sim.run()
        assert sim.cloud.ledger.active_instance_ids() == []
        assert result.instances_launched >= 1

    def test_validate_mode_passes(self, catalog):
        trace = synthetic_trace(12, seed=6)
        run_simulation(trace, EvaScheduler(catalog), validate=True)

    def test_scheduling_rounds_counted(self, catalog):
        trace = _trace([("A3C", 0.5, 0.0)])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        assert result.scheduling_rounds >= 1

    def test_empty_gaps_skip_rounds(self, catalog):
        """Rounds stop while the system is empty between jobs."""
        trace = _trace([("A3C", 0.1, 0.0), ("A3C", 0.1, 7 * 3600.0)])
        result = run_simulation(trace, NoPackingScheduler(catalog))
        # ~0.25h of activity per job; a naive fixed cadence would run
        # ~84 rounds over 7h.
        assert result.scheduling_rounds < 30

    def test_period_must_be_positive(self, catalog):
        trace = _trace([("A3C", 0.1, 0.0)])
        with pytest.raises(ValueError):
            ClusterSimulator(trace, NoPackingScheduler(catalog), period_s=0)


class TestMetricsPlumbing:
    def test_allocation_between_zero_and_one(self, catalog):
        trace = synthetic_trace(15, seed=7)
        result = run_simulation(trace, EvaScheduler(catalog))
        for value in result.allocation.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_tasks_per_instance_at_least_one_when_packed(self, catalog):
        trace = synthetic_trace(15, seed=8)
        result = run_simulation(trace, EvaScheduler(catalog))
        assert result.tasks_per_instance > 0.5

    def test_uptime_count_matches_launches(self, catalog):
        trace = synthetic_trace(10, seed=9)
        result = run_simulation(trace, NoPackingScheduler(catalog))
        assert len(result.uptimes_hours) == result.instances_launched

    def test_eva_reports_adoption_fraction(self, catalog):
        trace = synthetic_trace(10, seed=10)
        result = run_simulation(trace, EvaScheduler(catalog))
        assert result.full_adoption_fraction is not None
        assert 0.0 <= result.full_adoption_fraction <= 1.0

    def test_baseline_has_no_adoption_fraction(self, catalog):
        trace = synthetic_trace(5, seed=11)
        result = run_simulation(trace, NoPackingScheduler(catalog))
        assert result.full_adoption_fraction is None
