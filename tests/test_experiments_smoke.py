"""Smoke tests: every experiment driver runs at miniature scale and
produces the paper's row structure.  Full-scale numbers come from the
benchmark harness."""

import pytest

from repro.experiments import (
    fig01_interference,
    fig04_interference_sweep,
    fig05_migration_sweep,
    fig06_workload_mix,
    fig07_multitask_sweep,
    fig08_arrival_rate,
    table01_delays,
    table04_microbench,
    table05_runtime,
    table06_multitask,
    table07_workloads,
    table10_e2e_large,
    table11_e2e_small,
    table12_fidelity,
    table13_alibaba,
    table14_gavel,
)


class TestDataTables:
    def test_fig01_matches_published(self):
        table = fig01_interference.run()
        assert "0.0000" in table.notes[0]

    def test_table01(self):
        table = table01_delays.run(samples=100)
        assert len(table.rows) == 4

    def test_table07(self):
        assert len(table07_workloads.run_table7().rows) == 10

    def test_table08(self):
        table = table07_workloads.run_table8(num_jobs=1500)
        assert len(table.rows) == 5

    def test_table09(self):
        table = table07_workloads.run_table9(num_jobs=1500)
        assert len(table.rows) == 2


class TestMicrobenches:
    def test_table04_tiny(self):
        result = table04_microbench.run(
            trials=2, num_tasks=12, ilp_time_limit_s=10
        )
        assert result.full_reconfig_norm[0] <= result.no_packing_norm[0] + 1e-9

    def test_table05_single_size(self):
        runtime = table05_runtime.time_full_reconfig(200, group_identical=True)
        assert runtime < 5.0

    def test_table06_tiny(self):
        result = table06_multitask.run(trials=2, jobs_per_trial=8)
        assert set(result.norm_costs) == {"No-Packing", "Eva-Single", "Eva-Multi"}


class TestEndToEnd:
    def test_table10_tiny(self):
        result = table10_e2e_large.run(num_jobs=40)
        assert len(result.table.rows) == 3
        assert "p100" in result.uptime_cdf_text or "series" in result.uptime_cdf_text

    def test_table11(self):
        result = table11_e2e_small.run()
        assert len(result.table.rows) == 5

    def test_table12(self):
        result = table12_fidelity.run()
        assert result.max_abs_difference < 0.25

    def test_table13_tiny(self):
        result = table13_alibaba.run(num_jobs=120)
        norm = {
            name: result.comparison.normalized_cost(name)
            for name in result.comparison.results
        }
        assert norm["Eva"] < 1.0

    def test_table14_tiny(self):
        result = table14_gavel.run(num_jobs=80)
        assert len(result.table.rows) == 5


class TestSweeps:
    def test_fig04_tiny(self):
        result = fig04_interference_sweep.run(num_jobs=60)
        assert result.norm_cost[("Eva-RP", 0.8)] >= result.norm_cost[
            ("Eva-RP", 1.0)
        ] - 0.1

    def test_fig05_tiny(self):
        result = fig05_migration_sweep.run(num_jobs=60)
        assert set(result.full_adoption) == {1.0, 2.0, 4.0, 8.0}

    def test_fig06_tiny(self):
        result = fig06_workload_mix.run(num_jobs=60)
        assert ("Eva", 0.6) in result.norm_cost

    def test_fig07_tiny(self):
        result = fig07_multitask_sweep.run(num_jobs=60)
        assert ("Eva-Single", 0.4) in result.norm_cost

    def test_fig08_tiny(self):
        result = fig08_arrival_rate.run(num_jobs=50)
        assert ("Eva", 0.5) in result.norm_cost


class TestScaleConfig:
    def test_bench_scale_env(self, monkeypatch):
        from repro.experiments.common import bench_scale, scaled

        monkeypatch.setenv("EVA_BENCH_SCALE", "2.0")
        assert bench_scale() == 2.0
        assert scaled(100) == 200
        assert scaled(100, maximum=150) == 150
        monkeypatch.setenv("EVA_BENCH_SCALE", "oops")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("EVA_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()
