"""Unit and property tests for ResourceVector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.resources import RESOURCE_NAMES, ResourceVector

nonneg = st.floats(min_value=0, max_value=1e6, allow_nan=False)
vectors = st.builds(ResourceVector, nonneg, nonneg, nonneg)


class TestConstruction:
    def test_zero(self):
        assert ResourceVector.zero().is_zero()

    def test_of_keywords(self):
        v = ResourceVector.of(gpus=1, cpus=4, ram_gb=16)
        assert v.as_tuple() == (1.0, 4.0, 16.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(-1, 0, 0)

    def test_sum_empty_is_zero(self):
        assert ResourceVector.sum([]).is_zero()

    def test_sum_matches_addition(self):
        a = ResourceVector(1, 2, 3)
        b = ResourceVector(4, 5, 6)
        assert ResourceVector.sum([a, b]) == a + b


class TestArithmetic:
    def test_add(self):
        assert ResourceVector(1, 2, 3) + ResourceVector(1, 1, 1) == ResourceVector(2, 3, 4)

    def test_sub_clamps_at_zero(self):
        result = ResourceVector(1, 2, 3) - ResourceVector(5, 1, 1)
        assert result == ResourceVector(0, 1, 2)

    def test_scalar_multiplication(self):
        assert 2 * ResourceVector(1, 2, 3) == ResourceVector(2, 4, 6)


class TestComparison:
    def test_fits_within_equal(self):
        v = ResourceVector(1, 2, 3)
        assert v.fits_within(v)

    def test_fits_within_strict(self):
        assert ResourceVector(1, 2, 3).fits_within(ResourceVector(2, 3, 4))
        assert not ResourceVector(3, 2, 3).fits_within(ResourceVector(2, 3, 4))

    def test_dominates_is_reverse_of_fits(self):
        small = ResourceVector(1, 1, 1)
        big = ResourceVector(2, 2, 2)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_get_by_name(self):
        v = ResourceVector(1, 2, 3)
        assert [v.get(r) for r in RESOURCE_NAMES] == [1, 2, 3]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            ResourceVector(1, 2, 3).get("disk")

    def test_iteration_order(self):
        assert list(ResourceVector(1, 2, 3)) == [1, 2, 3]


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(vectors, vectors)
    def test_sum_fits_iff_components_bounded(self, a, b):
        total = a + b
        assert a.fits_within(total)
        assert b.fits_within(total)

    @given(vectors, vectors)
    def test_sub_never_negative(self, a, b):
        diff = a - b
        assert diff.gpus >= 0 and diff.cpus >= 0 and diff.ram_gb >= 0

    @given(vectors)
    def test_zero_is_identity(self, v):
        assert v + ResourceVector.zero() == v

    @given(vectors, vectors, vectors)
    def test_fits_within_transitive(self, a, b, c):
        if a.fits_within(b) and b.fits_within(c):
            # Tolerance slack makes this hold only up to epsilon; use a
            # widened capacity to absorb it.
            padded = ResourceVector(c.gpus + 1e-6, c.cpus + 1e-6, c.ram_gb + 1e-6)
            assert a.fits_within(padded)
