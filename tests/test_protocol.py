"""Action/observation protocol tests (:mod:`repro.core.protocol`).

Covers the planner (``diff_target`` canonical order), the structural
replay/validator, the shared :class:`ClusterEnvironment` interpreter,
the scheduler-side protocol surface (default ``decide``, observation
hooks, action vocabularies), the eviction-aware policy, and the
master/simulator executor unification.
"""

from __future__ import annotations

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.cluster.instance import fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.state import (
    ClusterSnapshot,
    InstanceState,
    TargetConfiguration,
)
from repro.cluster.task import make_job
from repro.core import make_scheduler, scheduler_names
from repro.core.protocol import (
    AssignTask,
    ClusterEnvironment,
    Decision,
    DeadlineApproaching,
    JobArrived,
    JobFinished,
    LaunchInstance,
    MigrateTask,
    ProtocolError,
    SpotEvictionNotice,
    TerminateInstance,
    ThroughputReport,
    UnassignTask,
    count_job_events,
    diff_target,
    replay_decision,
    throughput_reports,
)
from repro.core.scheduler import EvaScheduler, EvictionAwareEvaScheduler
from repro.sim.simulator import ClusterSimulator, SpotConfig, run_simulation
from repro.workloads.synthetic import synthetic_trace


def _type_named(catalog, name):
    return next(t for t in catalog if t.name == name)


def _snapshot_with(catalog, jobs, placements):
    """A snapshot hosting ``jobs``; ``placements``: [(type name, [task ids])]."""
    tasks = {t.task_id: t for job in jobs for t in job.tasks}
    instances = []
    for type_name, task_ids in placements:
        inst = fresh_instance(_type_named(catalog, type_name))
        instances.append(
            InstanceState(instance=inst, task_ids=frozenset(task_ids))
        )
    return ClusterSnapshot(
        time_s=0.0,
        tasks=tasks,
        jobs={j.job_id: j for j in jobs},
        instances=tuple(instances),
    )


@pytest.fixture()
def two_jobs():
    demand = {"*": ResourceVector(0, 4, 10)}
    return [
        make_job("resnet50", demand, duration_hours=1.0, job_id="job-a"),
        make_job("a3c", demand, duration_hours=1.0, job_id="job-b"),
    ]


class TestDiffTarget:
    def test_canonical_order_launch_then_moves_then_terminations(
        self, catalog, two_jobs
    ):
        snapshot = _snapshot_with(
            catalog, two_jobs, [("c7i.4xlarge", ["job-a/t0"])]
        )
        old = snapshot.instances[0].instance
        new = fresh_instance(_type_named(catalog, "c7i.2xlarge"))
        other = fresh_instance(_type_named(catalog, "c7i.2xlarge"))
        target = TargetConfiguration.from_pairs(
            [(new, ["job-a/t0"]), (other, ["job-b/t0"])]
        )
        decision = diff_target(snapshot, target)
        kinds = [type(a) for a in decision.actions]
        # Canonical order: launches, then moves ascending by task id
        # (job-a/t0 migrates off the old instance, job-b/t0 is a first
        # placement), then terminations.
        assert kinds == [
            LaunchInstance,
            LaunchInstance,
            MigrateTask,
            AssignTask,
            TerminateInstance,
        ]
        migrate = decision.actions[2]
        assign = decision.actions[3]
        terminate = decision.actions[4]
        assert migrate.task_id == "job-a/t0"
        assert migrate.src_instance_id == old.instance_id
        assert migrate.dst_instance_id == new.instance_id
        assert assign.task_id == "job-b/t0"
        assert assign.instance_id == other.instance_id
        assert terminate.instance_id == old.instance_id
        assert decision.target is target

    def test_unmentioned_assigned_tasks_stay_put(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog,
            two_jobs,
            [("c7i.4xlarge", ["job-a/t0", "job-b/t0"])],
        )
        keep = snapshot.instances[0].instance
        # Target keeps the instance but only mentions one task: the
        # other stays assigned (legacy semantics), so no unassign is
        # planned.
        target = TargetConfiguration.from_pairs([(keep, ["job-a/t0"])])
        decision = diff_target(snapshot, target)
        assert decision.actions == ()
        final = replay_decision(snapshot, decision)
        assert final[keep.instance_id] == frozenset({"job-a/t0", "job-b/t0"})

    def test_round_trip_reproduces_target(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog, two_jobs, [("c7i.4xlarge", ["job-a/t0"])]
        )
        new = fresh_instance(_type_named(catalog, "c7i.4xlarge"))
        target = TargetConfiguration.from_pairs(
            [(new, ["job-a/t0", "job-b/t0"])]
        )
        final = replay_decision(snapshot, diff_target(snapshot, target))
        assert final == {
            ti.instance_id: ti.task_ids for ti in target.instances
        }


class TestReplayValidation:
    def test_launch_of_existing_instance_rejected(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog, two_jobs, [("c7i.4xlarge", ["job-a/t0"])]
        )
        dup = snapshot.instances[0].instance
        with pytest.raises(ProtocolError, match="existing instance"):
            replay_decision(
                snapshot, Decision(actions=(LaunchInstance(instance=dup),))
            )

    def test_assign_of_placed_task_rejected(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog,
            two_jobs,
            [("c7i.4xlarge", ["job-a/t0"]), ("c7i.4xlarge", [])],
        )
        empty = snapshot.instances[1].instance_id
        with pytest.raises(ProtocolError, match="use MigrateTask"):
            replay_decision(
                snapshot,
                Decision(
                    actions=(
                        AssignTask(task_id="job-a/t0", instance_id=empty),
                    )
                ),
            )

    def test_assign_of_unknown_task_rejected(self, catalog, two_jobs):
        snapshot = _snapshot_with(catalog, two_jobs, [("c7i.4xlarge", [])])
        iid = snapshot.instances[0].instance_id
        with pytest.raises(ProtocolError, match="unknown task"):
            replay_decision(
                snapshot,
                Decision(actions=(AssignTask(task_id="ghost", instance_id=iid),)),
            )

    def test_termination_stranding_a_task_rejected(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog, two_jobs, [("c7i.4xlarge", ["job-a/t0"])]
        )
        iid = snapshot.instances[0].instance_id
        with pytest.raises(ProtocolError, match="strands"):
            replay_decision(
                snapshot, Decision(actions=(TerminateInstance(instance_id=iid),))
            )

    def test_termination_after_unassign_allowed(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog, two_jobs, [("c7i.4xlarge", ["job-a/t0"])]
        )
        iid = snapshot.instances[0].instance_id
        final = replay_decision(
            snapshot,
            Decision(
                actions=(
                    UnassignTask(task_id="job-a/t0", instance_id=iid),
                    TerminateInstance(instance_id=iid),
                )
            ),
        )
        assert iid not in final

    def test_migration_from_wrong_instance_rejected(self, catalog, two_jobs):
        snapshot = _snapshot_with(
            catalog,
            two_jobs,
            [("c7i.4xlarge", ["job-a/t0"]), ("c7i.4xlarge", [])],
        )
        src = snapshot.instances[0].instance_id
        other = snapshot.instances[1].instance_id
        with pytest.raises(ProtocolError, match="is on"):
            replay_decision(
                snapshot,
                Decision(
                    actions=(
                        MigrateTask(
                            task_id="job-b/t0",
                            src_instance_id=src,
                            dst_instance_id=other,
                        ),
                    )
                ),
            )

    def test_final_state_oversubscription_rejected(self, catalog):
        big = {"*": ResourceVector(0, 14, 30)}
        jobs = [
            make_job("resnet50", big, duration_hours=1.0, job_id="job-x"),
            make_job("resnet50", big, duration_hours=1.0, job_id="job-y"),
        ]
        snapshot = _snapshot_with(catalog, jobs, [("c7i.4xlarge", [])])
        iid = snapshot.instances[0].instance_id
        with pytest.raises(ProtocolError, match="over-subscribed"):
            replay_decision(
                snapshot,
                Decision(
                    actions=(
                        AssignTask(task_id="job-x/t0", instance_id=iid),
                        AssignTask(task_id="job-y/t0", instance_id=iid),
                    )
                ),
            )

    def test_transient_oversubscription_is_legal(self, catalog):
        """A task may arrive before another departs within one stream."""
        big = {"*": ResourceVector(0, 14, 30)}
        jobs = [
            make_job("resnet50", big, duration_hours=1.0, job_id="job-x"),
            make_job("resnet50", big, duration_hours=1.0, job_id="job-y"),
        ]
        snapshot = _snapshot_with(
            catalog,
            jobs,
            [("c7i.4xlarge", ["job-x/t0"]), ("c7i.4xlarge", ["job-y/t0"])],
        )
        a = snapshot.instances[0].instance_id
        b = snapshot.instances[1].instance_id
        # Swap: each lands before the other leaves; the final state fits.
        final = replay_decision(
            snapshot,
            Decision(
                actions=(
                    MigrateTask("job-x/t0", a, b),
                    MigrateTask("job-y/t0", b, a),
                )
            ),
        )
        assert final[a] == frozenset({"job-y/t0"})
        assert final[b] == frozenset({"job-x/t0"})


class TestEnvironmentInterpreter:
    def test_execute_dispatches_in_order(self, catalog, two_jobs):
        calls: list[tuple[str, str]] = []

        class Recorder(ClusterEnvironment):
            def launch_instance(self, action):
                calls.append(("launch", action.instance_id))

            def assign_task(self, action):
                calls.append(("assign", action.task_id))

            def unassign_task(self, action):
                calls.append(("unassign", action.task_id))

            def migrate_task(self, action):
                calls.append(("migrate", action.task_id))

            def terminate_instance(self, action):
                calls.append(("terminate", action.instance_id))

            def begin_decision(self):
                calls.append(("begin", ""))

            def finish_decision(self):
                calls.append(("finish", ""))

        inst = fresh_instance(_type_named(catalog, "c7i.2xlarge"))
        decision = Decision(
            actions=(
                LaunchInstance(instance=inst),
                AssignTask(task_id="job-a/t0", instance_id=inst.instance_id),
                MigrateTask("job-b/t0", "i-1", inst.instance_id),
                UnassignTask(task_id="job-a/t0", instance_id=inst.instance_id),
                TerminateInstance(instance_id="i-1"),
            )
        )
        Recorder().execute(decision)
        assert [c[0] for c in calls] == [
            "begin",
            "launch",
            "assign",
            "migrate",
            "unassign",
            "terminate",
            "finish",
        ]


class TestObservationHelpers:
    def test_throughput_reports_unwrap_in_order(self):
        reports = ("r1", "r2")
        observations = (
            JobArrived("j1", 0.0),
            ThroughputReport(reports[0]),
            JobFinished("j0", 0.0),
            ThroughputReport(reports[1]),
        )
        assert throughput_reports(observations) == reports

    def test_count_job_events(self):
        observations = (
            JobArrived("j1", 0.0),
            JobFinished("j0", 0.0),
            SpotEvictionNotice("i-1", 100.0),
            DeadlineApproaching("j1", 3600.0),
        )
        assert count_job_events(observations) == 2


class TestSchedulerProtocolSurface:
    def test_default_decide_matches_legacy_schedule(self, catalog, two_jobs):
        snapshot = _snapshot_with(catalog, two_jobs, [])
        legacy = make_scheduler("stratus", catalog)
        protocol = make_scheduler("stratus", catalog)
        target = legacy.schedule(snapshot)
        decision = protocol.decide(snapshot, ())
        # Fresh instance ids are minted per schedule() call, so compare
        # the structural shape: action kinds, moved tasks, launch types.
        expected = diff_target(snapshot, target).actions

        def shape(actions):
            return [
                (
                    type(a).__name__,
                    getattr(a, "task_id", None),
                    a.instance.instance_type.name
                    if isinstance(a, LaunchInstance)
                    else None,
                )
                for a in actions
            ]

        assert shape(decision.actions) == shape(expected)

    def test_every_registered_scheduler_speaks_decide(self, catalog, two_jobs):
        snapshot = _snapshot_with(catalog, two_jobs, [])
        for name in scheduler_names():
            scheduler = make_scheduler(name, catalog)
            decision = scheduler.decide(snapshot, ())
            assert isinstance(decision, Decision)
            final = replay_decision(snapshot, decision)
            placed = set().union(*final.values()) if final else set()
            assert placed == set(snapshot.tasks), name
            allowed = scheduler.action_types
            if allowed is not None:
                assert {type(a) for a in decision.actions} <= allowed, name

    def test_eva_counts_events_from_observation_channel(self, catalog, two_jobs):
        """The D̂ estimator is fed by typed JobArrived/JobFinished events,
        not by diffing private snapshot state."""
        scheduler = EvaScheduler(catalog)
        snapshot = _snapshot_with(catalog, two_jobs, [])
        scheduler.decide(
            snapshot,
            (
                JobArrived("job-a", 0.0),
                JobArrived("job-b", 0.0),
                JobFinished("job-z", 0.0),
            ),
        )
        assert scheduler.policy.estimator.total_events == 3
        # A later round with no job events adds none — even though the
        # legacy snapshot diff would now see two "new" job ids had the
        # estimator still inspected snapshots.
        scheduler.decide(snapshot, ())
        assert scheduler.policy.estimator.total_events == 3

    def test_eva_legacy_schedule_still_tracks_by_snapshot_diff(
        self, catalog, two_jobs
    ):
        scheduler = EvaScheduler(catalog)
        snapshot = _snapshot_with(catalog, two_jobs, [])
        scheduler.schedule(snapshot)
        assert scheduler.policy.estimator.total_events == 2

    def test_observation_and_snapshot_counting_agree_end_to_end(self, catalog):
        """Same trace, observation-driven vs snapshot-driven event counts."""
        trace = synthetic_trace(10, seed=7, name="evt-agree")

        class SnapshotDiffEva(EvaScheduler):
            def observe(self, observations):
                pass  # starve the channel: force the legacy fallback

        import pickle

        results = []
        for scheduler in (EvaScheduler(catalog), SnapshotDiffEva(catalog)):
            results.append(run_simulation(trace, scheduler))
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])


class TestEvictionAwareScheduler:
    def test_identical_to_eva_without_notices(self, catalog):
        import pickle

        trace = synthetic_trace(12, seed=3, name="evict-a")
        spot = SpotConfig(enabled=True, preemption_rate_per_hour=0.3, seed=3)
        results = [
            run_simulation(
                trace, make_scheduler(name, catalog), spot=spot, validate=True
            )
            for name in ("eva", "eva-eviction-aware")
        ]
        plain, aware = results
        assert plain.total_cost == aware.total_cost
        assert [o.finish_s for o in plain.jobs] == [o.finish_s for o in aware.jobs]

    def test_notices_convert_preemptions_into_drains(self, catalog):
        trace = synthetic_trace(24, seed=0, name="evict-b")
        base_spot = SpotConfig(
            enabled=True, preemption_rate_per_hour=0.4, seed=0
        )
        blind = run_simulation(
            trace, make_scheduler("eva-eviction-aware", catalog), spot=base_spot
        )
        noticed = run_simulation(
            trace,
            make_scheduler("eva-eviction-aware", catalog),
            spot=SpotConfig(
                enabled=True,
                preemption_rate_per_hour=0.4,
                seed=0,
                notice_s=600.0,
            ),
            validate=True,
        )
        assert blind.preemptions > 0
        assert noticed.preemptions < blind.preemptions
        assert noticed.migrations > blind.migrations

    def test_notices_pruned_against_snapshot(self, catalog, two_jobs):
        scheduler = EvictionAwareEvaScheduler(catalog)
        scheduler.observe((SpotEvictionNotice("i-gone", 500.0),))
        snapshot = _snapshot_with(catalog, two_jobs, [])
        scheduler.schedule(snapshot)
        assert scheduler._eviction_notices == {}


class TestSimulatorObservations:
    def test_deadline_approaching_emitted(self, catalog):
        """Jobs with a deadline trigger the warning observation in time."""
        demand = {"*": ResourceVector(0, 4, 10)}
        job = make_job(
            "resnet50",
            demand,
            duration_hours=0.5,
            job_id="slo-job",
            deadline_hours=0.3,  # tighter than the runtime: warnings fire
        )
        from repro.workloads.trace import Trace

        seen: list[DeadlineApproaching] = []

        class Spy(EvaScheduler):
            def observe(self, observations):
                super().observe(observations)
                seen.extend(
                    o
                    for o in observations
                    if isinstance(o, DeadlineApproaching)
                )

        run_simulation(Trace(name="slo", jobs=(job,)), Spy(catalog))
        assert seen, "no DeadlineApproaching observation emitted"
        assert seen[0].job_id == "slo-job"
        assert seen[0].deadline_s == pytest.approx(0.3 * 3600.0)

    def test_action_vocabulary_enforced_in_validate_mode(self, catalog):
        trace = synthetic_trace(4, seed=1, name="vocab")

        class Rogue(EvaScheduler):
            """Declares launches only, but places tasks like Eva."""

            action_types = frozenset({LaunchInstance})

        sim = ClusterSimulator(
            trace=trace, scheduler=Rogue(catalog), validate=True
        )
        with pytest.raises(ProtocolError, match="action vocabulary"):
            sim.run()

    def test_action_vocabulary_enforced_by_master(self, catalog):
        """The runtime environment applies the same vocabulary rule."""
        from repro.runtime.master import EvaMaster

        class Rogue(EvaScheduler):
            action_types = frozenset({LaunchInstance})

        master = EvaMaster(catalog=catalog, scheduler=Rogue(catalog))
        demand = {"*": ResourceVector(0, 4, 10)}
        master.submit_job(
            make_job("resnet50", demand, duration_hours=0.1, job_id="r-1")
        )
        with pytest.raises(ProtocolError, match="action vocabulary"):
            master.run_round()


class TestMasterUsesSharedExecutor:
    def test_master_and_simulator_share_the_interpreter(self):
        """Both backends execute through ClusterEnvironment.execute —
        the apply loop exists exactly once."""
        from repro.runtime.master import _RuntimeEnvironment
        from repro.sim.simulator import _SimEnvironment

        for backend in (_RuntimeEnvironment, _SimEnvironment):
            assert issubclass(backend, ClusterEnvironment)
            assert "execute" not in backend.__dict__, (
                f"{backend.__name__} overrides the shared interpreter"
            )

    def test_master_round_trip_with_observations(self, catalog):
        from repro.runtime.master import EvaMaster

        master = EvaMaster(catalog=catalog, scheduler=EvaScheduler(catalog))
        demand = {"*": ResourceVector(0, 4, 10)}
        master.submit_job(
            make_job("resnet50", demand, duration_hours=0.1, job_id="m-1")
        )
        master.run_round()
        # The submission reached the scheduler as a typed JobArrived.
        assert master.scheduler.policy.estimator.total_events == 1
        assert master._assignment  # task placed through the executor
        master.run_for(hours=0.5)
        assert [c.job_id for c in master.completed] == ["m-1"]
        # The completion came back through the observation channel.
        assert master.scheduler.policy.estimator.total_events == 2

    def test_master_executes_unassign_actions(self, catalog):
        from repro.runtime.master import EvaMaster

        master = EvaMaster(catalog=catalog, scheduler=EvaScheduler(catalog))
        demand = {"*": ResourceVector(0, 4, 10)}
        master.submit_job(
            make_job("resnet50", demand, duration_hours=1.0, job_id="m-2")
        )
        master.run_round()
        (task_id, instance_id) = next(iter(master._assignment.items()))
        master._env.execute(
            Decision(
                actions=(
                    UnassignTask(task_id=task_id, instance_id=instance_id),
                )
            )
        )
        assert task_id not in master._assignment
        worker = master.provisioner.worker_of(instance_id)
        assert task_id not in worker.hosted_task_ids()
        assert master.executor.stats.unassignments == 1
