"""Cross-scheduler integration invariants on full simulations."""

import pytest

from repro.analysis.comparison import (
    compare_schedulers,
    standard_scheduler_factories,
)
from repro.workloads.alibaba import synthesize_alibaba_trace
from repro.workloads.synthetic import synthetic_trace


@pytest.fixture(scope="module")
def alibaba_comparison(catalog_module):
    trace = synthesize_alibaba_trace(150, seed=42)
    return compare_schedulers(
        trace, standard_scheduler_factories(catalog_module), validate=True
    )


@pytest.fixture(scope="module")
def catalog_module():
    from repro.cloud.catalog import ec2_catalog

    return ec2_catalog()


class TestAllSchedulersComplete:
    def test_every_job_finishes(self, alibaba_comparison):
        for name, result in alibaba_comparison.results.items():
            assert result.num_jobs == 150, name

    def test_costs_positive(self, alibaba_comparison):
        for result in alibaba_comparison.results.values():
            assert result.total_cost > 0

    def test_no_packing_has_unit_tput(self, alibaba_comparison):
        result = alibaba_comparison.results["No-Packing"]
        assert result.mean_normalized_tput() == pytest.approx(1.0, abs=1e-6)
        assert result.tasks_per_instance == pytest.approx(1.0, abs=0.01)
        assert result.migrations == 0

    def test_eva_among_cheapest(self, alibaba_comparison):
        """At this small trace size seed noise can let one packing
        baseline edge Eva by a couple of points; the large-scale benches
        (Tables 13/14) assert strict wins.  Here: Eva must clearly beat
        No-Packing and sit within 5% of the best scheduler."""
        norm = {
            name: alibaba_comparison.normalized_cost(name)
            for name in alibaba_comparison.results
        }
        assert norm["Eva"] < 0.9
        assert norm["Eva"] <= min(norm.values()) * 1.05

    def test_packing_schedulers_pack(self, alibaba_comparison):
        for name in ("Stratus", "Synergy", "Owl", "Eva"):
            assert alibaba_comparison.results[name].tasks_per_instance >= 1.0

    def test_jct_tradeoff_bounded(self, alibaba_comparison):
        """Packing increases JCT, but within the paper's ~15% envelope."""
        base = alibaba_comparison.results["No-Packing"].mean_jct_hours()
        eva = alibaba_comparison.results["Eva"].mean_jct_hours()
        assert eva >= base - 1e-6
        assert eva <= base * 1.4

    def test_no_packing_and_stratus_never_migrate(self, alibaba_comparison):
        """Stratus substitutes duration-aligned packing for migration;
        Synergy/Owl may right-size (DESIGN.md §4.8)."""
        for name in ("No-Packing", "Stratus"):
            assert alibaba_comparison.results[name].migrations == 0, name


class TestSyntheticTraceShape:
    def test_physical_trace_ordering(self, catalog_module):
        trace = synthetic_trace(40, seed=21)
        comparison = compare_schedulers(
            trace,
            {
                k: v
                for k, v in standard_scheduler_factories(catalog_module).items()
                if k in ("No-Packing", "Eva")
            },
        )
        assert comparison.normalized_cost("Eva") <= 1.02
