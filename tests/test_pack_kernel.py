"""Equivalence, tie-break, and selection tests for the vectorized
packing kernel (:mod:`repro.core.pack_kernel`).

The kernel's contract is bit-identity with the scalar ``_ArgmaxScan``:
same pick, same value, same tie-breaks, on every iteration of
Algorithm 1's greedy loop.  These tests drive both implementations over
crafted ties and randomized pools and require exact equality — no
``approx`` anywhere.
"""

import os
from contextlib import contextmanager
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import ec2_catalog
from repro.cluster.resources import ResourceVector
from repro.cluster.task import make_job
from repro.core import pack_kernel
from repro.core.deadline import DeadlineTNRPEvaluator
from repro.core.evaluation import RPEvaluator, TNRPEvaluator
from repro.core.full_reconfig import (
    _ArgmaxScan,
    _TaskPool,
    _pack_one_instance,
    configuration_cost,
    full_reconfiguration,
)
from repro.core.pack_kernel import VectorScan, kernel_name, should_vectorize
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import (
    CoLocationThroughputTable,
    TaskPlacementObservation,
)
from repro.workloads.synthetic import microbench_task_pool

pytestmark = pytest.mark.skipif(
    pack_kernel.np is None, reason="numpy not available"
)

CATALOG = ec2_catalog()


@contextmanager
def kernel_env(kernel: str = "numpy", min_lanes: str = "0"):
    """Force a kernel choice regardless of pool width."""
    env = {"EVA_PACK_KERNEL": kernel, "EVA_PACK_NUMPY_MIN_LANES": min_lanes}
    with mock.patch.dict(os.environ, env):
        yield


def _single(workload, demand, rp_hint=None, job_id=None):
    job = make_job(
        workload, {"*": demand}, duration_hours=1.0, job_id=job_id
    )
    return job.tasks[0]


def _drive(scan, evaluator, pool):
    """Run Algorithm 1's greedy loop to exhaustion; return the pick log."""
    state = evaluator.make_state()
    picks = []
    while True:
        task, value = scan.best(state)
        if task is None or value < state.value - 1e-9:
            break
        picks.append((task.task_id, value))
        pool.pop(task)
        state.add(task)
        scan.charge(task)
    return picks


def _both_kernels(tasks, make_evaluator, itype):
    """Drive a fresh scalar and a fresh vector scan over the same tasks."""
    logs = []
    for scan_cls in (_ArgmaxScan, VectorScan):
        evaluator = make_evaluator()
        pool = _TaskPool(tasks, evaluator, True)
        scan = scan_cls(pool, evaluator, itype.capacity, itype.family)
        logs.append(_drive(scan, evaluator, pool))
    return logs


class TestKernelSelection:
    def test_kernel_name_default_and_validation(self):
        with mock.patch.dict(os.environ):
            os.environ.pop("EVA_PACK_KERNEL", None)
            assert kernel_name() == "numpy"
            os.environ["EVA_PACK_KERNEL"] = "scalar"
            assert kernel_name() == "scalar"
            os.environ["EVA_PACK_KERNEL"] = "cuda"
            with pytest.raises(ValueError):
                kernel_name()

    def test_min_lanes_gates_engagement(self):
        calc = ReservationPriceCalculator(CATALOG)
        ev = RPEvaluator(calc)
        with kernel_env(min_lanes="32"):
            assert not should_vectorize(ev, 31)
            assert should_vectorize(ev, 32)
        with kernel_env(kernel="scalar"):
            assert not should_vectorize(ev, 1000)

    def test_unsupported_evaluator_subclass_falls_back(self):
        """A subclass may override the value algebra; only the exact
        known types qualify."""

        class CustomRP(RPEvaluator):
            pass

        calc = ReservationPriceCalculator(CATALOG)
        with kernel_env():
            assert should_vectorize(RPEvaluator(calc), 1)
            assert not should_vectorize(CustomRP(calc), 1)

    def test_make_scan_respects_knob(self):
        from repro.core.full_reconfig import _make_scan

        calc = ReservationPriceCalculator(CATALOG)
        ev = RPEvaluator(calc)
        pool = _TaskPool(microbench_task_pool(6, seed=0), ev, True)
        itype = CATALOG[0]
        with kernel_env():
            assert isinstance(
                _make_scan(pool, ev, itype.capacity, itype.family), VectorScan
            )
        with kernel_env(kernel="scalar"):
            assert isinstance(
                _make_scan(pool, ev, itype.capacity, itype.family), _ArgmaxScan
            )


def _cheapest_hosting(demand):
    """The RP type for a demand — used to craft exact RP ties."""
    calc = ReservationPriceCalculator(CATALOG)
    return calc.rp(_single("probe", demand))


class TestTieBreaks:
    """Crafted exact ties: the vector filter chain must reproduce the
    scalar ``(value, RP, task_id)`` tuple maximum."""

    def test_equal_value_equal_rp_breaks_on_task_id(self):
        # Distinct workloads → distinct groups; identical demands → the
        # same RP and (for plain RP) the same value.  The winner must be
        # the maximal task id, at every step.
        demand = ResourceVector(0, 4, 8)
        tasks = [
            _single(f"w{i}", demand, job_id=f"job{i}") for i in range(8)
        ]
        calc = ReservationPriceCalculator(CATALOG)
        itype = max(CATALOG, key=lambda it: it.capacity.cpus)
        scalar, vector = _both_kernels(tasks, lambda: RPEvaluator(calc), itype)
        assert scalar == vector
        # And the first pick is genuinely the lexicographic max id.
        assert scalar[0][0] == max(t.task_id for t in tasks)

    def test_equal_value_breaks_on_higher_rp(self):
        # Seed the set with a member M, then craft two candidates whose
        # TNRP against {M} ties exactly while their RPs differ: A has
        # rp=2·rp_B but tput 0.5 next to M (single-task TNRP = tput·RP).
        demand_a = ResourceVector(1, 4, 16)  # hosted by a GPU type
        demand_b = ResourceVector(0, 2, 4)
        rp_a = _cheapest_hosting(demand_a)
        rp_b = _cheapest_hosting(demand_b)
        table = CoLocationThroughputTable(default_tput=1.0)
        # tput(A | M) chosen so value_A == value_B == rp_b exactly; the
        # ratio is a dyadic rational whenever rp_b/rp_a is, keeping the
        # product exact in float64.
        ratio = rp_b / rp_a
        assert 0.0 < ratio < 1.0
        table.observe_single_task_job(
            TaskPlacementObservation("wa", ("wm",)), ratio
        )
        # M is unaffected by either candidate → the member term cancels.
        table.observe_single_task_job(
            TaskPlacementObservation("wm", ("wa",)), 1.0
        )
        table.observe_single_task_job(
            TaskPlacementObservation("wm", ("wb",)), 1.0
        )
        member = _single("wm", ResourceVector(0, 1, 2), job_id="jm")
        cand_a = _single("wa", demand_a, job_id="ja")
        cand_b = _single("wb", demand_b, job_id="jb")
        calc = ReservationPriceCalculator(CATALOG)
        itype = max(
            CATALOG, key=lambda it: (it.capacity.gpus, it.capacity.ram_gb)
        )
        picks = []
        for scan_cls in (_ArgmaxScan, VectorScan):
            ev = TNRPEvaluator(calc, table, jobs={})
            pool = _TaskPool([cand_a, cand_b], ev, True)
            scan = scan_cls(pool, ev, itype.capacity, itype.family)
            state = ev.make_state([member])
            scan.charge(member)  # foreign task: capacity only
            task, value = scan.best(state)
            picks.append((task.task_id, value))
        assert picks[0] == picks[1]
        # Exact tie on value (tput_a·rp_a == rp_b), broken on RP → A.
        assert ratio * rp_a == rp_b
        assert picks[0][0] == cand_a.task_id

    def test_exact_path_tie_breaks_identically(self):
        # A >2-set exact entry disables the pairwise fast path; the
        # kernel's exact-path gather must still tie-break identically.
        table = CoLocationThroughputTable(default_tput=1.0)
        table.sync({("w0", ("w1", "w2")): 0.6})
        demand = ResourceVector(0, 2, 4)
        tasks = [
            _single(f"w{i}", demand, job_id=f"job{i}") for i in range(6)
        ]
        calc = ReservationPriceCalculator(CATALOG)
        itype = max(CATALOG, key=lambda it: it.capacity.cpus)
        scalar, vector = _both_kernels(
            tasks, lambda: TNRPEvaluator(calc, table, jobs={}), itype
        )
        assert scalar == vector


_DEMANDS = st.sampled_from(
    [
        ResourceVector(0, 2, 4),
        ResourceVector(0, 4, 8),
        ResourceVector(0, 8, 32),
        ResourceVector(1, 4, 16),
        ResourceVector(1, 8, 61),
        ResourceVector(4, 16, 122),
    ]
)


def _job_strategy(idx):
    return st.tuples(
        st.sampled_from(["wa", "wb", "wc", "wd"]),
        _DEMANDS,
        st.integers(min_value=1, max_value=3),  # arity (§4.4)
    )


class TestRandomizedEquivalence:
    """Property layer: on arbitrary pools the two scans must make the
    same decisions, and the kernel knob must not change packings."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(_job_strategy(0), min_size=1, max_size=10),
        st.lists(
            st.tuples(
                st.sampled_from(["wa", "wb", "wc", "wd"]),
                st.sampled_from(["wa", "wb", "wc", "wd"]),
                st.sampled_from([0.25, 0.5, 0.75, 0.9]),
            ),
            max_size=6,
        ),
        st.booleans(),
    )
    def test_scan_equivalence_tnrp(self, jobs, pairs, large_exact):
        table = CoLocationThroughputTable()
        for a, b, tput in pairs:
            if a != b:
                table.observe_single_task_job(
                    TaskPlacementObservation(a, (b,)), tput
                )
        if large_exact:
            # Forces the non-decomposable exact path (§4.3).
            table.sync({("wa", ("wb", "wc")): 0.5})
        tasks, mapping = [], {}
        for i, (workload, demand, arity) in enumerate(jobs):
            job = make_job(
                workload,
                {"*": demand},
                duration_hours=1.0,
                num_tasks=arity,
                job_id=f"j{i}",
            )
            mapping[job.job_id] = job
            tasks.extend(job.tasks)
        calc = ReservationPriceCalculator(CATALOG)
        itype = max(CATALOG, key=lambda it: it.capacity.gpus)
        scalar, vector = _both_kernels(
            tasks,
            lambda: TNRPEvaluator(calc, table, jobs=mapping),
            itype,
        )
        assert scalar == vector

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_pack_one_instance_identical_across_kernels(self, seed):
        tasks = microbench_task_pool(12, seed=seed)
        calc = ReservationPriceCalculator(CATALOG)
        itype = max(CATALOG, key=lambda it: it.capacity.gpus)
        outcomes = []
        for env in ({"kernel": "scalar"}, {"kernel": "numpy"}):
            with kernel_env(**env):
                ev = RPEvaluator(calc)
                pool = _TaskPool(tasks, ev, True)
                chosen, value = _pack_one_instance(itype, pool, ev)
                outcomes.append(([t.task_id for t in chosen], value))
        assert outcomes[0] == outcomes[1]

    def test_full_reconfiguration_identical_across_kernels(self):
        tasks = microbench_task_pool(40, seed=7)
        table = CoLocationThroughputTable()
        table.observe_single_task_job(
            TaskPlacementObservation("ResNet-50", ("A3C",)), 0.8
        )
        configs = []
        for kernel in ("scalar", "numpy"):
            with kernel_env(kernel=kernel):
                calc = ReservationPriceCalculator(CATALOG)
                packed = full_reconfiguration(
                    tasks, CATALOG, TNRPEvaluator(calc, table, jobs={})
                )
                configs.append(
                    [
                        (p.instance_type.name, tuple(t.task_id for t in p.tasks))
                        for p in packed
                    ]
                )
        assert configs[0] == configs[1]
        assert configuration_cost(packed) > 0.0

    def test_deadline_urgency_lanes_identical(self):
        # u≠1 lanes take the escalated branch; u==1 must be bit-equal to
        # the stock formula.
        table = CoLocationThroughputTable()
        table.observe_single_task_job(
            TaskPlacementObservation("wa", ("wb",)), 0.5
        )
        jobs, tasks = {}, []
        for i, (workload, arity) in enumerate(
            [("wa", 2), ("wb", 1), ("wc", 2), ("wd", 1)]
        ):
            job = make_job(
                workload,
                {"*": ResourceVector(0, 4, 8)},
                duration_hours=1.0,
                num_tasks=arity,
                job_id=f"j{i}",
            )
            jobs[job.job_id] = job
            tasks.extend(job.tasks)
        urgency = {"j0": 2.5, "j1": 1.0, "j3": 4.0}
        calc = ReservationPriceCalculator(CATALOG)
        itype = max(CATALOG, key=lambda it: it.capacity.cpus)
        scalar, vector = _both_kernels(
            tasks,
            lambda: DeadlineTNRPEvaluator(
                calc, table, jobs=jobs, urgency=urgency
            ),
            itype,
        )
        assert scalar == vector
