"""Unit tests for simulation metrics."""

import pytest

from repro.sim.metrics import (
    AllocationIntegrator,
    JobOutcome,
    SimulationResult,
    normalize_costs,
)


def _outcome(jct_h=2.0, idle_h=0.5, duration_h=1.5, job_id="j"):
    return JobOutcome(
        job_id=job_id,
        workload="w",
        num_tasks=1,
        arrival_s=0.0,
        finish_s=jct_h * 3600.0,
        duration_hours=duration_h,
        idle_hours=idle_h,
    )


class TestJobOutcome:
    def test_jct(self):
        assert _outcome(jct_h=2.0).jct_hours == pytest.approx(2.0)

    def test_normalized_tput_no_interference(self):
        # active time == duration -> tput 1.0
        o = _outcome(jct_h=2.0, idle_h=0.5, duration_h=1.5)
        assert o.normalized_tput == pytest.approx(1.0)

    def test_normalized_tput_with_interference(self):
        # 3h active for 1.5h of standalone work -> 0.5
        o = _outcome(jct_h=3.5, idle_h=0.5, duration_h=1.5)
        assert o.normalized_tput == pytest.approx(0.5)


class TestAllocationIntegrator:
    def test_time_weighted_ratio(self):
        integ = AllocationIntegrator()
        alloc = {"gpus": 1.0, "cpus": 4.0, "ram_gb": 8.0}
        cap = {"gpus": 2.0, "cpus": 8.0, "ram_gb": 32.0}
        integ.accumulate(10.0, alloc, cap, num_tasks_assigned=1, num_instances=1)
        integ.accumulate(10.0, {k: 0.0 for k in alloc}, cap, 0, 1)
        ratios = integ.allocation_ratios()
        assert ratios["gpus"] == pytest.approx(0.25)
        assert ratios["cpus"] == pytest.approx(0.25)
        assert integ.tasks_per_instance() == pytest.approx(0.5)

    def test_zero_dt_ignored(self):
        integ = AllocationIntegrator()
        integ.accumulate(0.0, {"gpus": 1, "cpus": 1, "ram_gb": 1},
                         {"gpus": 1, "cpus": 1, "ram_gb": 1}, 1, 1)
        assert integ.instance_time_integral == 0.0

    def test_empty_cluster_ratio_zero(self):
        assert AllocationIntegrator().allocation_ratios()["gpus"] == 0.0


def _result(name, cost, jobs=None):
    return SimulationResult(
        scheduler_name=name,
        trace_name="t",
        total_cost=cost,
        jobs=jobs or [_outcome(job_id=f"{name}-0")],
        instances_launched=1,
        migrations=2,
        placements=1,
        uptimes_hours=[1.0, 2.0, 3.0],
        allocation={"gpus": 0.5, "cpus": 0.5, "ram_gb": 0.5},
        tasks_per_instance=1.5,
        makespan_hours=10.0,
    )


class TestSimulationResult:
    def test_normalized_cost(self):
        base = _result("No-Packing", 100.0)
        eva = _result("Eva", 60.0)
        assert eva.normalized_cost(base) == pytest.approx(0.6)
        assert normalize_costs([base, eva])["Eva"] == pytest.approx(0.6)

    def test_normalize_requires_baseline(self):
        with pytest.raises(ValueError):
            normalize_costs([_result("Eva", 60.0)])

    def test_migrations_per_task(self):
        r = _result("Eva", 10.0)
        assert r.migrations_per_task() == pytest.approx(2.0)

    def test_uptime_cdf_monotone(self):
        xs, ys = _result("Eva", 10.0).uptime_cdf()
        assert list(xs) == sorted(xs)
        assert list(ys) == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_summary_row_keys(self):
        row = _result("Eva", 10.0).summary_row()
        assert row["scheduler"] == "Eva"
        assert "total_cost" in row and "jct_hours" in row
