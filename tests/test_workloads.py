"""Unit tests for the Table 7 workload suite."""

import pytest

from repro.cluster.task import DEFAULT_FAMILY
from repro.workloads.workloads import (
    CPU_WORKLOADS,
    GPU_WORKLOADS_BY_COUNT,
    TABLE7_WORKLOADS,
    workload,
    workload_names,
)


class TestTable7:
    def test_ten_workloads(self):
        assert len(TABLE7_WORKLOADS) == 10

    def test_transcription_spot_checks(self):
        gpt2 = workload("GPT2")
        assert (gpt2.gpus, gpt2.cpus_p3, gpt2.ram_gb) == (4, 4, 10)
        assert (gpt2.checkpoint_s, gpt2.launch_s) == (30, 15)
        diamond = workload("Diamond")
        assert (diamond.cpus_p3, diamond.cpus_other) == (14, 8)
        vit = workload("ViT")
        assert (vit.gpus, vit.cpus_p3, vit.ram_gb) == (2, 8, 60)

    def test_tasks_per_job(self):
        assert workload("ResNet18-2").tasks_per_job == 2
        assert workload("ResNet18-4").tasks_per_job == 4
        assert all(
            workload(n).tasks_per_job == 1
            for n in workload_names()
            if not n.startswith("ResNet18")
        )

    def test_demands_family_split(self):
        gcn = workload("GCN")
        demands = gcn.demands()
        assert demands["p3"].cpus == 12
        assert demands["c7i"].cpus == 6
        assert demands["r7i"].cpus == 6
        assert demands[DEFAULT_FAMILY].cpus == 12

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("BERT")

    def test_make_job_wiring(self):
        job = workload("ResNet18-4").make_job(duration_hours=2.0, arrival_time_s=60.0)
        assert job.num_tasks == 4
        assert job.duration_hours == 2.0
        assert job.arrival_time_s == 60.0
        task = job.tasks[0]
        assert task.migration.checkpoint_s == 2
        assert task.migration.launch_s == 80

    def test_gpu_cpu_partitions(self):
        gpu_names = {n for names in GPU_WORKLOADS_BY_COUNT.values() for n in names}
        for name in gpu_names:
            assert workload(name).is_gpu_workload
        for name in CPU_WORKLOADS:
            assert not workload(name).is_gpu_workload


class TestDeadlineSampling:
    """The deadline_fraction / deadline_slack_range builder knobs."""

    def test_zero_fraction_is_byte_identical_default(self):
        from repro.workloads.synthetic import synthetic_trace

        base = synthetic_trace(12, seed=7)
        explicit = synthetic_trace(12, seed=7, deadline_fraction=0.0)
        assert base == explicit
        assert all(j.deadline_hours is None for j in base)

    def test_deadlines_scale_duration_by_slack(self):
        from repro.workloads.synthetic import synthetic_trace

        trace = synthetic_trace(
            30, seed=7, deadline_fraction=0.5, deadline_slack_range=(1.2, 1.8)
        )
        with_deadlines = [j for j in trace if j.deadline_hours is not None]
        assert 0 < len(with_deadlines) < len(trace.jobs)
        for job in with_deadlines:
            slack = job.deadline_hours / job.duration_hours
            assert 1.2 - 1e-9 <= slack <= 1.8 + 1e-9

    def test_deadline_draws_do_not_disturb_job_stream(self):
        """Sweeping tightness at a fixed seed keeps the identical jobs —
        same ids, arrivals, durations, workloads — and the identical
        subset of deadline-bearing jobs."""
        from dataclasses import replace

        from repro.workloads.synthetic import synthetic_trace

        def strip(trace):
            return tuple(replace(j, deadline_hours=None) for j in trace)

        plain = synthetic_trace(20, seed=3)
        tight = synthetic_trace(
            20, seed=3, deadline_fraction=0.4, deadline_slack_range=(1.1, 1.1)
        )
        loose = synthetic_trace(
            20, seed=3, deadline_fraction=0.4, deadline_slack_range=(2.5, 2.5)
        )
        assert strip(tight) == plain.jobs
        assert strip(loose) == plain.jobs
        assert [j.job_id for j in tight if j.deadline_hours is not None] == [
            j.job_id for j in loose if j.deadline_hours is not None
        ]

    def test_alibaba_builder_supports_deadlines(self):
        from repro.workloads.alibaba import synthesize_alibaba_trace

        plain = synthesize_alibaba_trace(25, seed=2)
        traced = synthesize_alibaba_trace(
            25, seed=2, deadline_fraction=0.6, deadline_slack_range=(1.5, 2.0)
        )
        assert plain == synthesize_alibaba_trace(25, seed=2, deadline_fraction=0.0)
        bearing = [j for j in traced if j.deadline_hours is not None]
        assert bearing
        for job in bearing:
            assert 1.5 * job.duration_hours <= job.deadline_hours <= 2.0 * job.duration_hours + 1e-9

    def test_knob_validation(self):
        from repro.workloads.synthetic import synthetic_trace

        with pytest.raises(ValueError, match="deadline_fraction"):
            synthetic_trace(4, deadline_fraction=1.5)
        with pytest.raises(ValueError, match="slack range"):
            synthetic_trace(4, deadline_fraction=0.5, deadline_slack_range=(0.0, 1.0))
        with pytest.raises(ValueError, match="slack range"):
            synthetic_trace(4, deadline_fraction=0.5, deadline_slack_range=(2.0, 1.0))
