"""Unit tests for the Table 7 workload suite."""

import pytest

from repro.cluster.task import DEFAULT_FAMILY
from repro.workloads.workloads import (
    CPU_WORKLOADS,
    GPU_WORKLOADS_BY_COUNT,
    TABLE7_WORKLOADS,
    workload,
    workload_names,
)


class TestTable7:
    def test_ten_workloads(self):
        assert len(TABLE7_WORKLOADS) == 10

    def test_transcription_spot_checks(self):
        gpt2 = workload("GPT2")
        assert (gpt2.gpus, gpt2.cpus_p3, gpt2.ram_gb) == (4, 4, 10)
        assert (gpt2.checkpoint_s, gpt2.launch_s) == (30, 15)
        diamond = workload("Diamond")
        assert (diamond.cpus_p3, diamond.cpus_other) == (14, 8)
        vit = workload("ViT")
        assert (vit.gpus, vit.cpus_p3, vit.ram_gb) == (2, 8, 60)

    def test_tasks_per_job(self):
        assert workload("ResNet18-2").tasks_per_job == 2
        assert workload("ResNet18-4").tasks_per_job == 4
        assert all(
            workload(n).tasks_per_job == 1
            for n in workload_names()
            if not n.startswith("ResNet18")
        )

    def test_demands_family_split(self):
        gcn = workload("GCN")
        demands = gcn.demands()
        assert demands["p3"].cpus == 12
        assert demands["c7i"].cpus == 6
        assert demands["r7i"].cpus == 6
        assert demands[DEFAULT_FAMILY].cpus == 12

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("BERT")

    def test_make_job_wiring(self):
        job = workload("ResNet18-4").make_job(duration_hours=2.0, arrival_time_s=60.0)
        assert job.num_tasks == 4
        assert job.duration_hours == 2.0
        assert job.arrival_time_s == 60.0
        task = job.tasks[0]
        assert task.migration.checkpoint_s == 2
        assert task.migration.launch_s == 80

    def test_gpu_cpu_partitions(self):
        gpu_names = {n for names in GPU_WORKLOADS_BY_COUNT.values() for n in names}
        for name in gpu_names:
            assert workload(name).is_gpu_workload
        for name in CPU_WORKLOADS:
            assert not workload(name).is_gpu_workload
