"""Unit and property tests for the co-location throughput table (§4.3–4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.throughput_table import (
    CoLocationThroughputTable,
    TaskPlacementObservation,
)


def obs(workload, *neighbours):
    return TaskPlacementObservation(workload=workload, neighbours=tuple(neighbours))


class TestLookup:
    def test_standalone_is_one(self):
        table = CoLocationThroughputTable()
        assert table.tput("A", []) == 1.0

    def test_default_applies_to_unknown_pairs(self):
        table = CoLocationThroughputTable(default_tput=0.9)
        assert table.tput("A", ["B"]) == 0.9
        assert table.tput("A", ["B", "C"]) == pytest.approx(0.81)

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            CoLocationThroughputTable(default_tput=0.0)

    def test_product_estimate_uses_recorded_pairs(self):
        table = CoLocationThroughputTable(default_tput=0.95)
        table.observe_single_task_job(obs("A", "B"), 0.8)
        assert table.tput("A", ["B"]) == 0.8
        # Unrecorded pair C contributes the default.
        assert table.tput("A", ["B", "C"]) == pytest.approx(0.8 * 0.95)

    def test_exact_entry_overrides_product(self):
        table = CoLocationThroughputTable(default_tput=0.95)
        table.observe_single_task_job(obs("A", "B", "C"), 0.5)
        assert table.tput("A", ["B", "C"]) == 0.5
        assert table.tput("A", ["C", "B"]) == 0.5  # order-insensitive

    def test_has_large_exact_entries(self):
        table = CoLocationThroughputTable()
        assert not table.has_large_exact_entries()
        table.observe_single_task_job(obs("A", "B"), 0.9)
        assert not table.has_large_exact_entries()  # pairs mirror pairwise
        table.observe_single_task_job(obs("A", "B", "C"), 0.9)
        assert table.has_large_exact_entries()


class TestSingleTaskUpdates:
    def test_standalone_observation_ignored(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("A"), 0.7)
        assert table.num_exact_entries() == 0

    def test_observation_clamped(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("A", "B"), 1.7)
        assert table.tput("A", ["B"]) == 1.0


class TestAttributionRules:
    def test_rule1_no_observations_blames_most_colocated(self):
        table = CoLocationThroughputTable()
        observations = [obs("A", "X"), obs("A", "X", "Y")]
        updated = table.observe_multi_task_job(observations, 0.8)
        assert updated == observations[1]
        assert table.tput("A", ["X", "Y"]) == 0.8
        assert not table.has_pairwise("A", "X")

    def test_rule2_raises_pessimistic_entry(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("A", "X"), 0.6)
        observations = [obs("A", "X"), obs("B", "Y")]
        table.observe_single_task_job(obs("B", "Y"), 0.95)
        updated = table.observe_multi_task_job(observations, 0.9)
        # The 0.6 entry was too pessimistic; it must rise to 0.9.
        assert updated == observations[0]
        assert table.tput("A", ["X"]) == 0.9

    def test_rule3_blames_unrecorded_task(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("A", "X"), 0.95)
        observations = [obs("A", "X"), obs("B", "Y", "Z")]
        updated = table.observe_multi_task_job(observations, 0.7)
        assert updated == observations[1]
        assert table.tput("B", ["Y", "Z"]) == 0.7

    def test_no_colocated_tasks_is_noop(self):
        table = CoLocationThroughputTable()
        assert table.observe_multi_task_job([obs("A"), obs("B")], 0.5) is None
        assert table.num_exact_entries() == 0

    def test_all_recorded_consistent_refreshes_lowest(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("A", "X"), 0.8)
        table.observe_single_task_job(obs("B", "Y"), 0.9)
        observations = [obs("A", "X"), obs("B", "Y")]
        updated = table.observe_multi_task_job(observations, 0.75)
        assert updated == observations[0]
        assert table.tput("A", ["X"]) == 0.75


class TestLowerBoundProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.3, max_value=1.0),
            min_size=2,
            max_size=8,
        )
    )
    def test_recorded_value_is_lower_bound_of_truth(self, truths):
        """Repeated straggler observations never overshoot the truth.

        Simulate a job with tasks whose true co-location throughputs are
        ``truths``; the observed job throughput is min(truths).  After
        any number of observations every recorded entry must stay <= its
        true value.
        """
        table = CoLocationThroughputTable()
        observations = [
            obs(f"W{i}", f"N{i}a", f"N{i}b") for i in range(len(truths))
        ]
        observed = min(truths)
        for _ in range(len(truths) + 2):
            table.observe_multi_task_job(observations, observed)
        for i, truth in enumerate(truths):
            recorded = table.recorded_tput(observations[i])
            if recorded is not None:
                assert recorded <= truth + 1e-9 or recorded == pytest.approx(
                    observed
                )

    def test_convergence_upward(self):
        """Entries adjust upward as better observations arrive (§4.4)."""
        table = CoLocationThroughputTable()
        placement = [obs("A", "X"), obs("B", "Y")]
        table.observe_multi_task_job(placement, 0.5)
        first = table.recorded_tput(placement[0]) or table.recorded_tput(placement[1])
        table.observe_multi_task_job(placement, 0.9)
        raised = table.recorded_tput(placement[0]) or table.recorded_tput(placement[1])
        assert raised >= first


class TestVersionEpochAudit:
    """Every value-changing mutation must bump :attr:`version` — it is the
    cache epoch for ``TNRPCaches``/``PackMemo`` consumers — and no-op
    updates must not churn it."""

    def test_single_task_observation_bumps_once(self):
        table = CoLocationThroughputTable()
        v0 = table.version
        table.observe_single_task_job(obs("a", "b"), 0.8)
        assert table.version == v0 + 1
        # Re-recording the same value is a no-op for downstream caches.
        table.observe_single_task_job(obs("a", "b"), 0.8)
        assert table.version == v0 + 1
        table.observe_single_task_job(obs("a", "b"), 0.7)
        assert table.version == v0 + 2

    def test_standalone_observation_never_bumps(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("a"), 0.5)
        assert table.version == 0

    def test_every_attribution_rule_bumps(self):
        table = CoLocationThroughputTable()
        # Rule 1: nothing recorded yet.
        target = table.observe_multi_task_job([obs("a", "b"), obs("b", "a")], 0.6)
        assert target is not None and table.version == 1
        # Rule 2: recorded entry below the observation gets raised.
        target = table.observe_multi_task_job([obs("a", "b"), obs("b", "a")], 0.9)
        assert target is not None and table.version == 2
        # Rule 3: all recorded entries exceed the observation, blame the
        # unrecorded newcomer.
        target = table.observe_multi_task_job(
            [obs("a", "b"), obs("c", "a", "b")], 0.4
        )
        assert target is not None and obs("c", "a", "b") == target
        assert table.version == 3

    def test_consistent_multi_task_observation_no_bump(self):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(obs("a", "b"), 0.6)
        v = table.version
        # Observation equals the recorded minimum: table already agrees.
        assert table.observe_multi_task_job([obs("a", "b")], 0.6) is None
        assert table.version == v

    def test_sync_bumps_per_changed_entry_and_is_idempotent(self):
        src = CoLocationThroughputTable()
        src.observe_single_task_job(obs("a", "b"), 0.7)
        src.observe_single_task_job(obs("b", "a"), 0.8)
        dst = CoLocationThroughputTable()
        assert dst.sync(src) == 2
        assert dst.version == 2
        # Second merge changes nothing: no epoch churn, count reports it.
        assert dst.sync(src) == 0
        assert dst.version == 2

    def test_sync_invalidates_lookup_memo(self):
        """Satellite-2 staleness regression: a lookup served through the
        memo *before* a bulk merge must not survive it."""
        table = CoLocationThroughputTable()
        stale = table.tput("a", ("b",))
        assert stale == table.default_tput
        changed = table.sync({("a", ("b",)): 0.5})
        assert changed == 1
        assert table.tput("a", ("b",)) == 0.5
        # The pairwise mirror was routed through _record too.
        assert table.pairwise("a", "b") == 0.5

    def test_sync_keeps_shared_tnrp_caches_fresh(self):
        """The evaluator's cross-round set-value memo epochs on
        ``table.version``; a sync() that merged new values must drop it."""
        from repro.core.evaluation import TNRPCaches

        table = CoLocationThroughputTable()
        caches = TNRPCaches()
        caches.sync(table)
        caches.set_value[("t1",)] = 123.0
        table.sync({("a", ("b",)): 0.5})
        caches.sync(table)
        assert not caches.set_value
