"""Tests for the §4.2 heterogeneous-resources RP extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import ec2_catalog
from repro.cluster.resources import ResourceVector
from repro.cluster.state import tasks_fit_on_type
from repro.cluster.task import make_job
from repro.core.heterogeneous import (
    FamilySpeedProfile,
    HeterogeneousEvaluator,
    HeterogeneousRPCalculator,
    heterogeneous_full_reconfiguration,
    reduces_to_homogeneous,
)
from repro.core.reservation_price import (
    InfeasibleTaskError,
    ReservationPriceCalculator,
)
from repro.core.throughput_table import CoLocationThroughputTable
from repro.workloads.synthetic import microbench_task_pool


def _cpu_task(cpus=4, ram=8, job_id="het"):
    return make_job(
        "W", {"*": ResourceVector(0, cpus, ram)}, 1.0, job_id=job_id
    ).tasks[0]


class TestSpeedProfile:
    def test_default_speed(self):
        profile = FamilySpeedProfile()
        assert profile.speed("anything", "p3") == 1.0

    def test_explicit_speed(self):
        profile = FamilySpeedProfile(speeds={"W": {"c7i": 2.0}})
        assert profile.speed("W", "c7i") == 2.0
        assert profile.speed("W", "r7i") == 1.0
        assert profile.speed("other", "c7i") == 1.0


class TestHeterogeneousRP:
    def test_unit_speeds_reduce_to_homogeneous(self, catalog):
        het = HeterogeneousRPCalculator(catalog)
        hom = ReservationPriceCalculator(catalog)
        for task in microbench_task_pool(40, seed=1):
            assert reduces_to_homogeneous(het, hom, task)

    def test_faster_family_lowers_rp(self, catalog):
        """A 2x-faster family halves the dollars-per-iteration price."""
        task = _cpu_task()
        slow = HeterogeneousRPCalculator(catalog).rp(task)
        fast = HeterogeneousRPCalculator(
            catalog, FamilySpeedProfile(speeds={"W": {"c7i": 2.0}})
        )
        assert fast.rp(task) == pytest.approx(slow / 2.0)
        assert fast.rp_type(task).family == "c7i"

    def test_speed_changes_efficiency_type(self, catalog):
        """If R7i runs W 4x faster, W's efficiency type moves to R7i even
        though C7i is nominally cheaper."""
        calc = HeterogeneousRPCalculator(
            catalog, FamilySpeedProfile(speeds={"W": {"r7i": 4.0}})
        )
        assert calc.rp_type(_cpu_task()).family == "r7i"

    def test_zero_speed_family_excluded(self, catalog):
        calc = HeterogeneousRPCalculator(
            catalog,
            FamilySpeedProfile(
                speeds={"W": {"c7i": 0.0, "r7i": 0.0, "p3": 0.0}},
                default_speed=0.0,
            ),
        )
        with pytest.raises(InfeasibleTaskError):
            calc.rp(_cpu_task())

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousRPCalculator([])


class TestHeterogeneousPacking:
    def _evaluator(self, catalog, profile=None):
        calc = HeterogeneousRPCalculator(catalog, profile or FamilySpeedProfile())
        return HeterogeneousEvaluator(
            calculator=calc,
            table=CoLocationThroughputTable(default_tput=1.0),
            jobs={},
        )

    def test_packing_invariants(self, catalog):
        tasks = microbench_task_pool(50, seed=2)
        ev = self._evaluator(catalog)
        packed = heterogeneous_full_reconfiguration(tasks, catalog, ev)
        assigned = sorted(t.task_id for p in packed for t in p.tasks)
        assert assigned == sorted(t.task_id for t in tasks)
        for p in packed:
            assert tasks_fit_on_type(p.tasks, p.instance_type)
            bound = ev.for_family(p.instance_type.family)
            assert bound.set_value(list(p.tasks)) >= p.hourly_cost - 1e-6

    def test_unit_speeds_match_homogeneous_cost(self, catalog):
        from repro.core.evaluation import TNRPEvaluator
        from repro.core.full_reconfig import (
            configuration_cost,
            full_reconfiguration,
        )

        tasks = microbench_task_pool(40, seed=3)
        het_packed = heterogeneous_full_reconfiguration(
            tasks, catalog, self._evaluator(catalog)
        )
        hom_ev = TNRPEvaluator(
            ReservationPriceCalculator(catalog),
            CoLocationThroughputTable(default_tput=1.0),
            jobs={},
        )
        hom_packed = full_reconfiguration(tasks, catalog, hom_ev)
        assert configuration_cost(het_packed) == pytest.approx(
            configuration_cost(hom_packed)
        )

    def test_speedy_family_attracts_tasks(self, catalog):
        """Tasks that run 3x faster on R7i should land on R7i."""
        profile = FamilySpeedProfile(speeds={"W": {"r7i": 3.0}})
        tasks = [
            make_job(
                "W", {"*": ResourceVector(0, 4, 8)}, 1.0, job_id=f"s{i}"
            ).tasks[0]
            for i in range(4)
        ]
        packed = heterogeneous_full_reconfiguration(
            tasks, catalog, self._evaluator(catalog, profile)
        )
        for p in packed:
            assert p.instance_type.family == "r7i"

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=25), st.integers(min_value=0, max_value=1000))
    def test_property_all_assigned(self, n, seed):
        catalog = ec2_catalog()
        tasks = microbench_task_pool(n, seed=seed)
        packed = heterogeneous_full_reconfiguration(
            tasks, catalog, self._evaluator(catalog)
        )
        assert sum(len(p.tasks) for p in packed) == n
