"""Tests for the determinism & invariant linter (``repro.analysis``).

Covers all six rule classes with crafted positive/negative sources,
suppression-comment parsing, baseline matching, the seeded historical
bug classes from the acceptance criteria (unsorted frozenset iteration
in a packing tie-break; a Scenario field missing from the fingerprint),
and — as the tier-1 gate — a full run over the real tree that must
produce zero findings outside the (empty) baseline.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, replace

import pytest

from repro.analysis.contracts import (
    ClassIndex,
    check_action_vocabulary,
    check_observation_purity,
)
from repro.analysis.coverage import (
    CoverageTarget,
    check_fingerprint_coverage,
    check_pickle_omission,
    default_coverage_targets,
)
from repro.analysis.determinism import (
    check_banned_calls,
    check_unordered_iteration,
)
from repro.analysis.findings import Finding, baseline_delta
from repro.analysis.runner import run_analysis
from repro.analysis.visitor import ModuleFacts, SourceFile, collect_facts
from repro.sim.fingerprint import fingerprint

CORE_PATH = "src/repro/core/_fixture.py"


def _facts(source: str, path: str = CORE_PATH) -> ModuleFacts:
    return collect_facts(SourceFile.from_text(textwrap.dedent(source), path))


def _run_ast_rules(source: str, path: str = CORE_PATH) -> list[Finding]:
    """All four AST rules + suppression filtering, like the runner."""
    facts = _facts(source, path)
    index = ClassIndex([facts])
    raw = (
        check_unordered_iteration(facts)
        + check_banned_calls(facts)
        + check_action_vocabulary(facts, index)
        + check_observation_purity(facts, index)
    )
    kept = [f for f in raw if not facts.source.suppressions.suppresses(f)]
    kept.extend(facts.source.suppressions.errors)
    kept.extend(facts.source.suppressions.unused_findings(path))
    return kept


def _rules(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Rule 1: unordered-iteration
# ---------------------------------------------------------------------------


class TestUnorderedIteration:
    @pytest.mark.parametrize(
        "body",
        [
            "for x in {1, 2, 3}:\n    use(x)",
            "for x in frozenset(items):\n    use(x)",
            "for x in mapping.keys():\n    use(x)",
            "out = [f(x) for x in set(items)]",
            "out = {x: f(x) for x in set(items)}",
            "best = max(frozenset(items))",
            "worst = min(st.task_ids)",
            "ordered = list({1, 2})",
            "total = sum(set(values))",
        ],
    )
    def test_positive(self, body: str) -> None:
        findings = _run_ast_rules(f"def f(items, mapping, st, values):\n"
                                  + textwrap.indent(textwrap.dedent(body), "    "))
        assert "unordered-iteration" in _rules(findings), body

    @pytest.mark.parametrize(
        "body",
        [
            # sorted() imposes an order.
            "for x in sorted({1, 2, 3}):\n    use(x)",
            "out = sorted(f(x) for x in set(items))",
            "best = max(sorted(st.task_ids))",
            # Order-insensitive consumers.
            "out = frozenset(f(x) for x in st.task_ids)",
            "out = {f(x) for x in set(items)}",
            "flag = any(x > 1 for x in frozenset(items))",
            "n = len(st.task_ids)",
            # Lists/dicts iterate deterministically.
            "for x in [1, 2, 3]:\n    use(x)",
            "for k, v in mapping.items():\n    use(k)",
        ],
    )
    def test_negative(self, body: str) -> None:
        findings = _run_ast_rules(f"def f(items, mapping, st, values):\n"
                                  + textwrap.indent(textwrap.dedent(body), "    "))
        assert "unordered-iteration" not in _rules(findings), body

    def test_local_assignment_flow(self) -> None:
        source = """
        def f(items):
            pool = frozenset(items)
            return [g(x) for x in pool]
        """
        assert "unordered-iteration" in _rules(_run_ast_rules(source))

    def test_isinstance_narrowing(self) -> None:
        source = """
        def f(value):
            if isinstance(value, (set, frozenset)):
                return [g(x) for x in value]
            return [g(x) for x in value]
        """
        findings = [
            f for f in _run_ast_rules(source) if f.rule == "unordered-iteration"
        ]
        assert len(findings) == 1  # only the narrowed branch fires

    def test_out_of_scope_path_is_exempt(self) -> None:
        source = "def f(items):\n    return [g(x) for x in set(items)]\n"
        assert _run_ast_rules(source, path="src/repro/workloads/x.py") == []

    def test_seeded_packing_tie_break_bug_fails_gate(self) -> None:
        """Acceptance criterion: the PR 1 bug class must be caught."""
        source = """
        def pick_candidate(candidates, score):
            pool = frozenset(candidates)
            return max(pool, key=score)
        """
        findings = _run_ast_rules(source, path="src/repro/core/packing.py")
        assert _rules(findings) == {"unordered-iteration"}


# ---------------------------------------------------------------------------
# Rule 2: banned-call
# ---------------------------------------------------------------------------


class TestBannedCalls:
    @pytest.mark.parametrize(
        "body",
        [
            "t = time.time()",
            "t = time.time_ns()",
            "r = random.random()",
            "r = random.randint(0, 10)",
            "h = hash(key)",
            "h = id(obj)",
            "u = uuid.uuid4()",
            "b = os.urandom(8)",
            "x = np.random.rand(3)",
            "np.random.seed(0)",
        ],
    )
    def test_positive(self, body: str) -> None:
        findings = _run_ast_rules(f"def f(key, obj):\n    {body}")
        assert "banned-call" in _rules(findings), body

    @pytest.mark.parametrize(
        "body",
        [
            "t = time.perf_counter()",
            "rng = np.random.default_rng(seed)",
            "ss = np.random.SeedSequence(seed)",
            "rng = random.Random(seed)",
        ],
    )
    def test_negative(self, body: str) -> None:
        findings = _run_ast_rules(f"def f(seed):\n    {body}")
        assert "banned-call" not in _rules(findings), body

    def test_hash_allowed_only_inside_dunder_hash(self) -> None:
        source = """
        class Thing:
            def __hash__(self):
                return hash(self.stable_id)

            def bucket(self):
                return hash(self.stable_id) % 8
        """
        findings = [f for f in _run_ast_rules(source) if f.rule == "banned-call"]
        assert len(findings) == 1  # only bucket() fires


# ---------------------------------------------------------------------------
# Rule 5: action-vocabulary
# ---------------------------------------------------------------------------

_SCHEDULER_PREAMBLE = """
        class Scheduler:
            action_types = None
"""


class TestActionVocabulary:
    def test_positive_undeclared_construction(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class TightScheduler(Scheduler):
            action_types = frozenset({LaunchInstance, AssignTask})

            def schedule(self, snapshot):
                return [MigrateTask(task_id="t", instance_id="i")]
        """
        findings = _run_ast_rules(source)
        assert "action-vocabulary" in _rules(findings)
        assert "MigrateTask" in findings[0].message

    def test_negative_declared_construction(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class TightScheduler(Scheduler):
            action_types = frozenset({LaunchInstance, AssignTask})

            def schedule(self, snapshot):
                return [AssignTask(task_id="t", instance_id="i")]
        """
        assert "action-vocabulary" not in _rules(_run_ast_rules(source))

    def test_vocabulary_inherited_from_base(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class BaseScheduler(Scheduler):
            action_types = frozenset({AssignTask})

        class ChildScheduler(BaseScheduler):
            def schedule(self, snapshot):
                return [TerminateInstance(instance_id="i")]
        """
        findings = _run_ast_rules(source)
        assert "action-vocabulary" in _rules(findings)
        assert "ChildScheduler" in findings[0].message

    def test_no_declaration_means_unrestricted(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class OpenScheduler(Scheduler):
            def schedule(self, snapshot):
                return [MigrateTask(task_id="t", instance_id="i")]
        """
        assert "action-vocabulary" not in _rules(_run_ast_rules(source))

    def test_non_scheduler_classes_exempt(self) -> None:
        source = """
        class Environment:
            action_types = frozenset({AssignTask})

            def replay(self):
                return [MigrateTask(task_id="t", instance_id="i")]
        """
        assert "action-vocabulary" not in _rules(_run_ast_rules(source))


# ---------------------------------------------------------------------------
# Rule 6: observation-purity
# ---------------------------------------------------------------------------


class TestObservationPurity:
    def test_positive_deadline_sniffing(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class Sniffer(Scheduler):
            def decide(self, snapshot, observations):
                for job in snapshot.jobs:
                    if job.deadline_hours is not None:
                        self.escalate(job)
        """
        findings = _run_ast_rules(source)
        assert "observation-purity" in _rules(findings)
        assert "DeadlineApproaching" in findings[0].message

    def test_positive_private_snapshot_access(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class Reacher(Scheduler):
            def schedule(self, snapshot):
                return snapshot._instances
        """
        assert "observation-purity" in _rules(_run_ast_rules(source))

    def test_negative_own_state_and_observations(self) -> None:
        source = _SCHEDULER_PREAMBLE + """
        class Clean(Scheduler):
            def observe(self, observations):
                for obs in observations:
                    self._deadlines[obs.job_id] = obs.deadline_s

            def schedule(self, snapshot):
                self._memo = self._memo or {}
                return list(self._deadlines)
        """
        assert "observation-purity" not in _rules(_run_ast_rules(source))

    def test_negative_non_scheduler_reads_freely(self) -> None:
        source = """
        class TraceBuilder:
            def attach(self, job):
                return job.deadline_hours
        """
        assert "observation-purity" not in _rules(_run_ast_rules(source))


# ---------------------------------------------------------------------------
# Rule 3: fingerprint-coverage
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _LeakyConfig:
    """Fixture: ``knob_b`` was added but the hook never learned of it."""

    knob_a: int = 1
    knob_b: int = 2

    def __fingerprint__(self) -> dict:
        return {"knob_a": self.knob_a}


@dataclass(frozen=True)
class _CoveredConfig:
    knob_a: int = 1
    label: str = "x"

    def fingerprint(self) -> str:
        return fingerprint(replace(self, label="x"))


class TestFingerprintCoverage:
    def test_broken_fixture_fires(self) -> None:
        findings = check_fingerprint_coverage(
            [CoverageTarget(cls=_LeakyConfig, sample=_LeakyConfig)]
        )
        assert [f.rule for f in findings] == ["fingerprint-coverage"]
        assert "knob_b" in findings[0].message

    def test_covered_fields_pass(self) -> None:
        findings = check_fingerprint_coverage(
            [
                CoverageTarget(
                    cls=_CoveredConfig,
                    sample=_CoveredConfig,
                    excluded=frozenset({"label"}),
                )
            ]
        )
        assert findings == []

    def test_seeded_scenario_exclusion_bug_fails_gate(self) -> None:
        """Acceptance criterion: a Scenario field missing from the
        fingerprint (here: ``label`` stripped but *not* declared
        excluded) must fire."""
        findings = check_fingerprint_coverage(
            [CoverageTarget(cls=_CoveredConfig, sample=_CoveredConfig)]
        )
        assert [f.rule for f in findings] == ["fingerprint-coverage"]
        assert "label" in findings[0].message

    def test_stale_exclusion_fires(self) -> None:
        findings = check_fingerprint_coverage(
            [
                CoverageTarget(
                    cls=_CoveredConfig,
                    sample=_CoveredConfig,
                    excluded=frozenset({"label", "ghost"}),
                )
            ]
        )
        assert any("ghost" in f.message for f in findings)

    def test_missing_candidate_fires(self) -> None:
        @dataclass(frozen=True)
        class Opaque:
            payload: tuple = ()

        findings = check_fingerprint_coverage(
            [CoverageTarget(cls=Opaque, sample=Opaque)]
        )
        assert any("perturbation candidate" in f.message for f in findings)

    def test_real_config_classes_are_covered(self) -> None:
        assert check_fingerprint_coverage(default_coverage_targets()) == []


# ---------------------------------------------------------------------------
# Rule 4: pickle-default-omission
# ---------------------------------------------------------------------------


class TestPickleOmission:
    def test_real_tree_is_clean(self) -> None:
        assert check_pickle_omission() == []

    def test_unomitted_new_field_fires(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.analysis.coverage as coverage

        monkeypatch.setattr(
            coverage,
            "LEGACY_RESULT_FIELDS",
            coverage.LEGACY_RESULT_FIELDS - {"preemptions"},
        )
        findings = check_pickle_omission()
        assert any(
            f.rule == "pickle-default-omission" and "preemptions" in f.message
            for f in findings
        )

    def test_record_shape_drift_fires(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.analysis.coverage as coverage

        pins = dict(coverage.PINNED_RECORD_FIELDS)
        pins["RepairOutcome"] = ("job_id", "failed_s")
        monkeypatch.setattr(coverage, "PINNED_RECORD_FIELDS", pins)
        findings = check_pickle_omission()
        assert any("RepairOutcome" in f.message for f in findings)


# ---------------------------------------------------------------------------
# Suppressions & baseline
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression_silences(self) -> None:
        source = (
            "def f(items):\n"
            "    return [g(x) for x in set(items)]"
            "  # eva: allow[unordered-iteration] -- g() is commutative here\n"
        )
        assert _run_ast_rules(source) == []

    def test_standalone_line_above_suppresses(self) -> None:
        source = (
            "def f(items):\n"
            "    # eva: allow[unordered-iteration] -- order-free accumulation\n"
            "    return [g(x) for x in set(items)]\n"
        )
        assert _run_ast_rules(source) == []

    def test_missing_reason_is_a_finding(self) -> None:
        source = (
            "def f(items):\n"
            "    return [g(x) for x in set(items)]"
            "  # eva: allow[unordered-iteration]\n"
        )
        rules = _rules(_run_ast_rules(source))
        # The malformed escape does not silence the finding it targets.
        assert rules == {"suppression-syntax", "unordered-iteration"}

    def test_wrong_rule_does_not_suppress(self) -> None:
        source = (
            "def f(items):\n"
            "    return [g(x) for x in set(items)]"
            "  # eva: allow[banned-call] -- wrong rule\n"
        )
        rules = _rules(_run_ast_rules(source))
        assert "unordered-iteration" in rules
        assert "unused-suppression" in rules

    def test_unused_suppression_is_a_finding(self) -> None:
        source = (
            "def f(items):\n"
            "    return sorted(items)"
            "  # eva: allow[unordered-iteration] -- stale escape\n"
        )
        assert _rules(_run_ast_rules(source)) == {"unused-suppression"}

    def test_string_literals_are_not_suppressions(self) -> None:
        source = (
            "def f(items):\n"
            '    doc = "# eva: allow[unordered-iteration] -- not a comment"\n'
            "    return [g(x) for x in set(items)]\n"
        )
        assert "unordered-iteration" in _rules(_run_ast_rules(source))


class TestBaseline:
    def test_multiset_matching(self) -> None:
        finding = Finding(rule="r", path="p.py", line=3, message="m")
        twin = Finding(rule="r", path="p.py", line=9, message="m")
        new, stale = baseline_delta([finding, twin], [finding])
        assert new == [twin]  # one baseline slot covers one occurrence
        assert stale == []

    def test_line_numbers_do_not_matter(self) -> None:
        old = Finding(rule="r", path="p.py", line=3, message="m")
        moved = Finding(rule="r", path="p.py", line=300, message="m")
        new, stale = baseline_delta([moved], [old])
        assert new == [] and stale == []

    def test_stale_entries_reported(self) -> None:
        gone = Finding(rule="r", path="p.py", line=3, message="m")
        new, stale = baseline_delta([], [gone])
        assert new == [] and stale == [gone]


# ---------------------------------------------------------------------------
# The tier-1 gate: the real tree is clean
# ---------------------------------------------------------------------------


class TestRepositoryGate:
    def test_full_tree_has_no_new_findings(self) -> None:
        report = run_analysis()
        assert report.parse_errors == {}
        assert report.new == [], "\n".join(f.render() for f in report.new)
        assert report.stale == [], "stale baseline entries should be deleted"
        assert report.files_scanned > 50
