"""Unit tests for container lifecycle and global storage."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.runtime.container import (
    ContainerError,
    ContainerSpec,
    ContainerState,
    GlobalStorage,
    SimContainer,
)


def _container():
    return SimContainer(
        container_id="c",
        spec=ContainerSpec(
            image="img", command="cmd", demands={"*": ResourceVector(0, 1, 1)}
        ),
    )


class TestLifecycle:
    def test_normal_flow(self):
        c = _container()
        c.start()
        c.progress(10.0)
        assert c.iterations_done == 10.0
        c.checkpoint()
        assert c.state is ContainerState.CHECKPOINTED
        c.start()  # restore
        assert c.restore_count == 1
        assert c.iterations_done == 10.0
        c.stop()
        assert c.state is ContainerState.STOPPED

    def test_cannot_progress_unstarted(self):
        with pytest.raises(ContainerError):
            _container().progress(1.0)

    def test_cannot_checkpoint_unstarted(self):
        with pytest.raises(ContainerError):
            _container().checkpoint()

    def test_cannot_start_running(self):
        c = _container()
        c.start()
        with pytest.raises(ContainerError):
            c.start()

    def test_cannot_stop_twice(self):
        c = _container()
        c.start()
        c.stop()
        with pytest.raises(ContainerError):
            c.stop()

    def test_negative_progress_rejected(self):
        c = _container()
        c.start()
        with pytest.raises(ContainerError):
            c.progress(-1.0)

    def test_restore_discards_uncheckpointed_progress(self):
        c = _container()
        c.start()
        c.progress(10.0)
        c.checkpoint()
        # Progress past the checkpoint would be lost on restore; we model
        # restore-from-checkpoint exactly.
        c.start()
        assert c.iterations_done == 10.0

    def test_snapshot_payload(self):
        c = _container()
        c.start()
        snap = c.snapshot()
        assert snap["state"] == "running"
        assert snap["container_id"] == "c"


class TestStorage:
    def test_put_get_delete(self):
        storage = GlobalStorage()
        storage.put("k", {"a": 1})
        assert storage.get("k") == {"a": 1}
        storage.delete("k")
        assert storage.get("k") is None

    def test_get_returns_copy(self):
        storage = GlobalStorage()
        storage.put("k", {"a": 1})
        blob = storage.get("k")
        blob["a"] = 99
        assert storage.get("k") == {"a": 1}

    def test_keys_sorted(self):
        storage = GlobalStorage()
        storage.put("b", {})
        storage.put("a", {})
        assert storage.keys() == ["a", "b"]
