"""Unit and property tests for RP/TNRP evaluators and pack states."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.cluster.task import make_job
from repro.core.evaluation import RPEvaluator, TNRPEvaluator
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import (
    CoLocationThroughputTable,
    TaskPlacementObservation,
)


@pytest.fixture()
def calc(example_catalog):
    return ReservationPriceCalculator(example_catalog)


def _job(workload, demand, num_tasks=1, job_id=None):
    return make_job(
        workload, {"*": ResourceVector(*demand)}, 1.0,
        num_tasks=num_tasks, job_id=job_id,
    )


class TestRPEvaluator:
    def test_set_value_additive(self, calc, example_tasks):
        ev = RPEvaluator(calc)
        assert ev.set_value(example_tasks) == pytest.approx(16.2)

    def test_pack_state_incremental(self, calc, example_tasks):
        ev = RPEvaluator(calc)
        state = ev.make_state()
        total = 0.0
        for task in example_tasks:
            assert state.value_with(task) == pytest.approx(total + calc.rp(task))
            state.add(task)
            total += calc.rp(task)
        assert state.value == pytest.approx(16.2)

    def test_cost_efficiency_check(self, calc, example_tasks, example_catalog):
        ev = RPEvaluator(calc)
        it1 = example_catalog[0]
        assert ev.is_cost_efficient(
            [example_tasks[0], example_tasks[1]], it1.hourly_cost
        )
        assert not ev.is_cost_efficient([example_tasks[1]], it1.hourly_cost)


class TestTNRPSingleTask:
    def test_paper_example_section_4_3(self, calc, example_tasks):
        """§4.3: co-locating tau1 (0.8) and tau2 (0.9) on it1: 12.3 > 12."""
        table = CoLocationThroughputTable()
        table.observe_single_task_job(
            TaskPlacementObservation("w1", ("w2",)), 0.8
        )
        table.observe_single_task_job(
            TaskPlacementObservation("w2", ("w1",)), 0.9
        )
        ev = TNRPEvaluator(calc, table, jobs={}, multi_task_aware=False)
        value = ev.set_value([example_tasks[0], example_tasks[1]])
        assert value == pytest.approx(12.0 * 0.8 + 3.0 * 0.9)

    def test_paper_example_severe_interference(self, calc, example_tasks):
        table = CoLocationThroughputTable()
        table.observe_single_task_job(
            TaskPlacementObservation("w1", ("w2",)), 0.7
        )
        table.observe_single_task_job(
            TaskPlacementObservation("w2", ("w1",)), 0.8
        )
        ev = TNRPEvaluator(calc, table, jobs={}, multi_task_aware=False)
        value = ev.set_value([example_tasks[0], example_tasks[1]])
        assert value == pytest.approx(10.8)
        assert not ev.is_cost_efficient(
            [example_tasks[0], example_tasks[1]], 12.0
        )

    def test_singleton_equals_rp(self, calc, example_tasks):
        ev = TNRPEvaluator(calc, CoLocationThroughputTable(), jobs={})
        assert ev.set_value([example_tasks[0]]) == pytest.approx(12.0)


class TestTNRPMultiTask:
    def test_multi_task_penalty_formula(self, calc):
        """§4.4: TNRP(tau, T) = RP(tau) - sum_j (1 - tput) RP(tau')."""
        job = _job("w1", (2, 8, 24), num_tasks=2, job_id="mt")
        jobs = {"mt": job}
        table = CoLocationThroughputTable(default_tput=0.9)
        ev = TNRPEvaluator(calc, table, jobs=jobs, multi_task_aware=True)
        task = job.tasks[0]
        rp = calc.rp(task)
        job_rp = 2 * rp
        # One neighbour at default 0.9.
        expected = rp - (1 - 0.9) * job_rp
        assert ev.task_tnrp(task, ["other"]) == pytest.approx(expected)

    def test_single_task_job_reduces_to_tput_times_rp(self, calc):
        job = _job("w1", (2, 8, 24), job_id="st")
        table = CoLocationThroughputTable(default_tput=0.9)
        ev = TNRPEvaluator(calc, table, jobs={"st": job}, multi_task_aware=True)
        task = job.tasks[0]
        assert ev.task_tnrp(task, ["x"]) == pytest.approx(0.9 * calc.rp(task))

    def test_multi_aware_toggle(self, calc):
        job = _job("w1", (2, 8, 24), num_tasks=4, job_id="mt4")
        table = CoLocationThroughputTable(default_tput=0.8)
        aware = TNRPEvaluator(calc, table, jobs={"mt4": job}, multi_task_aware=True)
        blind = TNRPEvaluator(calc, table, jobs={"mt4": job}, multi_task_aware=False)
        task = job.tasks[0]
        assert aware.task_tnrp(task, ["x"]) < blind.task_tnrp(task, ["x"])

    def test_group_key_includes_arity(self, calc):
        job2 = _job("w1", (2, 8, 24), num_tasks=2, job_id="a")
        job4 = _job("w1", (2, 8, 24), num_tasks=4, job_id="b")
        ev = TNRPEvaluator(
            calc,
            CoLocationThroughputTable(),
            jobs={"a": job2, "b": job4},
            multi_task_aware=True,
        )
        assert ev.group_key(job2.tasks[0]) != ev.group_key(job4.tasks[0])


class TestPackStateConsistency:
    workloads = ("ResNet18", "GraphSAGE", "CycleGAN", "GPT2", "GCN")

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sampled_from(workloads), min_size=1, max_size=7),
        st.booleans(),
    )
    def test_incremental_matches_batch(self, names, with_exact, ):
        """PackState increments must agree with set_value recomputation."""
        from repro.cloud.catalog import ec2_catalog

        calc = ReservationPriceCalculator(ec2_catalog())
        table = CoLocationThroughputTable(default_tput=0.95)
        table.observe_single_task_job(
            TaskPlacementObservation("ResNet18", ("GCN",)), 0.83
        )
        if with_exact:
            table.observe_single_task_job(
                TaskPlacementObservation("ResNet18", ("GCN", "GPT2")), 0.6
            )
        jobs = {}
        tasks = []
        for i, name in enumerate(names):
            job = _job(name, (1, 4, 8), job_id=f"j{i}")
            jobs[job.job_id] = job
            tasks.append(job.tasks[0])
        ev = TNRPEvaluator(calc, table, jobs=jobs, multi_task_aware=True)
        state = ev.make_state()
        added = []
        for task in tasks:
            expected = ev.set_value(added + [task])
            assert state.value_with(task) == pytest.approx(expected, rel=1e-9)
            state.add(task)
            added.append(task)
            assert state.value == pytest.approx(ev.set_value(added), rel=1e-9)
