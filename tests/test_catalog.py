"""Unit tests for the EC2 catalog (§6.1)."""

import pytest

from repro.cloud.catalog import (
    catalog_by_name,
    cheapest_feasible_type,
    ec2_catalog,
    feasible_types,
    paper_example_catalog,
    sorted_by_cost_desc,
)
from repro.workloads.workloads import TABLE7_WORKLOADS


class TestEc2Catalog:
    def test_twenty_one_types(self, catalog):
        assert len(catalog) == 21

    def test_family_split(self, catalog):
        families = {}
        for it in catalog:
            families[it.family] = families.get(it.family, 0) + 1
        assert families == {"p3": 3, "c7i": 9, "r7i": 9}

    def test_only_p3_has_gpus(self, catalog):
        for it in catalog:
            assert (it.capacity.gpus > 0) == (it.family == "p3")

    def test_prices_positive_and_monotone_within_family(self, catalog):
        for family in ("p3", "c7i", "r7i"):
            members = sorted(
                (it for it in catalog if it.family == family),
                key=lambda it: it.capacity.cpus,
            )
            costs = [it.hourly_cost for it in members]
            assert all(c > 0 for c in costs)
            assert costs == sorted(costs)

    def test_sorted_by_cost_desc(self, catalog):
        ordered = sorted_by_cost_desc(catalog)
        costs = [it.hourly_cost for it in ordered]
        assert costs == sorted(costs, reverse=True)
        assert ordered[0].name == "p3.16xlarge"

    def test_catalog_by_name(self, catalog):
        index = catalog_by_name(catalog)
        assert index["p3.2xlarge"].capacity.gpus == 1
        assert index["r7i.48xlarge"].capacity.ram_gb == 1536


class TestFeasibility:
    def test_every_workload_fits_somewhere(self, catalog):
        for spec in TABLE7_WORKLOADS:
            task = spec.make_job(1.0).tasks[0]
            assert feasible_types(task, catalog), spec.name

    def test_cheapest_feasible_types_match_expectations(self, catalog):
        expectations = {
            "ResNet18-2": "p3.2xlarge",
            "ViT": "p3.8xlarge",  # 2 GPUs exceed p3.2xlarge
            "GPT2": "p3.8xlarge",
            "A3C": "c7i.xlarge",  # 4 CPUs / 8 GB on c7i
            "Diamond": "c7i.2xlarge",
            "OpenFOAM": "c7i.2xlarge",
            "GCN": "r7i.2xlarge",  # 40 GB RAM forces the memory family
        }
        for name, expected in expectations.items():
            spec = next(w for w in TABLE7_WORKLOADS if w.name == name)
            task = spec.make_job(1.0).tasks[0]
            assert cheapest_feasible_type(task, catalog).name == expected

    def test_infeasible_task_returns_none(self, catalog):
        from repro.cluster.resources import ResourceVector
        from repro.cluster.task import make_job

        job = make_job("huge", {"*": ResourceVector(16, 1, 1)}, 1.0)
        assert cheapest_feasible_type(job.tasks[0], catalog) is None


class TestPaperExample:
    def test_table3_catalog(self, example_catalog):
        costs = {it.name: it.hourly_cost for it in example_catalog}
        assert costs == {"it1": 12.0, "it2": 3.0, "it3": 0.8, "it4": 0.4}
