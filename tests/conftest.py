"""Shared fixtures for the test suite."""

import pytest

from repro.cloud.catalog import ec2_catalog, paper_example_catalog
from repro.cluster.resources import ResourceVector
from repro.cluster.task import make_job


@pytest.fixture(scope="session")
def catalog():
    """The 21-type EC2 catalog (§6.1)."""
    return ec2_catalog()


@pytest.fixture(scope="session")
def example_catalog():
    """The 4-type worked-example catalog (Table 3a)."""
    return paper_example_catalog()


@pytest.fixture()
def example_tasks():
    """The 4 tasks of the paper's worked example (Table 3b)."""
    demands = [
        (2, 8, 24),
        (1, 4, 10),
        (0, 6, 20),
        (0, 4, 12),
    ]
    tasks = []
    for i, (g, c, m) in enumerate(demands, 1):
        job = make_job(
            f"w{i}",
            {"*": ResourceVector(g, c, m)},
            duration_hours=1.0,
            job_id=f"tau{i}",
        )
        tasks.append(job.tasks[0])
    return tasks
