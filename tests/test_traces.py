"""Unit and property tests for traces and the synthetic generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.synthetic import (
    microbench_task_pool,
    multitask_microbench_trace,
    synthetic_trace,
)
from repro.workloads.trace import Trace, poisson_arrival_times


class TestSyntheticTrace:
    def test_sizes(self):
        assert len(synthetic_trace(32, seed=0)) == 32
        assert len(synthetic_trace(120, seed=0)) == 120

    def test_sorted_arrivals(self):
        trace = synthetic_trace(50, seed=1)
        arrivals = [j.arrival_time_s for j in trace]
        assert arrivals == sorted(arrivals)

    def test_durations_in_range(self):
        trace = synthetic_trace(100, seed=2, duration_range_hours=(0.5, 3.0))
        assert all(0.5 <= j.duration_hours <= 3.0 for j in trace)

    def test_deterministic_given_seed(self):
        a = synthetic_trace(20, seed=5)
        b = synthetic_trace(20, seed=5)
        assert [j.workload for j in a] == [j.workload for j in b]
        assert [j.arrival_time_s for j in a] == [j.arrival_time_s for j in b]

    def test_different_seeds_differ(self):
        a = synthetic_trace(20, seed=5)
        b = synthetic_trace(20, seed=6)
        assert [j.arrival_time_s for j in a] != [j.arrival_time_s for j in b]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_trace(0)
        with pytest.raises(ValueError):
            synthetic_trace(5, duration_range_hours=(3.0, 1.0))

    def test_mean_interarrival(self):
        trace = synthetic_trace(2000, seed=3, mean_interarrival_s=1200.0)
        arrivals = np.array([j.arrival_time_s for j in trace])
        gaps = np.diff(arrivals)
        assert gaps.mean() == pytest.approx(1200.0, rel=0.15)


class TestMultitaskTrace:
    def test_arity(self):
        trace = multitask_microbench_trace(num_jobs=10, tasks_per_job=4, seed=0)
        assert all(j.num_tasks == 4 for j in trace)

    def test_duration_range(self):
        trace = multitask_microbench_trace(num_jobs=30, seed=1)
        assert all(0.5 <= j.duration_hours <= 16.0 for j in trace)


class TestTaskPool:
    def test_pool_size_and_uniqueness(self):
        pool = microbench_task_pool(50, seed=0)
        assert len(pool) == 50
        assert len({t.task_id for t in pool}) == 50


class TestTraceContainer:
    def test_head(self):
        trace = synthetic_trace(10, seed=0)
        assert len(trace.head(3)) == 3

    def test_filter(self):
        trace = synthetic_trace(30, seed=0)
        gpu_only = trace.filter(lambda j: j.tasks[0].max_demand.gpus > 0)
        assert all(j.tasks[0].max_demand.gpus > 0 for j in gpu_only)

    def test_unsorted_rejected(self):
        trace = synthetic_trace(5, seed=0)
        shuffled = tuple(reversed(trace.jobs))
        with pytest.raises(ValueError):
            Trace(name="bad", jobs=shuffled)

    def test_json_round_trip(self):
        trace = synthetic_trace(8, seed=4)
        restored = Trace.from_json(trace.to_json())
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert a.job_id == b.job_id
            assert a.duration_hours == b.duration_hours
            assert a.workload == b.workload
            assert [t.task_id for t in a.tasks] == [t.task_id for t in b.tasks]
            for ta, tb in zip(a.tasks, b.tasks):
                assert ta.demands == dict(tb.demands)
                assert ta.migration == tb.migration

    def test_save_load(self, tmp_path):
        trace = synthetic_trace(3, seed=9)
        path = tmp_path / "trace.json"
        trace.save(path)
        assert len(Trace.load(path)) == 3

    def test_stats(self):
        trace = synthetic_trace(40, seed=0)
        comp = trace.gpu_demand_composition()
        assert sum(comp.values()) == pytest.approx(1.0)
        assert trace.num_tasks() >= len(trace)
        assert trace.span_hours() > 0


class TestPoissonArrivals:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_monotone_nonnegative(self, n):
        times = poisson_arrival_times(n, 60.0, np.random.default_rng(0))
        assert len(times) == n
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    def test_empty(self):
        assert poisson_arrival_times(0, 60.0, np.random.default_rng(0)) == []
