"""Unit tests for the ILP scheduler (§4.1)."""

import itertools

import pytest

from repro.cluster.resources import ResourceVector
from repro.cluster.state import tasks_fit_on_type
from repro.cluster.task import make_job
from repro.core.ilp import ilp_schedule
from repro.workloads.synthetic import microbench_task_pool


def _tasks(*demands):
    tasks = []
    for i, d in enumerate(demands):
        job = make_job(
            f"w{i}", {"*": ResourceVector(*d)}, 1.0, job_id=f"ilp{i}"
        )
        tasks.append(job.tasks[0])
    return tasks


def brute_force_cost(tasks, catalog):
    """Exhaustive optimum over all set partitions and type choices."""

    def partitions(items):
        if not items:
            yield []
            return
        first, rest = items[0], items[1:]
        for part in partitions(rest):
            for i in range(len(part)):
                yield part[:i] + [[first] + part[i]] + part[i + 1 :]
            yield part + [[first]]

    best = float("inf")
    for part in partitions(tasks):
        cost = 0.0
        for block in part:
            feasible = [
                it.hourly_cost
                for it in catalog
                if tasks_fit_on_type(block, it)
            ]
            if not feasible:
                cost = float("inf")
                break
            cost += min(feasible)
        best = min(best, cost)
    return best


class TestSmallExact:
    def test_paper_example_optimal(self, example_catalog, example_tasks):
        result = ilp_schedule(example_tasks, example_catalog, time_limit_s=30)
        assert result.proven_optimal
        assert result.hourly_cost == pytest.approx(12.8)

    def test_matches_brute_force(self, example_catalog):
        tasks = _tasks((1, 4, 10), (1, 4, 10), (0, 4, 12), (0, 6, 20))
        result = ilp_schedule(tasks, example_catalog, time_limit_s=30)
        expected = brute_force_cost(tasks, example_catalog)
        assert result.proven_optimal
        assert result.hourly_cost == pytest.approx(expected)

    def test_empty(self, example_catalog):
        result = ilp_schedule([], example_catalog)
        assert result.hourly_cost == 0.0
        assert result.packed == []


class TestSolutionStructure:
    def test_assignment_complete_and_feasible(self, example_catalog):
        tasks = _tasks((2, 8, 24), (1, 4, 10), (0, 6, 20), (0, 4, 12))
        result = ilp_schedule(tasks, example_catalog, time_limit_s=30)
        assert result.packed is not None
        assigned = sorted(
            t.task_id for p in result.packed for t in p.tasks
        )
        assert assigned == sorted(t.task_id for t in tasks)
        for p in result.packed:
            assert tasks_fit_on_type(p.tasks, p.instance_type)

    def test_cost_matches_instances(self, example_catalog, example_tasks):
        result = ilp_schedule(example_tasks, example_catalog, time_limit_s=30)
        total = sum(p.hourly_cost for p in result.packed)
        assert total == pytest.approx(result.hourly_cost)

    def test_never_worse_than_full_reconfig(self):
        from repro.cloud.catalog import ec2_catalog
        from repro.core.evaluation import RPEvaluator
        from repro.core.full_reconfig import (
            configuration_cost,
            full_reconfiguration,
        )
        from repro.core.reservation_price import ReservationPriceCalculator

        catalog = ec2_catalog()
        tasks = microbench_task_pool(15, seed=1)
        greedy = configuration_cost(
            full_reconfiguration(
                tasks, catalog, RPEvaluator(ReservationPriceCalculator(catalog))
            )
        )
        result = ilp_schedule(tasks, catalog, time_limit_s=60)
        if result.proven_optimal:
            assert result.hourly_cost <= greedy + 1e-6


class TestFamilyAwareness:
    def test_family_specific_demands_respected(self, catalog):
        """A GCN-like task needs 12 CPUs on P3 but 6 on C7i/R7i."""
        from repro.cluster.task import Task

        task = Task(
            task_id="fam/t0",
            job_id="fam",
            workload="GCN",
            demands={
                "p3": ResourceVector(0, 12, 4),
                "c7i": ResourceVector(0, 6, 4),
                "r7i": ResourceVector(0, 6, 4),
            },
        )
        result = ilp_schedule([task], catalog, time_limit_s=30)
        assert result.proven_optimal
        placement = result.packed[0]
        # Optimal: c7i.2xlarge (8 CPUs suffice for the 6-CPU demand).
        assert placement.instance_type.family in ("c7i", "r7i")
        assert placement.instance_type.capacity.cpus >= 6
