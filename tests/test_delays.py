"""Unit tests for the Table 1 delay model."""

import numpy as np
import pytest

from repro.cloud.delays import (
    ACQUISITION_MEAN_S,
    ACQUISITION_RANGE_S,
    CHECKPOINT_MEAN_S,
    DelayModel,
    LAUNCH_MEAN_S,
    SETUP_MEAN_S,
    SETUP_RANGE_S,
)


class TestDeterministic:
    def test_means(self):
        model = DelayModel()
        assert model.acquisition_s() == ACQUISITION_MEAN_S
        assert model.setup_s() == SETUP_MEAN_S
        assert model.checkpoint_s() == CHECKPOINT_MEAN_S
        assert model.launch_s() == LAUNCH_MEAN_S

    def test_instance_ready_combines(self):
        model = DelayModel()
        assert model.instance_ready_s() == ACQUISITION_MEAN_S + SETUP_MEAN_S

    def test_workload_overrides(self):
        model = DelayModel()
        assert model.checkpoint_s(30.0) == 30.0
        assert model.launch_s(160.0) == 160.0
        assert model.migration_s(2.0, 80.0) == 82.0


class TestMultipliers:
    def test_migration_multiplier_scales_job_delays_only(self):
        model = DelayModel(migration_multiplier=2.0)
        assert model.checkpoint_s(10.0) == 20.0
        assert model.launch_s(10.0) == 20.0
        assert model.acquisition_s() == ACQUISITION_MEAN_S

    def test_instance_multiplier_scales_instance_delays_only(self):
        model = DelayModel(instance_multiplier=3.0)
        assert model.acquisition_s() == 3 * ACQUISITION_MEAN_S
        assert model.setup_s() == 3 * SETUP_MEAN_S
        assert model.checkpoint_s(10.0) == 10.0


class TestStochastic:
    def test_samples_respect_published_ranges(self):
        model = DelayModel(stochastic=True, rng=np.random.default_rng(0))
        acq = [model.acquisition_s() for _ in range(300)]
        setup = [model.setup_s() for _ in range(300)]
        assert min(acq) >= ACQUISITION_RANGE_S[0]
        assert max(acq) <= ACQUISITION_RANGE_S[1]
        assert min(setup) >= SETUP_RANGE_S[0]
        assert max(setup) <= SETUP_RANGE_S[1]

    def test_sample_means_near_published(self):
        model = DelayModel(stochastic=True, rng=np.random.default_rng(1))
        acq = np.mean([model.acquisition_s() for _ in range(2000)])
        assert acq == pytest.approx(ACQUISITION_MEAN_S, rel=0.25)

    def test_workload_jitter_bounded(self):
        model = DelayModel(stochastic=True, rng=np.random.default_rng(2))
        values = [model.checkpoint_s(10.0) for _ in range(200)]
        assert all(8.0 <= v <= 12.0 for v in values)

    def test_deterministic_given_seed(self):
        a = DelayModel(stochastic=True, rng=np.random.default_rng(7))
        b = DelayModel(stochastic=True, rng=np.random.default_rng(7))
        assert [a.launch_s() for _ in range(5)] == [b.launch_s() for _ in range(5)]
