"""Unit tests for the Alibaba-like trace synthesis (Tables 8/9)."""

import numpy as np
import pytest

from repro.workloads.alibaba import (
    ALIBABA_MEAN_H,
    AlibabaDurationModel,
    TABLE8_GPU_COMPOSITION,
    remix_multi_gpu,
    remix_multi_task,
    solve_tail_alpha,
    synthesize_alibaba_trace,
)
from repro.workloads.gavel import (
    gavel_mean_hours,
    gavel_quantile_hours,
    sample_gavel_durations_hours,
)


class TestDurationModel:
    def test_quantile_anchors_exact(self):
        model = AlibabaDurationModel()
        assert model.inverse_cdf(0.5) == pytest.approx(0.2)
        assert model.inverse_cdf(0.8) == pytest.approx(1.0)
        assert model.inverse_cdf(0.95) == pytest.approx(5.2)

    def test_monotone_inverse_cdf(self):
        model = AlibabaDurationModel()
        us = np.linspace(0.0, 0.999, 200)
        values = [model.inverse_cdf(float(u)) for u in us]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_mean_matches_table9(self):
        model = AlibabaDurationModel()
        samples = model.sample(np.random.default_rng(0), 60_000)
        assert samples.mean() == pytest.approx(ALIBABA_MEAN_H, rel=0.15)

    def test_tail_alpha_positive(self):
        assert solve_tail_alpha() > 0

    def test_invalid_u_rejected(self):
        model = AlibabaDurationModel()
        with pytest.raises(ValueError):
            model.inverse_cdf(1.0)


class TestTraceComposition:
    def test_gpu_mix_matches_table8(self):
        trace = synthesize_alibaba_trace(6000, seed=0)
        mix = trace.gpu_demand_composition()
        for gpus, target in TABLE8_GPU_COMPOSITION:
            if target >= 0.01:
                assert mix.get(gpus, 0.0) == pytest.approx(target, abs=0.02)

    def test_every_job_feasible(self, catalog):
        from repro.cloud.catalog import cheapest_feasible_type

        trace = synthesize_alibaba_trace(500, seed=1)
        for job in trace:
            for task in job.tasks:
                assert cheapest_feasible_type(task, catalog) is not None

    def test_workload_labels_match_gpu_class(self):
        from repro.workloads.workloads import CPU_WORKLOADS, workload

        trace = synthesize_alibaba_trace(500, seed=2)
        for job in trace:
            demand = job.tasks[0].max_demand
            if demand.gpus == 0:
                assert job.workload in CPU_WORKLOADS
            else:
                assert workload(job.workload).is_gpu_workload

    def test_deterministic(self):
        a = synthesize_alibaba_trace(100, seed=3)
        b = synthesize_alibaba_trace(100, seed=3)
        assert a.to_json() == b.to_json()

    def test_arrival_rate_parameter(self):
        fast = synthesize_alibaba_trace(1000, seed=4, arrival_rate_per_hour=3.0)
        slow = synthesize_alibaba_trace(1000, seed=4, arrival_rate_per_hour=0.5)
        assert slow.span_hours() > fast.span_hours() * 3


class TestRemixes:
    def test_multi_gpu_fraction(self):
        base = synthesize_alibaba_trace(800, seed=5)
        remixed = remix_multi_gpu(base, 0.4, seed=5)
        multi = sum(
            1 for j in remixed if j.tasks[0].max_demand.gpus >= 2
        ) / len(remixed)
        assert multi == pytest.approx(0.4, abs=0.05)
        assert len(remixed) == len(base)

    def test_multi_gpu_preserves_non_gpu_jobs(self):
        base = synthesize_alibaba_trace(500, seed=6)
        remixed = remix_multi_gpu(base, 0.5, seed=6)
        base_cpu = sum(1 for j in base if j.tasks[0].max_demand.gpus == 0)
        remix_cpu = sum(1 for j in remixed if j.tasks[0].max_demand.gpus == 0)
        assert base_cpu == remix_cpu

    def test_multi_gpu_ratio_5_4_1(self):
        base = synthesize_alibaba_trace(3000, seed=7)
        remixed = remix_multi_gpu(base, 0.6, seed=7)
        counts = {2: 0, 4: 0, 8: 0}
        for job in remixed:
            g = int(job.tasks[0].max_demand.gpus)
            if g in counts:
                counts[g] += 1
        total = sum(counts.values())
        assert counts[2] / total == pytest.approx(0.5, abs=0.05)
        assert counts[4] / total == pytest.approx(0.4, abs=0.05)
        assert counts[8] / total == pytest.approx(0.1, abs=0.05)

    def test_multi_task_fraction_and_arity(self):
        base = synthesize_alibaba_trace(600, seed=8)
        remixed = remix_multi_task(base, 0.5, seed=8)
        assert remixed.multi_task_fraction() == pytest.approx(0.5, abs=0.05)
        arities = {j.num_tasks for j in remixed}
        assert arities <= {1, 2, 4}

    def test_multi_task_preserves_demands(self):
        base = synthesize_alibaba_trace(300, seed=9)
        remixed = remix_multi_task(base, 1.0, seed=9)
        for before, after in zip(base, remixed):
            assert (
                after.tasks[0].max_demand == before.tasks[0].max_demand
            )
            assert after.duration_hours == before.duration_hours

    def test_fraction_bounds(self):
        base = synthesize_alibaba_trace(50, seed=10)
        with pytest.raises(ValueError):
            remix_multi_gpu(base, 1.5)
        with pytest.raises(ValueError):
            remix_multi_task(base, -0.1)


class TestGavel:
    def test_closed_form_mean(self):
        assert gavel_mean_hours() == pytest.approx(16.7, abs=0.3)

    def test_closed_form_quantiles(self):
        assert gavel_quantile_hours(0.5) == pytest.approx(4.56, rel=0.02)
        assert gavel_quantile_hours(0.8) == pytest.approx(16.7, rel=0.02)
        assert gavel_quantile_hours(0.95) == pytest.approx(93.7, rel=0.02)

    def test_samples_match_closed_form(self):
        samples = sample_gavel_durations_hours(np.random.default_rng(0), 40_000)
        assert samples.mean() == pytest.approx(gavel_mean_hours(), rel=0.1)
        assert np.median(samples) == pytest.approx(
            gavel_quantile_hours(0.5), rel=0.1
        )
