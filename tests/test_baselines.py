"""Unit tests for the baseline schedulers (§6.1)."""

import pytest

from repro.baselines import (
    NoPackingScheduler,
    OwlScheduler,
    StratusScheduler,
    SynergyScheduler,
    runtime_bin,
)
from repro.cluster.instance import fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.state import ClusterSnapshot, InstanceState
from repro.cluster.task import make_job
from repro.interference.model import InterferenceModel


def _job(workload, demand, job_id, duration=1.0, arrival=0.0):
    return make_job(
        workload, {"*": ResourceVector(*demand)}, duration,
        arrival_time_s=arrival, job_id=job_id,
    )


def _snapshot(jobs, placements=None, time_s=0.0):
    tasks = {t.task_id: t for j in jobs for t in j.tasks}
    instances = [
        InstanceState(instance=inst, task_ids=frozenset(tids))
        for inst, tids in (placements or {}).items()
    ]
    return ClusterSnapshot(
        time_s=time_s,
        tasks=tasks,
        jobs={j.job_id: j for j in jobs},
        instances=instances,
    )


class TestNoPacking:
    def test_one_task_per_instance(self, catalog):
        scheduler = NoPackingScheduler(catalog)
        jobs = [_job("ResNet18-2", (1, 4, 24), f"n{i}") for i in range(3)]
        target = scheduler.schedule(_snapshot(jobs))
        per_instance = {}
        for tid, iid in target.assignment().items():
            per_instance.setdefault(iid, []).append(tid)
        assert all(len(tids) == 1 for tids in per_instance.values())

    def test_uses_cheapest_feasible_type(self, catalog):
        scheduler = NoPackingScheduler(catalog)
        job = _job("A3C", (0, 4, 8), "cpu")
        target = scheduler.schedule(_snapshot([job]))
        assert target.instances[0].instance_type.name == "c7i.xlarge"

    def test_keeps_existing_assignments(self, catalog):
        scheduler = NoPackingScheduler(catalog)
        job = _job("A3C", (0, 4, 8), "keep")
        inst = fresh_instance(scheduler.rp_calculator.rp_type(job.tasks[0]))
        snap = _snapshot([job], {inst: [job.tasks[0].task_id]})
        target = scheduler.schedule(snap)
        assert target.assignment()[job.tasks[0].task_id] == inst.instance_id


class TestStratus:
    def test_runtime_bins_exponential(self):
        assert runtime_bin(0.1) == 0
        assert runtime_bin(0.25) == 0
        assert runtime_bin(0.4) == 1
        assert runtime_bin(0.9) == 2
        assert runtime_bin(1.9) == 3
        assert runtime_bin(30.0) < runtime_bin(200.0)

    def test_same_bin_tasks_colocate(self, catalog):
        # Demands must leave leftover capacity on the first task's
        # cheapest type (c7i.large: 2 CPU / 4 GB) for packing to happen.
        scheduler = StratusScheduler(catalog)
        jobs = [
            _job("A3C", (0, 1, 2), "s1", duration=2.0),
            _job("A3C", (0, 1, 2), "s2", duration=2.1),
        ]
        target = scheduler.schedule(_snapshot(jobs))
        assignment = target.assignment()
        assert assignment["s1/t0"] == assignment["s2/t0"]

    def test_different_bins_do_not_colocate(self, catalog):
        scheduler = StratusScheduler(catalog)
        jobs = [
            _job("A3C", (0, 2, 4), "s1", duration=0.2),
            _job("A3C", (0, 2, 4), "s2", duration=12.0),
        ]
        target = scheduler.schedule(_snapshot(jobs))
        assignment = target.assignment()
        assert assignment["s1/t0"] != assignment["s2/t0"]

    def test_capacity_respected(self, catalog):
        scheduler = StratusScheduler(catalog)
        jobs = [
            _job("GPT2", (4, 4, 10), f"g{i}", duration=2.0) for i in range(3)
        ]
        snapshot = _snapshot(jobs)
        target = scheduler.schedule(snapshot)
        target.validate(snapshot)


class TestSynergy:
    def test_best_fit_packs_compatible_tasks(self, catalog):
        scheduler = SynergyScheduler(catalog)
        jobs = [
            _job("ViT", (2, 8, 60), "v1"),
            _job("ViT", (2, 8, 60), "v2"),
        ]
        snapshot = _snapshot(jobs)
        target = scheduler.schedule(snapshot)
        target.validate(snapshot)
        assignment = target.assignment()
        assert assignment["v1/t0"] == assignment["v2/t0"]

    def test_tnrp_admission_check_blocks_bad_fits(self, catalog):
        """With the default t = 0.95 prior, a $0.09 task cannot justify
        risking a 5% degradation of a $12.24 GPU instance — the TNRP
        admission check must keep it out."""
        scheduler = SynergyScheduler(catalog)
        gpu_job = _job("GPT2", (4, 4, 10), "gpu")
        tiny = _job("A3C", (0, 2, 4), "tiny")
        inst = fresh_instance(
            scheduler.rp_calculator.rp_type(gpu_job.tasks[0])
        )
        snap = _snapshot([gpu_job, tiny], {inst: [gpu_job.tasks[0].task_id]})
        target = scheduler.schedule(snap)
        assert target.assignment()["tiny/t0"] != inst.instance_id

    def test_admission_passes_without_interference_risk(self, catalog):
        """With a neutral prior (t = 1.0) the same join is admitted."""
        scheduler = SynergyScheduler(catalog, default_tput=1.0)
        gpu_job = _job("GPT2", (4, 4, 10), "gpu")
        tiny = _job("A3C", (0, 2, 4), "tiny")
        inst = fresh_instance(
            scheduler.rp_calculator.rp_type(gpu_job.tasks[0])
        )
        snap = _snapshot([gpu_job, tiny], {inst: [gpu_job.tasks[0].task_id]})
        target = scheduler.schedule(snap)
        assert target.assignment()["tiny/t0"] == inst.instance_id

    def test_learned_interference_blocks_join(self, catalog):
        from repro.core.interfaces import JobThroughputReport
        from repro.core.throughput_table import TaskPlacementObservation

        scheduler = SynergyScheduler(catalog)
        # Teach Synergy that A3C wrecks GPT2 (both directions).
        for a, b in (("GPT2", "A3C"), ("A3C", "GPT2")):
            scheduler.on_throughput_reports(
                (
                    JobThroughputReport(
                        job_id="x",
                        normalized_tput=0.2,
                        placements=(
                            TaskPlacementObservation(workload=a, neighbours=(b,)),
                        ),
                    ),
                )
            )
        gpu_job = _job("GPT2", (4, 4, 10), "gpu")
        tiny = _job("A3C", (0, 2, 4), "tiny")
        inst = fresh_instance(
            scheduler.rp_calculator.rp_type(gpu_job.tasks[0])
        )
        snap = _snapshot([gpu_job, tiny], {inst: [gpu_job.tasks[0].task_id]})
        target = scheduler.schedule(snap)
        assert target.assignment()["tiny/t0"] != inst.instance_id


class TestOwl:
    def test_low_interference_pairs_colocate(self, catalog):
        # CycleGAN <-> OpenFOAM is 1.00/0.98 in Figure 1: Owl pairs them.
        scheduler = OwlScheduler(catalog, profile=InterferenceModel())
        # The pair must fit p3.2xlarge (8 CPUs) for pairing to be
        # cost-efficient: 4 + 4 CPUs.
        jobs = [
            _job("CycleGAN", (1, 4, 10), "c1"),
            _job("OpenFOAM", (0, 4, 8), "o1"),
        ]
        snapshot = _snapshot(jobs)
        target = scheduler.schedule(snapshot)
        target.validate(snapshot)
        assignment = target.assignment()
        assert assignment["c1/t0"] == assignment["o1/t0"]

    def test_high_interference_pairs_rejected(self, catalog):
        # GCN <-> A3C is 0.65 in Figure 1: below Owl's 0.9 floor.
        scheduler = OwlScheduler(catalog, profile=InterferenceModel())
        jobs = [
            _job("GCN", (0, 6, 40), "g1"),
            _job("A3C", (0, 4, 8), "a1"),
        ]
        target = scheduler.schedule(_snapshot(jobs))
        assignment = target.assignment()
        assert assignment["g1/t0"] != assignment["a1/t0"]

    def test_pairs_only(self, catalog):
        scheduler = OwlScheduler(catalog, profile=InterferenceModel())
        jobs = [_job("CycleGAN", (1, 4, 10), f"c{i}") for i in range(5)]
        target = scheduler.schedule(_snapshot(jobs))
        sizes = [len(ti.task_ids) for ti in target.instances]
        assert max(sizes) <= 2

    def test_fills_existing_singletons(self, catalog):
        scheduler = OwlScheduler(catalog, profile=InterferenceModel())
        resident = _job("CycleGAN", (1, 4, 10), "res")
        inst = fresh_instance(
            next(it for it in catalog if it.name == "p3.2xlarge")
        )
        newcomer = _job("OpenFOAM", (0, 4, 8), "new")
        snap = _snapshot(
            [resident, newcomer], {inst: [resident.tasks[0].task_id]}
        )
        target = scheduler.schedule(snap)
        assert target.assignment()["new/t0"] == inst.instance_id


class TestReactiveContract:
    def test_all_baselines_assign_every_task(self, catalog):
        jobs = [
            _job("ViT", (2, 8, 60), "b1"),
            _job("GCN", (0, 6, 40), "b2"),
            _job("A3C", (0, 4, 8), "b3"),
            _job("GPT2", (4, 4, 10), "b4"),
        ]
        snapshot = _snapshot(jobs)
        for scheduler in (
            NoPackingScheduler(catalog),
            StratusScheduler(catalog),
            SynergyScheduler(catalog),
            OwlScheduler(catalog),
        ):
            target = scheduler.schedule(snapshot)
            target.validate(snapshot)
            assert set(target.assignment()) == set(snapshot.tasks)
