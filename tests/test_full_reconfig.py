"""Unit and property tests for Full Reconfiguration (Algorithm 1, §4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.catalog import ec2_catalog
from repro.cluster.resources import ResourceVector
from repro.cluster.state import tasks_fit_on_type
from repro.cluster.task import make_job
from repro.core.evaluation import RPEvaluator, TNRPEvaluator
from repro.core.full_reconfig import (
    configuration_cost,
    full_reconfiguration,
    match_existing_instances,
    packing_summary,
)
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import (
    CoLocationThroughputTable,
    TaskPlacementObservation,
)
from repro.workloads.synthetic import microbench_task_pool


class TestPaperWalkthrough:
    """The §4.2 worked example, step by step."""

    def test_exact_configuration(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        packed = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc)
        )
        by_type = {}
        for p in packed:
            by_type.setdefault(p.instance_type.name, []).append(
                sorted(t.job_id for t in p.tasks)
            )
        # tau1, tau2, tau4 share an it1 instance; tau3 lands alone on it3.
        assert by_type == {"it1": [["tau1", "tau2", "tau4"]], "it3": [["tau3"]]}
        assert configuration_cost(packed) == pytest.approx(12.8)

    def test_cheaper_than_no_packing(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        packed = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc)
        )
        assert configuration_cost(packed) < calc.rp_of_set(example_tasks)

    def test_interference_changes_decision(self, example_catalog, example_tasks):
        """§4.3: tau1/tau2 at 0.7/0.8 make the shared it1 inefficient."""
        calc = ReservationPriceCalculator(example_catalog)
        table = CoLocationThroughputTable(default_tput=1.0)
        table.observe_single_task_job(
            TaskPlacementObservation("w1", ("w2",)), 0.7
        )
        table.observe_single_task_job(
            TaskPlacementObservation("w2", ("w1",)), 0.8
        )
        ev = TNRPEvaluator(calc, table, jobs={}, multi_task_aware=False)
        packed = full_reconfiguration(
            example_tasks[:2], example_catalog, ev
        )
        placements = {
            frozenset(t.job_id for t in p.tasks) for p in packed
        }
        # tau1 and tau2 must not share an instance.
        assert frozenset({"tau1", "tau2"}) not in placements


def _invariants(tasks, catalog, packed, evaluator):
    # Every task assigned exactly once.
    assigned = [t.task_id for p in packed for t in p.tasks]
    assert sorted(assigned) == sorted(t.task_id for t in tasks)
    for p in packed:
        # Resource-feasible.
        assert tasks_fit_on_type(p.tasks, p.instance_type)
        # Cost-efficient (the line 14 criterion).
        assert evaluator.set_value(list(p.tasks)) >= p.hourly_cost - 1e-6


class TestInvariants:
    def test_random_pool_rp(self):
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        ev = RPEvaluator(calc)
        tasks = microbench_task_pool(120, seed=3)
        packed = full_reconfiguration(tasks, catalog, ev)
        _invariants(tasks, catalog, packed, ev)
        assert configuration_cost(packed) <= calc.rp_of_set(tasks) + 1e-9

    def test_random_pool_tnrp(self):
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        table = CoLocationThroughputTable(default_tput=0.95)
        ev = TNRPEvaluator(calc, table, jobs={}, multi_task_aware=False)
        tasks = microbench_task_pool(120, seed=4)
        packed = full_reconfiguration(tasks, catalog, ev)
        _invariants(tasks, catalog, packed, ev)

    def test_tnrp_with_no_interference_matches_rp(self):
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        tasks = microbench_task_pool(80, seed=5)
        rp_packed = full_reconfiguration(tasks, catalog, RPEvaluator(calc))
        tnrp_packed = full_reconfiguration(
            tasks,
            catalog,
            TNRPEvaluator(
                calc, CoLocationThroughputTable(default_tput=1.0), jobs={}
            ),
        )
        assert configuration_cost(rp_packed) == pytest.approx(
            configuration_cost(tnrp_packed)
        )

    def test_faithful_scan_invariants(self):
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        ev = RPEvaluator(calc)
        tasks = microbench_task_pool(60, seed=6)
        packed = full_reconfiguration(
            tasks, catalog, ev, group_identical=False
        )
        _invariants(tasks, catalog, packed, ev)

    def test_empty_task_set(self):
        catalog = ec2_catalog()
        ev = RPEvaluator(ReservationPriceCalculator(catalog))
        assert full_reconfiguration([], catalog, ev) == []

    def test_deterministic(self):
        catalog = ec2_catalog()
        ev = RPEvaluator(ReservationPriceCalculator(catalog))
        tasks = microbench_task_pool(60, seed=7)
        a = full_reconfiguration(tasks, catalog, ev)
        b = full_reconfiguration(tasks, catalog, ev)
        assert [
            (p.instance_type.name, sorted(t.task_id for t in p.tasks)) for p in a
        ] == [
            (p.instance_type.name, sorted(t.task_id for t in p.tasks)) for p in b
        ]

    def test_severe_interference_reduces_to_no_packing(self):
        """§6.4: when packing anything is sub-optimal, Eva stops packing."""
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        table = CoLocationThroughputTable(default_tput=0.01)
        ev = TNRPEvaluator(calc, table, jobs={})
        tasks = microbench_task_pool(30, seed=8)
        packed = full_reconfiguration(tasks, catalog, ev)
        assert all(len(p.tasks) == 1 for p in packed)
        assert configuration_cost(packed) == pytest.approx(calc.rp_of_set(tasks))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=10_000))
    def test_property_invariants(self, n, seed):
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        ev = RPEvaluator(calc)
        tasks = microbench_task_pool(n, seed=seed)
        packed = full_reconfiguration(tasks, catalog, ev)
        _invariants(tasks, catalog, packed, ev)
        assert configuration_cost(packed) <= calc.rp_of_set(tasks) + 1e-9


class TestGuard:
    def test_line_9_11_guard_stops_value_decrease(self, example_catalog):
        """Adding a task that lowers TNRP must stop the inner loop."""
        calc = ReservationPriceCalculator(example_catalog)
        table = CoLocationThroughputTable(default_tput=0.4)
        ev = TNRPEvaluator(calc, table, jobs={})
        jobs = [
            make_job("a", {"*": ResourceVector(0, 2, 4)}, 1.0, job_id=f"g{i}")
            for i in range(6)
        ]
        tasks = [j.tasks[0] for j in jobs]
        packed = full_reconfiguration(tasks, example_catalog, ev)
        for p in packed:
            # With t=0.4 a second co-located task would reduce the value:
            # 2 * 0.4 * rp < 1 * rp.
            assert len(p.tasks) == 1


class TestMatchExisting:
    def test_reuses_matching_type_with_best_overlap(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        jobs = [
            make_job("w", {"*": ResourceVector(2, 8, 24)}, 1.0, job_id=f"m{i}")
            for i in range(2)
        ]
        tasks = [j.tasks[0] for j in jobs]
        packed = full_reconfiguration(tasks, example_catalog, ev)
        from repro.cluster.instance import fresh_instance

        live = fresh_instance(packed[0].instance_type)
        relabelled = match_existing_instances(
            packed, [(live, frozenset({tasks[0].task_id}))]
        )
        reused = [p for p in relabelled if p.instance.instance_id == live.instance_id]
        assert len(reused) == 1
        assert tasks[0].task_id in reused[0].task_ids()

    def test_no_reuse_across_types(self, example_catalog):
        calc = ReservationPriceCalculator(example_catalog)
        ev = RPEvaluator(calc)
        job = make_job("w", {"*": ResourceVector(0, 4, 12)}, 1.0, job_id="x")
        packed = full_reconfiguration(list(job.tasks), example_catalog, ev)
        from repro.cluster.instance import fresh_instance

        gpu_live = fresh_instance(example_catalog[0])  # it1, different type
        relabelled = match_existing_instances(packed, [(gpu_live, frozenset())])
        assert all(
            p.instance.instance_id != gpu_live.instance_id for p in relabelled
        )

    def test_summary(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        packed = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc)
        )
        summary = packing_summary(packed)
        assert summary["instances"] == 2
        assert summary["tasks"] == 4
        assert summary["hourly_cost"] == pytest.approx(12.8)


class TestTaskPool:
    """Ordering contract of the packer's grouped task pool."""

    @staticmethod
    def _make_tasks(example_catalog):
        # Two interchangeable groups: three 'a' tasks and two 'b' tasks.
        tasks = []
        for i in range(3):
            job = make_job(
                "a", {"*": ResourceVector(0, 4, 12)}, 1.0, job_id=f"a{i}"
            )
            tasks.extend(job.tasks)
        for i in range(2):
            job = make_job(
                "b", {"*": ResourceVector(0, 6, 20)}, 1.0, job_id=f"b{i}"
            )
            tasks.extend(job.tasks)
        return tasks

    @staticmethod
    def _pool(tasks, example_catalog, group_identical=True):
        from repro.core.full_reconfig import _TaskPool

        calc = ReservationPriceCalculator(example_catalog)
        return _TaskPool(tasks, RPEvaluator(calc), group_identical)

    def test_representatives_are_sorted_by_group_and_lowest_id_first(
        self, example_catalog
    ):
        tasks = self._make_tasks(example_catalog)
        pool = self._pool(tasks, example_catalog)
        reps = pool.representatives()
        assert len(reps) == 2
        # Group keys sort 'a' before 'b'; the representative is the
        # lowest task id of its group (stacks are pushed in descending
        # id order, so the top is the smallest).
        assert [r.workload for r in reps] == ["a", "b"]
        assert reps[0].task_id == min(
            t.task_id for t in tasks if t.workload == "a"
        )

    def test_pop_removes_only_the_representative(self, example_catalog):
        tasks = self._make_tasks(example_catalog)
        pool = self._pool(tasks, example_catalog)
        rep = pool.representatives()[0]
        popped = pool.pop(rep)
        assert popped is rep
        assert len(pool) == len(tasks) - 1
        # Popping a task that is not currently on top is rejected (the
        # stack top is the smallest remaining id, so the largest is not).
        bottom = max(
            (t for t in tasks if t.workload == "a"), key=lambda t: t.task_id
        )
        with pytest.raises(KeyError):
            pool.pop(bottom)

    def test_push_back_restores_group_order_and_stack_position(
        self, example_catalog
    ):
        tasks = self._make_tasks(example_catalog)
        pool = self._pool(tasks, example_catalog)
        # Drain group 'a' entirely, then push its tasks back.
        popped = []
        while pool.representatives()[0].workload == "a":
            popped.append(pool.pop(pool.representatives()[0]))
        assert [r.workload for r in pool.representatives()] == ["b"]
        pool.push_back(popped)
        reps = pool.representatives()
        assert [r.workload for r in reps] == ["a", "b"]
        # Stacks are LIFO: the last pushed-back task is the new top.
        assert reps[0] is popped[-1]
        assert len(pool) == len(tasks)

    def test_drain_matches_repeated_first_representative_pops(
        self, example_catalog
    ):
        tasks = self._make_tasks(example_catalog)
        reference = self._pool(tasks, example_catalog)
        expected = []
        while not reference.is_empty():
            expected.append(reference.pop(reference.representatives()[0]))
        drained = self._pool(tasks, example_catalog).drain()
        assert [t.task_id for t in drained] == [t.task_id for t in expected]

    def test_ungrouped_pool_has_one_bucket_per_task(self, example_catalog):
        tasks = self._make_tasks(example_catalog)
        pool = self._pool(tasks, example_catalog, group_identical=False)
        reps = pool.representatives()
        assert len(reps) == len(tasks)
        assert [r.task_id for r in reps] == sorted(t.task_id for t in tasks)

    def test_fingerprint_captures_stack_order(self, example_catalog):
        tasks = self._make_tasks(example_catalog)
        pool = self._pool(tasks, example_catalog)
        fp1 = pool.fingerprint()
        assert fp1 == self._pool(tasks, example_catalog).fingerprint()
        rep = pool.representatives()[0]
        pool.pop(rep)
        assert pool.fingerprint() != fp1
        pool.push_back([rep])
        assert pool.fingerprint() == fp1
