"""Fingerprint stability tests — the ResultStore's cache-key contract."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cloud.delays import DelayModel
from repro.interference.model import InterferenceModel
from repro.sim.batch import Scenario, TraceSpec, reseed
from repro.sim.fingerprint import FingerprintError, canonical_json, fingerprint
from repro.sim.simulator import SpotConfig


def _scenario(**overrides) -> Scenario:
    base = dict(
        scheduler="eva",
        trace=TraceSpec.make("alibaba", num_jobs=60, seed=3),
        name="Eva",
        interference=InterferenceModel(uniform_value=0.9),
        delay_model=DelayModel(migration_multiplier=2.0),
        spot=SpotConfig(enabled=True, preemption_rate_per_hour=0.1, seed=4),
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


class TestCanonicalJson:
    def test_mapping_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_set_order_is_canonical(self):
        assert canonical_json({3, 1, 2}) == canonical_json({2, 3, 1})

    def test_sequences_keep_order(self):
        assert canonical_json([1, 2]) != canonical_json([2, 1])

    def test_numpy_values_supported(self):
        text = canonical_json(
            {"scalar": np.float64(1.5), "arr": np.arange(3, dtype=np.int64)}
        )
        assert "__ndarray__" in text
        assert fingerprint(np.arange(3)) == fingerprint(np.arange(3))

    def test_non_finite_floats_rejected(self):
        with pytest.raises(FingerprintError):
            canonical_json(float("nan"))

    def test_unsupported_objects_rejected(self):
        with pytest.raises(FingerprintError):
            canonical_json(object())

    def test_rng_state_rejected(self):
        with pytest.raises(FingerprintError):
            canonical_json(np.random.default_rng(0))


class TestScenarioFingerprint:
    def test_equal_scenarios_equal_fingerprints(self):
        assert _scenario().fingerprint() == _scenario().fingerprint()

    def test_display_name_excluded(self):
        assert (
            _scenario(name="A").fingerprint() == _scenario(name="B").fingerprint()
        )

    def test_every_semantic_field_matters(self):
        base = _scenario().fingerprint()
        assert _scenario(scheduler="owl").fingerprint() != base
        assert (
            _scenario(trace=TraceSpec.make("alibaba", num_jobs=61, seed=3)).fingerprint()
            != base
        )
        assert _scenario(seed=4).fingerprint() != base
        assert _scenario(period_s=600.0).fingerprint() != base
        assert (
            _scenario(interference=InterferenceModel(uniform_value=0.8)).fingerprint()
            != base
        )
        assert (
            _scenario(delay_model=DelayModel(migration_multiplier=4.0)).fingerprint()
            != base
        )
        assert (
            _scenario(spot=SpotConfig(enabled=True, seed=9)).fingerprint() != base
        )
        # The eviction-notice window is result-affecting and must key
        # the cache like any other spot field: vary *only* notice_s.
        from dataclasses import replace

        spot = SpotConfig(enabled=True, preemption_rate_per_hour=0.1, seed=4)
        assert (
            _scenario(spot=spot).fingerprint()
            != _scenario(spot=replace(spot, notice_s=600.0)).fingerprint()
        )
        # The deadline warning horizon changes when deadline-aware
        # policies learn about SLOs, hence results, hence the key.
        assert _scenario(deadline_warning_s=3600.0).fingerprint() != base
        # Deadline sampling knobs flow through the trace spec.
        assert (
            _scenario(
                trace=TraceSpec.make(
                    "synthetic",
                    num_jobs=10,
                    seed=1,
                    deadline_fraction=0.5,
                    deadline_slack_range=(1.3, 1.3),
                )
            ).fingerprint()
            != _scenario(
                trace=TraceSpec.make(
                    "synthetic",
                    num_jobs=10,
                    seed=1,
                    deadline_fraction=0.5,
                    deadline_slack_range=(1.6, 1.6),
                )
            ).fingerprint()
        )

    def test_inline_trace_fingerprints_by_content(self):
        spec = TraceSpec.make("small-physical", seed=0)
        trace_a, trace_b = spec.build(), spec.build()
        assert (
            _scenario(trace=trace_a).fingerprint()
            == _scenario(trace=trace_b).fingerprint()
        )

    def test_stochastic_delay_model_is_uncacheable(self):
        scenario = _scenario(
            delay_model=DelayModel(stochastic=True, rng=np.random.default_rng(0))
        )
        with pytest.raises(FingerprintError):
            scenario.fingerprint()

    def test_tracespec_fingerprint_stable(self):
        assert (
            TraceSpec.make("alibaba", num_jobs=10, seed=1).fingerprint()
            == TraceSpec.make("alibaba", seed=1, num_jobs=10).fingerprint()
        )

    def test_stable_across_hash_seeds(self):
        """The cache-key contract: PYTHONHASHSEED must not matter."""
        program = (
            "from repro.cloud.delays import DelayModel\n"
            "from repro.interference.model import InterferenceModel\n"
            "from repro.sim.batch import Scenario, TraceSpec\n"
            "from repro.sim.simulator import SpotConfig\n"
            "s = Scenario(scheduler='eva',"
            " trace=TraceSpec.make('alibaba', num_jobs=60, seed=3),"
            " interference=InterferenceModel(uniform_value=0.9),"
            " delay_model=DelayModel(migration_multiplier=2.0),"
            " spot=SpotConfig(enabled=True, seed=4), seed=3)\n"
            "print(s.fingerprint())\n"
        )
        digests = set()
        for hash_seed in ("1", "2", "random"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", program],
                env=env,
                capture_output=True,
                text=True,
                check=True,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1, f"fingerprint varied with PYTHONHASHSEED: {digests}"


class TestReseed:
    def test_overrides_scenario_and_spec_and_spot_seeds(self):
        scenario = _scenario()
        trial = reseed(scenario, 11)
        assert trial.seed == 11
        assert dict(trial.trace.kwargs)["seed"] == 11
        assert trial.spot.seed == 11

    def test_spec_without_seed_kwarg_untouched(self):
        scenario = Scenario(
            scheduler="eva", trace=TraceSpec.make("alibaba", num_jobs=10)
        )
        trial = reseed(scenario, 7)
        assert trial.seed == 7
        assert "seed" not in dict(trial.trace.kwargs)

    def test_distinct_seeds_distinct_fingerprints(self):
        scenario = _scenario()
        assert reseed(scenario, 1).fingerprint() != reseed(scenario, 2).fingerprint()
