"""Unit tests for Partial Reconfiguration (§4.5)."""

import pytest

from repro.cluster.instance import fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.task import make_job
from repro.core.evaluation import RPEvaluator, TNRPEvaluator
from repro.core.full_reconfig import PackedInstance
from repro.core.partial_reconfig import partial_reconfiguration
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import CoLocationThroughputTable


@pytest.fixture()
def calc(example_catalog):
    return ReservationPriceCalculator(example_catalog)


def _task(workload, demand, job_id):
    return make_job(
        workload, {"*": ResourceVector(*demand)}, 1.0, job_id=job_id
    ).tasks[0]


class TestSubsetSelection:
    def test_unassigned_tasks_get_placed(self, example_catalog, calc):
        ev = RPEvaluator(calc)
        new_task = _task("w", (2, 8, 24), "new")
        result = partial_reconfiguration(
            [], [new_task], example_catalog, ev
        )
        assert result.repacked_task_ids == {new_task.task_id}
        assigned = {
            t.task_id for p in result.configuration for t in p.tasks
        }
        assert new_task.task_id in assigned

    def test_cost_efficient_instances_survive_untouched(
        self, example_catalog, calc
    ):
        ev = RPEvaluator(calc)
        resident = _task("w", (4, 16, 64), "resident")  # RP = 12 on it1
        inst = fresh_instance(example_catalog[0])  # it1, $12
        result = partial_reconfiguration(
            [(inst, [resident])], [], example_catalog, ev
        )
        assert result.repacked_task_ids == frozenset()
        assert result.drained_instance_ids == frozenset()
        assert len(result.configuration) == 1
        assert result.configuration[0].instance is inst

    def test_inefficient_instance_drained(self, example_catalog, calc):
        ev = RPEvaluator(calc)
        small = _task("w", (0, 4, 12), "small")  # RP = 0.4
        big_inst = fresh_instance(example_catalog[0])  # it1, $12 >> 0.4
        result = partial_reconfiguration(
            [(big_inst, [small])], [], example_catalog, ev
        )
        assert small.task_id in result.repacked_task_ids
        assert big_inst.instance_id in result.drained_instance_ids
        # The task must end up on its cheap RP type, not the drained it1.
        placement = next(
            p for p in result.configuration if small.task_id in p.task_ids()
        )
        assert placement.instance_type.name == "it4"


class TestSurvivorFilling:
    def test_new_task_joins_survivor_with_capacity(self, example_catalog, calc):
        ev = RPEvaluator(calc)
        resident = _task("w1", (2, 8, 24), "res")  # RP 12 on it1: survives
        inst = fresh_instance(example_catalog[0])
        newcomer = _task("w2", (1, 4, 10), "newbie")  # fits beside resident
        result = partial_reconfiguration(
            [(inst, [resident])], [newcomer], example_catalog, ev
        )
        survivor = next(
            p for p in result.configuration
            if p.instance.instance_id == inst.instance_id
        )
        assert newcomer.task_id in survivor.task_ids()
        # No extra instance should have been opened.
        assert len(result.configuration) == 1

    def test_filling_respects_capacity(self, example_catalog, calc):
        ev = RPEvaluator(calc)
        resident = _task("w1", (4, 16, 64), "res")  # it1 fully used on GPU
        inst = fresh_instance(example_catalog[0])
        newcomer = _task("w2", (1, 4, 10), "newbie")
        result = partial_reconfiguration(
            [(inst, [resident])], [newcomer], example_catalog, ev
        )
        survivor = next(
            p for p in result.configuration
            if p.instance.instance_id == inst.instance_id
        )
        assert newcomer.task_id not in survivor.task_ids()

    def test_filling_respects_tnrp_guard(self, example_catalog, calc):
        """A newcomer that would reduce the survivor's value stays out."""
        table = CoLocationThroughputTable(default_tput=0.3)
        ev = TNRPEvaluator(calc, table, jobs={})
        resident = _task("w1", (2, 8, 24), "res")
        inst = fresh_instance(example_catalog[0])
        newcomer = _task("w2", (1, 4, 10), "newbie")
        result = partial_reconfiguration(
            [(inst, [resident])], [newcomer], example_catalog, ev
        )
        survivor = next(
            p for p in result.configuration
            if p.instance.instance_id == inst.instance_id
        )
        assert newcomer.task_id not in survivor.task_ids()


class TestDrainedReuse:
    def test_drained_instance_reused_for_matching_type(
        self, example_catalog, calc
    ):
        ev = RPEvaluator(calc)
        # Two cheap tasks on one expensive instance: drained, then the
        # repack needs an it4 — no reuse possible — plus check identity.
        t1 = _task("w", (0, 4, 12), "d1")
        inst = fresh_instance(example_catalog[3])  # it4 $0.4, RP(t1)=0.4
        # Make it inefficient by co-locating nothing but raising... instead
        # drain via an expensive instance:
        big = fresh_instance(example_catalog[0])
        result = partial_reconfiguration(
            [(big, [t1])], [], example_catalog, ev
        )
        assert big.instance_id in result.drained_instance_ids
        # it4 target instance is fresh (type differs from drained it1).
        placement = next(
            p for p in result.configuration if t1.task_id in p.task_ids()
        )
        assert placement.instance.instance_id != big.instance_id

    def test_drained_same_type_reused_in_place(self, example_catalog, calc):
        table = CoLocationThroughputTable(default_tput=1.0)
        jobs = {}
        ev = TNRPEvaluator(calc, table, jobs=jobs)
        # Resident alone on it1 with RP 3 -> inefficient; repack puts it
        # on it2 ($3). No it1 reuse, but if we have TWO such tasks the
        # repack opens one it1?? Keep it simple: verify no crash and all
        # tasks assigned.
        tasks = [_task("w", (1, 4, 10), f"r{i}") for i in range(3)]
        current = [
            (fresh_instance(example_catalog[0]), [t]) for t in tasks
        ]
        result = partial_reconfiguration(current, [], example_catalog, ev)
        assigned = {
            t.task_id for p in result.configuration for t in p.tasks
        }
        assert assigned == {t.task_id for t in tasks}


class TestEndToEndInvariants:
    def test_all_tasks_assigned_once(self, example_catalog, calc):
        ev = RPEvaluator(calc)
        residents = [_task("w", (1, 4, 10), f"res{i}") for i in range(3)]
        current = [
            (fresh_instance(example_catalog[1]), [t]) for t in residents
        ]
        newcomers = [_task("v", (0, 4, 12), f"new{i}") for i in range(4)]
        result = partial_reconfiguration(
            current, newcomers, example_catalog, ev
        )
        assigned = sorted(
            t.task_id for p in result.configuration for t in p.tasks
        )
        expected = sorted(
            [t.task_id for t in residents] + [t.task_id for t in newcomers]
        )
        assert assigned == expected
