"""DeadlineAwareEvaScheduler behaviour: the deadline-SLO policy surface.

Covers the end-to-end rescue (Eva misses a deadline that Eva-Deadline
meets at bounded extra cost), the declared action vocabulary, native
consumption of ``DeadlineApproaching`` from the observation channel
(never snapshot diffing), clean ``replay_decision`` on every emitted
decision, warning-horizon semantics (the promoted
``deadline_warning_s`` knob, including once-per-job dedup), and the
byte-identity of the no-deadline path with plain Eva.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.cluster.resources import ResourceVector
from repro.cluster.state import ClusterSnapshot
from repro.cluster.task import make_job
from repro.core import make_scheduler
from repro.core.deadline import (
    DeadlineAwareEvaScheduler,
    DeadlineConfig,
    DeadlineTNRPEvaluator,
)
from repro.core.evaluation import TNRPEvaluator
from repro.core.protocol import (
    AssignTask,
    DeadlineApproaching,
    LaunchInstance,
    MigrateTask,
    TerminateInstance,
    replay_decision,
)
from repro.core.scheduler import EvaConfig, EvaScheduler
from repro.sim.simulator import run_simulation
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import Trace, sort_jobs_by_arrival
from repro.workloads.workloads import workload

ALWAYS = 7 * 24 * 3600.0  # warning horizon covering any trace


def _rescue_trace() -> Trace:
    """ViT + GraphSAGE arriving together: Eva co-locates them (their
    pairwise interference stretches GraphSAGE's JCT ~1.32x), so a 1.25x
    deadline on the GraphSAGE job is met standalone but missed packed."""
    jobs = [
        workload("ViT").make_job(
            duration_hours=1.0, arrival_time_s=0.0, job_id="dl-0"
        ),
        workload("GraphSAGE").make_job(
            duration_hours=1.0,
            arrival_time_s=0.0,
            job_id="dl-1",
            deadline_hours=1.25,
        ),
    ]
    return Trace(name="dl-rescue", jobs=sort_jobs_by_arrival(jobs))


class TestEndToEndRescue:
    def test_eva_misses_eva_deadline_meets_at_bounded_cost(self, catalog):
        trace = _rescue_trace()
        eva = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            validate=True,
            deadline_warning_s=ALWAYS,
        )
        aware = run_simulation(
            trace,
            make_scheduler("eva-deadline", catalog),
            validate=True,
            deadline_warning_s=ALWAYS,
        )
        nopack = run_simulation(
            trace,
            make_scheduler("no-packing", catalog),
            validate=True,
            deadline_warning_s=ALWAYS,
        )
        assert eva.deadline_miss_count == 1
        assert eva.deadline_total_lateness_s > 0
        assert aware.deadline_miss_count == 0
        assert aware.deadline_attainment == 1.0
        # Bounded extra cost: never above giving every job its own
        # reservation-price instance (the No-Packing bill).
        assert aware.total_cost <= nopack.total_cost * 1.01
        assert aware.total_cost >= eva.total_cost  # isolation is not free

    def test_urgency_engaged_during_rescue(self, catalog):
        scheduler = make_scheduler("eva-deadline", catalog)
        seen: list[dict] = []
        original = scheduler._compute_urgency

        def spy(snapshot):
            urgency = original(snapshot)
            seen.append(urgency)
            return urgency

        scheduler._compute_urgency = spy
        run_simulation(
            _rescue_trace(), scheduler, deadline_warning_s=ALWAYS
        )
        engaged = [u for u in seen if u]
        assert engaged, "urgency never escalated during the rescue"
        assert all(set(u) == {"dl-1"} for u in engaged)
        assert all(1.0 < m <= scheduler.deadline_config.max_urgency
                   for u in engaged for m in u.values())


class TestObservationChannel:
    def test_deadlines_learned_from_observations_only(self, catalog):
        """Without DeadlineApproaching observations the policy is Eva —
        it never sniffs Job.deadline_hours off the snapshot."""
        trace = _rescue_trace()
        aware = run_simulation(
            trace,
            make_scheduler("eva-deadline", catalog),
            validate=True,
            deadline_warning_s=0.0,  # warnings only after the deadline passes
        )
        eva = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            validate=True,
        )
        # With the warning silenced until too late, eva-deadline packs —
        # and misses — exactly like Eva.
        assert aware.deadline_miss_count == eva.deadline_miss_count == 1
        assert aware.total_cost == eva.total_cost

    def test_observe_records_and_prunes_deadlines(self, catalog):
        scheduler = DeadlineAwareEvaScheduler(catalog)
        scheduler.observe(
            (
                DeadlineApproaching(job_id="gone", deadline_s=100.0),
                DeadlineApproaching(job_id="live", deadline_s=7200.0),
            )
        )
        assert scheduler._deadlines == {"gone": 100.0, "live": 7200.0}
        job = make_job(
            "GPT2",
            {"*": ResourceVector(1, 4, 10)},
            duration_hours=1.0,
            job_id="live",
        )
        snapshot = ClusterSnapshot(
            time_s=0.0,
            tasks={t.task_id: t for t in job.tasks},
            jobs={"live": job},
            instances=(),
        )
        scheduler.schedule(snapshot)
        assert "gone" not in scheduler._deadlines  # pruned against snapshot
        assert "live" in scheduler._deadlines

    def test_direct_schedule_without_observations_matches_eva(self, catalog):
        """Legacy direct schedule() callers get plain Eva decisions."""
        trace = _rescue_trace()
        job_map = {j.job_id: j for j in trace}
        tasks = {t.task_id: t for j in trace for t in j.tasks}
        snapshot = ClusterSnapshot(
            time_s=0.0, tasks=tasks, jobs=job_map, instances=()
        )
        aware = DeadlineAwareEvaScheduler(catalog)
        eva = EvaScheduler(catalog)

        def shape(target):
            # Instance ids are freshly minted from a global counter, so
            # compare the configuration's structure instead.
            return sorted(
                (ti.instance.instance_type.name, tuple(sorted(ti.task_ids)))
                for ti in target.instances
            )

        assert shape(aware.schedule(snapshot)) == shape(eva.schedule(snapshot))
        assert aware.last_urgency == {}


class TestVocabularyAndReplay:
    def test_action_vocabulary_is_evas(self, catalog):
        scheduler = DeadlineAwareEvaScheduler(catalog)
        assert scheduler.action_types == EvaScheduler.action_types
        assert scheduler.action_types == frozenset(
            {LaunchInstance, AssignTask, MigrateTask, TerminateInstance}
        )

    def test_replay_clean_on_every_decision(self, catalog):
        """Structural replay of every decision the policy emits, on a
        trace mixing deadline pressure with background jobs."""
        trace = synthetic_trace(
            12,
            seed=3,
            mean_interarrival_s=600.0,
            deadline_fraction=0.6,
            deadline_slack_range=(1.2, 1.6),
            name="dl-replay",
        )
        scheduler = make_scheduler("eva-deadline", catalog)
        records = []
        original = scheduler.decide

        def recording_decide(snapshot, observations=()):
            decision = original(snapshot, observations)
            records.append((snapshot, decision))
            return decision

        scheduler.decide = recording_decide
        run_simulation(
            trace, scheduler, validate=True, deadline_warning_s=ALWAYS
        )
        assert records
        for snapshot, decision in records:
            replay_decision(snapshot, decision)  # raises on any violation


class TestWarningKnob:
    @staticmethod
    def _spy_run(catalog, trace, **kwargs):
        seen = []

        class Spy(EvaScheduler):
            def observe(self, observations):
                super().observe(observations)
                seen.extend(
                    o for o in observations
                    if isinstance(o, DeadlineApproaching)
                )

        result = run_simulation(trace, Spy(catalog), **kwargs)
        return seen, result

    def _one_job_trace(self, deadline_hours=2.0):
        job = workload("GPT2").make_job(
            duration_hours=1.0,
            arrival_time_s=0.0,
            job_id="w-0",
            deadline_hours=deadline_hours,
        )
        return Trace(name="warn", jobs=(job,))

    def test_warning_respects_custom_horizon(self, catalog):
        # Horizon covering the whole run: warned at the first round.
        seen, _ = self._spy_run(
            catalog, self._one_job_trace(), deadline_warning_s=ALWAYS
        )
        assert seen and seen[0].deadline_s == pytest.approx(7200.0)

        # Default horizon (2 periods = 600 s): a 2 h deadline on a 1 h
        # job is never within 600 s while the job is still live.
        seen_default, result = self._spy_run(catalog, self._one_job_trace())
        assert result.deadline_miss_count == 0
        assert seen_default == []

        # Zero horizon: warnings only once the deadline has passed; with
        # a met deadline nothing is ever emitted.
        seen_zero, _ = self._spy_run(
            catalog, self._one_job_trace(), deadline_warning_s=0.0
        )
        assert seen_zero == []

    def test_warning_emitted_once_per_job(self, catalog):
        """Re-emission dedup: many rounds inside the horizon, one warning."""
        seen, result = self._spy_run(
            catalog, self._one_job_trace(), deadline_warning_s=ALWAYS
        )
        assert result.scheduling_rounds > 2
        assert len(seen) == 1

    def test_negative_horizon_rejected(self, catalog):
        with pytest.raises(ValueError, match="deadline_warning_s"):
            run_simulation(
                self._one_job_trace(),
                make_scheduler("eva", catalog),
                deadline_warning_s=-1.0,
            )


class TestNoDeadlinePath:
    def test_byte_identical_to_eva_without_deadlines(self, catalog):
        trace = synthetic_trace(14, seed=2, name="nodl-14")
        eva = run_simulation(trace, make_scheduler("eva", catalog), validate=True)
        aware = run_simulation(
            trace, make_scheduler("eva-deadline", catalog), validate=True
        )
        relabelled = dataclasses.replace(
            aware, scheduler_name=eva.scheduler_name
        )
        assert pickle.dumps(eva) == pickle.dumps(relabelled)

    def test_legacy_result_pickle_omits_deadline_fields(self, catalog):
        trace = synthetic_trace(4, seed=0, name="nodl-4")
        result = run_simulation(trace, make_scheduler("no-packing", catalog))
        assert b"deadline" not in pickle.dumps(result)
        roundtrip = pickle.loads(pickle.dumps(result))
        assert roundtrip.deadline_outcomes == ()
        assert roundtrip.deadline_miss_count == 0
        assert roundtrip.deadline_total_lateness_s == 0.0
        assert roundtrip.deadline_attainment == 1.0


class TestConfigAndEvaluator:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_urgency"):
            DeadlineConfig(max_urgency=0.5)
        with pytest.raises(ValueError, match="risk_tput"):
            DeadlineConfig(risk_tput=1.5)
        with pytest.raises(ValueError, match="reconfig_headroom_s"):
            DeadlineConfig(reconfig_headroom_s=-1.0)

    def test_requires_interference_awareness(self, catalog):
        with pytest.raises(ValueError, match="interference_aware"):
            DeadlineAwareEvaScheduler(
                catalog, config=EvaConfig(interference_aware=False)
            )

    def test_urgency_evaluator_matches_stock_when_not_urgent(self, catalog):
        scheduler = DeadlineAwareEvaScheduler(catalog)
        job = make_job(
            "GPT2", {"*": ResourceVector(1, 4, 10)}, duration_hours=1.0
        )
        task = job.tasks[0]
        stock = TNRPEvaluator(
            calculator=scheduler.rp_calculator, table=scheduler.monitor.table
        )
        urgent = DeadlineTNRPEvaluator(
            calculator=scheduler.rp_calculator,
            table=scheduler.monitor.table,
            urgency={"other-job": 8.0},
        )
        for tput in (1.0, 0.9, 0.7):
            assert urgent.tnrp_from_tput(task, tput) == stock.tnrp_from_tput(
                task, tput
            )

    def test_urgency_scales_degradation_charge_only(self, catalog):
        scheduler = DeadlineAwareEvaScheduler(catalog)
        job = make_job(
            "GPT2", {"*": ResourceVector(1, 4, 10)}, duration_hours=1.0
        )
        task = job.tasks[0]
        u = 8.0
        evaluator = DeadlineTNRPEvaluator(
            calculator=scheduler.rp_calculator,
            table=scheduler.monitor.table,
            urgency={job.job_id: u},
        )
        rp = scheduler.rp_calculator.rp(task)
        # Standalone value untouched; packed value charged at 8x.
        assert evaluator.tnrp_from_tput(task, 1.0) == rp
        assert evaluator.tnrp_from_tput(task, 0.9) == pytest.approx(
            rp - 0.1 * rp * u
        )
        # Group keys must separate urgent tasks from identical calm ones.
        calm = make_job(
            "GPT2", {"*": ResourceVector(1, 4, 10)}, duration_hours=1.0
        ).tasks[0]
        assert evaluator.group_key(task) != evaluator.group_key(calm)
        # Cache token carries the urgency state.
        assert evaluator.cache_token() != TNRPEvaluator(
            calculator=scheduler.rp_calculator, table=scheduler.monitor.table
        ).cache_token()

    def test_lost_causes_are_abandoned(self, catalog):
        """A deadline that full-throughput execution cannot meet gets no
        escalation — the policy spends nothing on a guaranteed miss."""
        scheduler = DeadlineAwareEvaScheduler(catalog)
        job = make_job(
            "GPT2",
            {"*": ResourceVector(1, 4, 10)},
            duration_hours=2.0,
            job_id="doomed",
        )
        snapshot = ClusterSnapshot(
            time_s=0.0,
            tasks={t.task_id: t for t in job.tasks},
            jobs={"doomed": job},
            instances=(),
        )
        # Deadline in 1h, 2h of work left: unattainable.
        scheduler.observe(
            (DeadlineApproaching(job_id="doomed", deadline_s=3600.0),)
        )
        scheduler.schedule(snapshot)
        assert scheduler.last_urgency == {}

    def test_inside_headroom_saturates(self, catalog):
        scheduler = DeadlineAwareEvaScheduler(catalog)
        job = make_job(
            "GPT2",
            {"*": ResourceVector(1, 4, 10)},
            duration_hours=0.05,
            job_id="tight",
        )
        snapshot = ClusterSnapshot(
            time_s=0.0,
            tasks={t.task_id: t for t in job.tasks},
            jobs={"tight": job},
            instances=(),
        )
        # 0.05h (3 min) of work, deadline in 500s: attainable, but only
        # by acting now (inside the 600s reconfiguration headroom).
        scheduler.observe(
            (DeadlineApproaching(job_id="tight", deadline_s=500.0),)
        )
        scheduler.schedule(snapshot)
        assert scheduler.last_urgency == {
            "tight": scheduler.deadline_config.max_urgency
        }


class TestDeadlineSloExperiment:
    def test_eva_deadline_strictly_improves_attainment(self):
        from repro.experiments.deadline_slo import TIGHTNESS, run

        result = run(seed=0)
        improved = [
            slack
            for slack in TIGHTNESS
            if result.attainment[("Eva-Deadline", slack)]
            > result.attainment[("Eva", slack)]
        ]
        assert improved, (
            "eva-deadline never beat eva on attainment: "
            f"{result.attainment}"
        )
        # Sanity anchor: at the loosest tightness nothing is at risk and
        # deadline awareness changes nothing.
        loosest = max(TIGHTNESS)
        assert result.misses[("Eva-Deadline", loosest)] == 0

    def test_multi_seed_presentation_keeps_attainment_column(self):
        from repro.experiments.registry import ExperimentContext, run_experiment

        run = run_experiment(
            "deadline-slo", ExperimentContext(seeds=(0, 1))
        )
        table = run.presentation.tables[0]
        assert "Attainment" in table.headers
        assert "Norm. Cost" in table.headers
        labels = {(row[0], row[1]) for row in table.rows}
        assert ("1.25x", "Eva-Deadline") in labels


class TestMasterEmission:
    def test_master_emits_deadline_warning_once(self, catalog):
        from repro.runtime.master import EvaMaster

        seen = []

        class Spy(EvaScheduler):
            def observe(self, observations):
                super().observe(observations)
                seen.extend(
                    o for o in observations
                    if isinstance(o, DeadlineApproaching)
                )

        master = EvaMaster(
            catalog=catalog,
            scheduler=Spy(catalog),
            deadline_warning_s=ALWAYS,
        )
        master.submit_job(
            make_job(
                "GPT2",
                {"*": ResourceVector(1, 4, 10)},
                duration_hours=0.3,
                job_id="m-dl",
                deadline_hours=0.5,
            )
        )
        master.run_for(hours=0.5)
        assert [o.job_id for o in seen] == ["m-dl"]
        assert seen[0].deadline_s == pytest.approx(0.5 * 3600.0)

    def test_master_default_horizon_matches_simulator(self, catalog):
        from repro.runtime.master import EvaMaster

        master = EvaMaster(catalog=catalog, scheduler=EvaScheduler(catalog))
        assert master.deadline_warning_s == 2.0 * master.period_s
