"""Unit tests for the EvaScheduler (§3, §4)."""

import pytest

from repro.cluster.instance import fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.state import ClusterSnapshot, InstanceState
from repro.cluster.task import make_job
from repro.core.interfaces import JobThroughputReport
from repro.core.scheduler import EvaConfig, EvaScheduler, make_eva_variant
from repro.core.throughput_table import TaskPlacementObservation


def _snapshot(jobs, placements=None, time_s=0.0):
    tasks = {t.task_id: t for j in jobs for t in j.tasks}
    instances = []
    for inst, tids in (placements or {}).items():
        instances.append(InstanceState(instance=inst, task_ids=frozenset(tids)))
    return ClusterSnapshot(
        time_s=time_s,
        tasks=tasks,
        jobs={j.job_id: j for j in jobs},
        instances=instances,
    )


def _job(workload, demand, job_id, num_tasks=1):
    return make_job(
        workload, {"*": ResourceVector(*demand)}, 1.0,
        job_id=job_id, num_tasks=num_tasks,
    )


class TestConfig:
    def test_both_disabled_rejected(self):
        with pytest.raises(ValueError):
            EvaConfig(enable_full=False, enable_partial=False)

    def test_variant_factory(self, catalog):
        names = {
            "eva": "Eva",
            "eva-rp": "Eva-RP",
            "eva-single": "Eva-Single",
            "eva-full-only": "Eva-Full-only",
            "eva-partial-only": "Eva-Partial-only",
        }
        for key, name in names.items():
            assert make_eva_variant(catalog, key).name == name

    def test_unknown_variant(self, catalog):
        with pytest.raises(KeyError):
            make_eva_variant(catalog, "eva-turbo")

    def test_with_config_override(self, catalog):
        base = EvaScheduler(catalog)
        derived = base.with_config(interference_aware=False)
        assert derived.config.interference_aware is False
        assert base.config.interference_aware is True


class TestScheduling:
    def test_places_all_tasks_validly(self, example_catalog):
        scheduler = EvaScheduler(example_catalog)
        jobs = [
            _job("w1", (2, 8, 24), "j1"),
            _job("w2", (1, 4, 10), "j2"),
            _job("w3", (0, 6, 20), "j3"),
        ]
        snapshot = _snapshot(jobs)
        target = scheduler.schedule(snapshot)
        target.validate(snapshot)
        assert set(target.assignment()) == set(snapshot.tasks)

    def test_keeps_efficient_instances_when_partial_wins(self, example_catalog):
        scheduler = EvaScheduler(example_catalog)
        job = _job("w1", (4, 16, 64), "big")
        inst = fresh_instance(example_catalog[0])
        snapshot = _snapshot([job], {inst: [job.tasks[0].task_id]})
        target = scheduler.schedule(snapshot)
        assert target.assignment()[job.tasks[0].task_id] == inst.instance_id

    def test_event_tracking_across_rounds(self, example_catalog):
        scheduler = EvaScheduler(example_catalog)
        j1 = _job("w1", (1, 4, 10), "e1")
        scheduler.schedule(_snapshot([j1], time_s=0.0))
        assert scheduler.policy.estimator.total_events == 1
        j2 = _job("w1", (1, 4, 10), "e2")
        scheduler.schedule(_snapshot([j1, j2], time_s=300.0))
        assert scheduler.policy.estimator.total_events == 2
        # j1 completes: one more event.
        scheduler.schedule(_snapshot([j2], time_s=600.0))
        assert scheduler.policy.estimator.total_events == 3

    def test_full_only_variant_has_no_decision(self, example_catalog):
        scheduler = EvaScheduler(
            example_catalog, config=EvaConfig(enable_partial=False)
        )
        job = _job("w1", (1, 4, 10), "f1")
        scheduler.schedule(_snapshot([job]))
        assert scheduler.last_decision is None

    def test_ensemble_decision_recorded(self, example_catalog):
        scheduler = EvaScheduler(example_catalog)
        job = _job("w1", (1, 4, 10), "d1")
        scheduler.schedule(_snapshot([job]))
        assert scheduler.last_decision is not None
        assert 0.0 <= scheduler.full_adoption_fraction() <= 1.0


class TestThroughputIntegration:
    def test_reports_update_monitor(self, example_catalog):
        scheduler = EvaScheduler(example_catalog)
        report = JobThroughputReport(
            job_id="j",
            normalized_tput=0.8,
            placements=(
                TaskPlacementObservation(workload="w1", neighbours=("w2",)),
            ),
        )
        scheduler.on_throughput_reports((report,))
        assert scheduler.monitor.table.tput("w1", ["w2"]) == 0.8

    def test_learned_interference_prevents_colocation(self, example_catalog):
        """After observing severe interference, Eva splits the pair."""
        scheduler = EvaScheduler(example_catalog)
        j1 = _job("w1", (2, 8, 24), "p1")
        j2 = _job("w2", (1, 4, 10), "p2")
        for w1, w2 in (("w1", "w2"), ("w2", "w1")):
            scheduler.on_throughput_reports(
                (
                    JobThroughputReport(
                        job_id="x",
                        normalized_tput=0.3,
                        placements=(
                            TaskPlacementObservation(
                                workload=w1, neighbours=(w2,)
                            ),
                        ),
                    ),
                )
            )
        snapshot = _snapshot([j1, j2])
        target = scheduler.schedule(snapshot)
        assignment = target.assignment()
        assert assignment[j1.tasks[0].task_id] != assignment[j2.tasks[0].task_id]

    def test_rp_variant_ignores_reports(self, example_catalog):
        scheduler = make_eva_variant(example_catalog, "eva-rp")
        j1 = _job("w1", (2, 8, 24), "q1")
        j2 = _job("w2", (1, 4, 10), "q2")
        scheduler.on_throughput_reports(
            (
                JobThroughputReport(
                    job_id="x",
                    normalized_tput=0.1,
                    placements=(
                        TaskPlacementObservation(workload="w1", neighbours=("w2",)),
                    ),
                ),
            )
        )
        target = scheduler.schedule(_snapshot([j1, j2]))
        assignment = target.assignment()
        # RP mode packs regardless of the learned interference.
        assert assignment[j1.tasks[0].task_id] == assignment[j2.tasks[0].task_id]
