"""Tests for the spot-market and JCT-margin extensions."""

import pytest

from repro.baselines import NoPackingScheduler
from repro.cloud.catalog import ec2_catalog
from repro.cloud.provider import SimulatedCloud
from repro.cluster.instance import InstanceType
from repro.cluster.resources import ResourceVector
from repro.core.evaluation import RPEvaluator
from repro.core.full_reconfig import configuration_cost, full_reconfiguration
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.scheduler import EvaConfig, EvaScheduler
from repro.sim.simulator import SpotConfig, run_simulation
from repro.workloads.synthetic import microbench_task_pool, synthetic_trace

IT = InstanceType("t", "f", ResourceVector(0, 4, 8), 1.0)


class TestSpotProvider:
    def test_spot_rate_discounted(self):
        cloud = SimulatedCloud(spot_discount=0.3)
        receipt = cloud.launch(IT, 0.0, spot=True)
        assert receipt.spot
        assert receipt.hourly_rate == pytest.approx(0.3)
        assert cloud.total_cost(3600.0) == pytest.approx(0.3)

    def test_on_demand_rate_unchanged(self):
        cloud = SimulatedCloud(spot_discount=0.3)
        receipt = cloud.launch(IT, 0.0, spot=False)
        assert not receipt.spot
        assert receipt.hourly_rate == pytest.approx(1.0)


class TestSpotSimulation:
    def test_spot_run_cheaper_but_longer(self, catalog):
        trace = synthetic_trace(15, seed=1)
        on_demand = run_simulation(trace, NoPackingScheduler(catalog))
        spot = run_simulation(
            trace,
            NoPackingScheduler(catalog),
            spot=SpotConfig(enabled=True, preemption_rate_per_hour=0.2, seed=3),
        )
        assert spot.num_jobs == on_demand.num_jobs  # everything completes
        assert spot.total_cost < on_demand.total_cost
        assert spot.preemptions > 0
        # Preemptions re-queue work: JCT cannot improve.
        assert spot.mean_jct_hours() >= on_demand.mean_jct_hours() - 1e-9

    def test_no_preemptions_without_spot(self, catalog):
        trace = synthetic_trace(8, seed=2)
        result = run_simulation(trace, NoPackingScheduler(catalog))
        assert result.preemptions == 0

    def test_spot_with_eva(self, catalog):
        trace = synthetic_trace(12, seed=4)
        result = run_simulation(
            trace,
            EvaScheduler(catalog),
            spot=SpotConfig(enabled=True, preemption_rate_per_hour=0.1, seed=5),
            validate=True,
        )
        assert result.num_jobs == 12

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SpotConfig(enabled=True, preemption_rate_per_hour=0.0)


class TestEfficiencyMargin:
    def test_zero_margin_is_paper_behavior(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        base = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc)
        )
        with_margin = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc), cost_margin=0.0
        )
        assert configuration_cost(base) == configuration_cost(with_margin)

    def test_margin_blocks_thin_colocations(self, example_catalog, example_tasks):
        """The worked example's it1 packing clears cost by 15.4/12 = 1.28;
        a 40% margin must break it apart."""
        calc = ReservationPriceCalculator(example_catalog)
        packed = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc), cost_margin=0.4
        )
        sizes = sorted(len(p.tasks) for p in packed)
        assert sizes == [1, 1, 1, 1]
        assert configuration_cost(packed) == pytest.approx(16.2)

    def test_margin_keeps_fat_colocations(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        packed = full_reconfiguration(
            example_tasks, example_catalog, RPEvaluator(calc), cost_margin=0.1
        )
        # 15.4 >= 12 * 1.1 = 13.2: the it1 co-location survives.
        assert configuration_cost(packed) == pytest.approx(12.8)

    def test_all_tasks_still_placed_under_margin(self):
        catalog = ec2_catalog()
        calc = ReservationPriceCalculator(catalog)
        tasks = microbench_task_pool(60, seed=6)
        packed = full_reconfiguration(
            tasks, catalog, RPEvaluator(calc), cost_margin=0.5
        )
        assert sum(len(p.tasks) for p in packed) == 60

    def test_negative_margin_rejected(self, example_catalog, example_tasks):
        calc = ReservationPriceCalculator(example_catalog)
        with pytest.raises(ValueError):
            full_reconfiguration(
                example_tasks, example_catalog, RPEvaluator(calc), cost_margin=-0.1
            )
        with pytest.raises(ValueError):
            EvaConfig(efficiency_margin=-1.0)

    def test_margin_trades_cost_for_throughput(self, catalog):
        """End to end: margin > 0 lifts throughput, costs more."""
        trace = synthetic_trace(25, seed=7)
        plain = run_simulation(
            trace, EvaScheduler(catalog, config=EvaConfig())
        )
        cautious = run_simulation(
            trace, EvaScheduler(catalog, config=EvaConfig(efficiency_margin=0.6))
        )
        assert cautious.mean_normalized_tput() >= plain.mean_normalized_tput() - 1e-6
        assert cautious.total_cost >= plain.total_cost * 0.95
