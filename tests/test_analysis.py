"""Unit tests for reporting and the comparison harness."""

import numpy as np
import pytest

from repro.analysis.comparison import (
    compare_schedulers,
    standard_scheduler_factories,
)
from repro.analysis.reporting import (
    ExperimentTable,
    percent,
    render_cdf,
    render_table,
)
from repro.workloads.synthetic import synthetic_trace


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(
            "Title", ("a", "bee"), [(1, 2.5), ("long-value", 0.001)]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bee" in lines[2]
        assert "long-value" in text

    def test_experiment_table_column(self):
        table = ExperimentTable(
            title="t", headers=("x", "y"), rows=((1, 2), (3, 4))
        )
        assert table.column("y") == [2, 4]
        assert "t" in table.render()

    def test_notes_rendered(self):
        table = ExperimentTable(
            title="t", headers=("x",), rows=((1,),), notes=("hello",)
        )
        assert "note: hello" in table.render()

    def test_percent(self):
        assert percent(0.754) == "75.4%"

    def test_render_cdf(self):
        xs = np.array([1.0, 2.0, 3.0])
        ys = np.array([0.33, 0.66, 1.0])
        text = render_cdf("cdf", {"Eva": (xs, ys)}, points=5)
        assert "Eva" in text
        empty = render_cdf("cdf", {"none": (np.array([]), np.array([]))})
        assert "-" in empty


class TestComparison:
    def test_standard_factories_cover_the_five_schedulers(self, catalog):
        factories = standard_scheduler_factories(catalog)
        assert sorted(factories) == [
            "Eva",
            "No-Packing",
            "Owl",
            "Stratus",
            "Synergy",
        ]

    def test_compare_and_tables(self, catalog):
        trace = synthetic_trace(8, seed=0)
        factories = standard_scheduler_factories(catalog)
        subset = {k: factories[k] for k in ("No-Packing", "Eva")}
        comparison = compare_schedulers(trace, subset)
        assert comparison.normalized_cost("No-Packing") == pytest.approx(1.0)
        e2e = comparison.end_to_end_table("x")
        assert len(e2e.rows) == 2
        alloc = comparison.allocation_table("y")
        assert "GPU Alloc" in alloc.headers
