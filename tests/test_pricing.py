"""Unit tests for billing (per-second accrual from launch to terminate)."""

import pytest

from repro.cloud.pricing import BillingLedger
from repro.cluster.instance import InstanceType
from repro.cluster.resources import ResourceVector

IT = InstanceType("t", "f", ResourceVector(0, 4, 8), 3.6)  # $0.001/s


class TestLedger:
    def test_cost_accrual(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        assert ledger.total_cost(1000.0) == pytest.approx(1.0)

    def test_terminate_stops_billing(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        ledger.on_terminate("i-1", 500.0)
        assert ledger.total_cost(5000.0) == pytest.approx(0.5)

    def test_double_launch_rejected(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        with pytest.raises(ValueError):
            ledger.on_launch("i-1", IT, 10.0)

    def test_double_terminate_rejected(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        ledger.on_terminate("i-1", 10.0)
        with pytest.raises(ValueError):
            ledger.on_terminate("i-1", 20.0)

    def test_terminate_before_launch_rejected(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 100.0)
        with pytest.raises(ValueError):
            ledger.on_terminate("i-1", 50.0)

    def test_active_tracking(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        ledger.on_launch("i-2", IT, 0.0)
        ledger.on_terminate("i-1", 10.0)
        assert ledger.active_instance_ids() == ["i-2"]
        assert ledger.active_hourly_cost() == pytest.approx(3.6)
        assert ledger.instances_launched() == 2

    def test_uptimes_hours(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        ledger.on_terminate("i-1", 3600.0)
        ledger.on_launch("i-2", IT, 0.0)
        uptimes = sorted(ledger.uptimes_hours(7200.0))
        assert uptimes == pytest.approx([1.0, 2.0])

    def test_cost_by_family(self):
        other = InstanceType("o", "g", ResourceVector(0, 1, 1), 7.2)
        ledger = BillingLedger()
        ledger.on_launch("i-1", IT, 0.0)
        ledger.on_launch("i-2", other, 0.0)
        by_family = ledger.cost_by_family(3600.0)
        assert by_family["f"] == pytest.approx(3.6)
        assert by_family["g"] == pytest.approx(7.2)
