"""ResultStore semantics over every backend, plus multi-seed aggregation.

The store contract — byte-identical hits, atomic first-write-wins
stores, invalidation by fingerprint and code token, corruption
tolerance, :class:`CacheStats` accounting — must hold identically for
the classic filesystem layout (:class:`LocalFSBackend`), the
object-store-style :class:`KVBackend`, and the read-through/write-back
:class:`TieredStore`, so the contract tests here are parametrized over
all three.  Filesystem-layout specifics and the multi-seed trial
aggregation keep their dedicated classes.
"""

import pickle
import statistics
import threading

import numpy as np
import pytest

from repro.cloud.delays import DelayModel
from repro.sim.batch import (
    MetricStats,
    Scenario,
    TraceSpec,
    run_batch,
    run_trials,
)
from repro.sim.fabric.backends import (
    KVBackend,
    LocalFSBackend,
    StoreBackend,
    TieredStore,
)
from repro.sim.results import ResultStore, code_token


def _scenario(name="Eva", scheduler="eva", seed=0) -> Scenario:
    return Scenario(
        scheduler=scheduler,
        trace=TraceSpec.make("small-physical", seed=seed),
        name=name,
        seed=seed,
    )


BACKEND_KINDS = ("localfs", "kv", "tiered")


def make_backend(kind: str, tmp_path) -> StoreBackend:
    if kind == "localfs":
        return LocalFSBackend(tmp_path / "fs")
    if kind == "kv":
        return KVBackend()
    return TieredStore(LocalFSBackend(tmp_path / "tier-local"), KVBackend())


@pytest.fixture(params=BACKEND_KINDS)
def backend(request, tmp_path) -> StoreBackend:
    return make_backend(request.param, tmp_path)


# ---------------------------------------------------------------------------
# Raw backend contract (byte level, no store semantics)
# ---------------------------------------------------------------------------


class TestBackendContract:
    KEY = "aaaabbbbccccdddd/0123456789abcdef"

    def test_get_missing_is_none(self, backend):
        assert backend.get(self.KEY) is None
        assert not backend.contains(self.KEY)

    def test_put_if_absent_is_first_write_wins(self, backend):
        assert backend.put_if_absent(self.KEY, b"first") is True
        assert backend.put_if_absent(self.KEY, b"second") is False
        assert backend.get(self.KEY) == b"first"
        assert backend.contains(self.KEY)

    def test_replace_overwrites_unconditionally(self, backend):
        backend.put_if_absent(self.KEY, b"old")
        backend.replace(self.KEY, b"new")
        assert backend.get(self.KEY) == b"new"
        # replace also creates missing entries
        backend.replace("aaaabbbbccccdddd/feedfeedfeedfeed", b"fresh")
        assert backend.get("aaaabbbbccccdddd/feedfeedfeedfeed") == b"fresh"

    def test_keys_are_sorted_and_prefix_filtered(self, backend):
        backend.put_if_absent("tok1/fp2", b"a")
        backend.put_if_absent("tok1/fp1", b"b")
        backend.put_if_absent("tok2/fp3", b"c")
        assert list(backend.keys()) == ["tok1/fp1", "tok1/fp2", "tok2/fp3"]
        assert list(backend.keys("tok1/")) == ["tok1/fp1", "tok1/fp2"]
        assert list(backend.keys("tok3/")) == []

    def test_concurrent_put_if_absent_has_exactly_one_winner(self, backend):
        """The duplicate-execution race: N threads publish under one
        content-addressed key; exactly one write is stored and the
        surviving bytes are the winner's (all byte-equal in real use)."""
        verdicts = []
        barrier = threading.Barrier(8)

        def racer(i: int) -> None:
            barrier.wait()
            verdicts.append(backend.put_if_absent(self.KEY, b"payload"))

        threads = [
            threading.Thread(target=racer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert verdicts.count(True) == 1
        assert backend.get(self.KEY) == b"payload"


class TestTieredStoreSpecifics:
    def test_remote_hit_writes_back_to_local(self, tmp_path):
        local = LocalFSBackend(tmp_path / "local")
        remote = KVBackend()
        tiered = TieredStore(local, remote)
        remote.put_if_absent("tok/fp", b"remote-bytes")
        assert local.get("tok/fp") is None
        assert tiered.get("tok/fp") == b"remote-bytes"
        # ... and the read-through populated the local tier.
        assert local.get("tok/fp") == b"remote-bytes"

    def test_put_publishes_remote_first_and_mirrors(self, tmp_path):
        local = LocalFSBackend(tmp_path / "local")
        remote = KVBackend()
        tiered = TieredStore(local, remote)
        assert tiered.put_if_absent("tok/fp", b"bytes") is True
        assert remote.get("tok/fp") == b"bytes"
        assert local.get("tok/fp") == b"bytes"

    def test_lost_remote_race_mirrors_the_winner(self, tmp_path):
        local = LocalFSBackend(tmp_path / "local")
        remote = KVBackend()
        tiered = TieredStore(local, remote)
        remote.put_if_absent("tok/fp", b"winner")
        assert tiered.put_if_absent("tok/fp", b"loser") is False
        # The local mirror holds the *remote* winner, not our payload.
        assert local.get("tok/fp") == b"winner"
        assert tiered.get("tok/fp") == b"winner"


# ---------------------------------------------------------------------------
# Store semantics, parametrized over every backend
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_cache_hit_is_byte_identical(self, backend):
        store = ResultStore(backend=backend)
        scenario = _scenario()
        first = run_batch([scenario], store=store)[0]
        second = run_batch([scenario], store=store)[0]
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert pickle.dumps(first.result) == pickle.dumps(second.result)
        assert first == second  # scenario, result, and elapsed all equal

    def test_hit_carries_requested_display_name(self, backend):
        store = ResultStore(backend=backend)
        run_batch([_scenario(name="First")], store=store)
        hit = store.get(_scenario(name="Second"))
        assert hit is not None
        assert hit.scenario.name == "Second"

    def test_fingerprint_change_invalidates(self, backend):
        store = ResultStore(backend=backend)
        run_batch([_scenario(seed=0)], store=store)
        assert store.get(_scenario(seed=1)) is None

    def test_code_token_change_invalidates(self, backend):
        scenario = _scenario()
        store = ResultStore(backend=backend)
        run_batch([scenario], store=store)
        assert store.get(scenario) is not None

        changed_code = ResultStore(backend=backend, token="f" * 64)
        assert changed_code.get(scenario) is None
        # ... and the two tokens' entries coexist without clobbering.
        run_batch([scenario], store=changed_code)
        assert changed_code.get(scenario) is not None
        assert ResultStore(backend=backend).get(scenario) is not None

    def test_corrupted_entry_is_a_miss_not_fatal(self, backend):
        store = ResultStore(backend=backend)
        scenario = _scenario()
        run_batch([scenario], store=store)
        [key] = list(store._entries())

        backend.replace(key, b"not a pickle")
        assert store.get(scenario) is None

        # A truncated (partially written) pickle is also just a miss.
        good = pickle.dumps({"version": 1})
        backend.replace(key, good[: len(good) // 2])
        assert store.get(scenario) is None

        # Wrong payload shape unpickles fine but is rejected.
        backend.replace(key, pickle.dumps(["wrong", "shape"]))
        assert store.get(scenario) is None

        # The store recovers by overwriting the bad entry (put-if-absent
        # detects the corrupt occupant and repairs it in place).
        refreshed = run_batch([scenario], store=store)[0]
        assert store.get(scenario) is not None
        assert pickle.dumps(store.get(scenario).result) == pickle.dumps(
            refreshed.result
        )

    def test_put_is_first_write_wins(self, backend):
        store = ResultStore(backend=backend)
        scenario = _scenario()
        outcome = run_batch([scenario], store=store)[0]
        assert store.stats.stores == 1
        # A duplicate execution publishing again does not rewrite (and
        # does not count a second store).
        assert store.put(scenario, outcome) is False
        assert store.stats.stores == 1

    def test_stats_accounting(self, backend):
        store = ResultStore(backend=backend)
        run_batch([_scenario()], store=store)  # miss + store
        run_batch([_scenario()], store=store)  # hit
        store.probe(_scenario(seed=9))  # miss (probe counts like get)
        assert store.stats.as_dict() == {
            "hits": 1,
            "misses": 2,
            "stores": 1,
            "uncacheable": 0,
        }

    def test_uncacheable_scenarios_bypass_the_cache(self, backend):
        store = ResultStore(backend=backend)
        scenario = Scenario(
            scheduler="eva",
            trace=TraceSpec.make("small-physical", seed=0),
            delay_model=DelayModel(stochastic=True, rng=np.random.default_rng(0)),
        )
        outcome = run_batch([scenario], store=store)[0]
        assert outcome.result.num_jobs > 0
        # counted once per lookup — the paired put() must not double it
        assert store.stats.uncacheable == 1
        assert store.stats.stores == 0
        assert len(store) == 0


# ---------------------------------------------------------------------------
# Filesystem-layout specifics (the classic default backend)
# ---------------------------------------------------------------------------


class TestFilesystemLayout:
    def test_default_backend_keeps_the_classic_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _scenario()
        run_batch([scenario], store=store)
        [entry] = list((tmp_path / store.token[:16]).glob("*.pkl"))
        assert entry.name == f"{scenario.fingerprint()}.pkl"

    def test_root_or_backend_is_required(self):
        with pytest.raises(ValueError, match="root or a backend"):
            ResultStore()

    def test_bad_keys_are_rejected(self, tmp_path):
        fs = LocalFSBackend(tmp_path)
        for bad in ("noslash", "/leading", "trailing/", "a/b/c"):
            with pytest.raises(ValueError, match="backend keys"):
                fs.get(bad)

    def test_code_token_is_stable_and_hexadecimal(self):
        assert code_token() == code_token()
        assert len(code_token()) == 64
        int(code_token(), 16)


class TestMultiSeedAggregation:
    def test_mean_std_matches_hand_computed(self, tmp_path):
        store = ResultStore(tmp_path)
        seeds = (0, 1, 2)
        trials = run_trials([_scenario()], seeds, store=store)
        [aggregate] = trials.aggregates

        by_hand = [
            run_batch([_scenario(seed=s)])[0].result.total_cost for s in seeds
        ]
        stats = aggregate.total_cost
        assert stats.values == tuple(by_hand)
        assert stats.mean == pytest.approx(statistics.fmean(by_hand))
        assert stats.std == pytest.approx(statistics.pstdev(by_hand))

    def test_trials_share_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run_trials([_scenario()], (0, 1), store=store)
        assert store.stats.as_dict() == {
            "hits": 0,
            "misses": 2,
            "stores": 2,
            "uncacheable": 0,
        }
        run_trials([_scenario()], (0, 1), store=store)
        assert store.stats.misses == 2  # second pass re-simulated nothing
        assert store.stats.hits == 2

    def test_normalized_cost_is_per_seed(self, tmp_path):
        store = ResultStore(tmp_path)
        trials = run_trials(
            [_scenario(name="No-Packing", scheduler="no-packing"), _scenario()],
            (0, 1),
            store=store,
        )
        baseline, eva = trials.aggregates
        norm = eva.normalized_cost(baseline)
        expected = [
            e.result.total_cost / b.result.total_cost
            for e, b in zip(eva.outcomes, baseline.outcomes)
        ]
        assert norm.values == pytest.approx(tuple(expected))

    def test_metric_stats_basics(self):
        single = MetricStats.of([2.0])
        assert (single.mean, single.std) == (2.0, 0.0)
        assert f"{MetricStats.of([1.0, 3.0]):.1f}" == "2.0 ± 1.0"
        with pytest.raises(ValueError):
            MetricStats.of([])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_trials([_scenario()], (1, 1))
        with pytest.raises(ValueError):
            run_trials([_scenario()], ())
