"""ResultStore semantics: byte-identical hits, invalidation, corruption
tolerance, and multi-seed aggregation."""

import pickle
import statistics

import numpy as np
import pytest

from repro.cloud.delays import DelayModel
from repro.sim.batch import (
    MetricStats,
    Scenario,
    TraceSpec,
    run_batch,
    run_trials,
)
from repro.sim.results import ResultStore, code_token


def _scenario(name="Eva", scheduler="eva", seed=0) -> Scenario:
    return Scenario(
        scheduler=scheduler,
        trace=TraceSpec.make("small-physical", seed=seed),
        name=name,
        seed=seed,
    )


class TestResultStore:
    def test_cache_hit_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _scenario()
        first = run_batch([scenario], store=store)[0]
        second = run_batch([scenario], store=store)[0]
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert pickle.dumps(first.result) == pickle.dumps(second.result)
        assert first == second  # scenario, result, and elapsed all equal

    def test_hit_carries_requested_display_name(self, tmp_path):
        store = ResultStore(tmp_path)
        run_batch([_scenario(name="First")], store=store)
        hit = store.get(_scenario(name="Second"))
        assert hit is not None
        assert hit.scenario.name == "Second"

    def test_fingerprint_change_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        run_batch([_scenario(seed=0)], store=store)
        assert store.get(_scenario(seed=1)) is None

    def test_code_token_change_invalidates(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path)
        run_batch([scenario], store=store)
        assert store.get(scenario) is not None

        changed_code = ResultStore(tmp_path, token="f" * 64)
        assert changed_code.get(scenario) is None
        # ... and the two tokens' entries coexist without clobbering.
        run_batch([scenario], store=changed_code)
        assert changed_code.get(scenario) is not None
        assert ResultStore(tmp_path).get(scenario) is not None

    def test_corrupted_entry_is_a_miss_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _scenario()
        run_batch([scenario], store=store)
        [entry] = list((tmp_path / store.token[:16]).glob("*.pkl"))

        entry.write_bytes(b"not a pickle")
        assert store.get(scenario) is None

        # A truncated (partially written) pickle is also just a miss.
        good = pickle.dumps({"version": 1})
        entry.write_bytes(good[: len(good) // 2])
        assert store.get(scenario) is None

        # Wrong payload shape unpickles fine but is rejected.
        entry.write_bytes(pickle.dumps(["wrong", "shape"]))
        assert store.get(scenario) is None

        # The store recovers by overwriting the bad entry.
        refreshed = run_batch([scenario], store=store)[0]
        assert store.get(scenario) is not None
        assert pickle.dumps(store.get(scenario).result) == pickle.dumps(
            refreshed.result
        )

    def test_uncacheable_scenarios_bypass_the_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = Scenario(
            scheduler="eva",
            trace=TraceSpec.make("small-physical", seed=0),
            delay_model=DelayModel(stochastic=True, rng=np.random.default_rng(0)),
        )
        outcome = run_batch([scenario], store=store)[0]
        assert outcome.result.num_jobs > 0
        # counted once per lookup — the paired put() must not double it
        assert store.stats.uncacheable == 1
        assert store.stats.stores == 0
        assert len(store) == 0

    def test_code_token_is_stable_and_hexadecimal(self):
        assert code_token() == code_token()
        assert len(code_token()) == 64
        int(code_token(), 16)


class TestMultiSeedAggregation:
    def test_mean_std_matches_hand_computed(self, tmp_path):
        store = ResultStore(tmp_path)
        seeds = (0, 1, 2)
        trials = run_trials([_scenario()], seeds, store=store)
        [aggregate] = trials.aggregates

        by_hand = [
            run_batch([_scenario(seed=s)])[0].result.total_cost for s in seeds
        ]
        stats = aggregate.total_cost
        assert stats.values == tuple(by_hand)
        assert stats.mean == pytest.approx(statistics.fmean(by_hand))
        assert stats.std == pytest.approx(statistics.pstdev(by_hand))

    def test_trials_share_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run_trials([_scenario()], (0, 1), store=store)
        assert store.stats.as_dict() == {
            "hits": 0,
            "misses": 2,
            "stores": 2,
            "uncacheable": 0,
        }
        run_trials([_scenario()], (0, 1), store=store)
        assert store.stats.misses == 2  # second pass re-simulated nothing
        assert store.stats.hits == 2

    def test_normalized_cost_is_per_seed(self, tmp_path):
        store = ResultStore(tmp_path)
        trials = run_trials(
            [_scenario(name="No-Packing", scheduler="no-packing"), _scenario()],
            (0, 1),
            store=store,
        )
        baseline, eva = trials.aggregates
        norm = eva.normalized_cost(baseline)
        expected = [
            e.result.total_cost / b.result.total_cost
            for e, b in zip(eva.outcomes, baseline.outcomes)
        ]
        assert norm.values == pytest.approx(tuple(expected))

    def test_metric_stats_basics(self):
        single = MetricStats.of([2.0])
        assert (single.mean, single.std) == (2.0, 0.0)
        assert f"{MetricStats.of([1.0, 3.0]):.1f}" == "2.0 ± 1.0"
        with pytest.raises(ValueError):
            MetricStats.of([])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_trials([_scenario()], (1, 1))
        with pytest.raises(ValueError):
            run_trials([_scenario()], ())
