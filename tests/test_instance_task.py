"""Unit tests for instance types, instances, tasks, and jobs."""

import pytest

from repro.cluster.instance import (
    InstanceType,
    fresh_instance,
    ghost_instance_type,
)
from repro.cluster.resources import ResourceVector
from repro.cluster.task import (
    DEFAULT_FAMILY,
    Job,
    MigrationDelays,
    Task,
    make_job,
)


class TestInstanceType:
    def test_ghost_properties(self):
        ghost = ghost_instance_type()
        assert ghost.is_ghost
        assert ghost.hourly_cost == 0
        assert ghost.capacity.is_zero()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", "f", ResourceVector(1, 1, 1), -1.0)

    def test_cost_per_second(self):
        it = InstanceType("x", "f", ResourceVector(1, 1, 1), 3600.0)
        assert it.cost_per_second() == pytest.approx(1.0)


class TestInstance:
    def test_fresh_instances_unique(self):
        it = InstanceType("x", "f", ResourceVector(1, 1, 1), 1.0)
        a, b = fresh_instance(it), fresh_instance(it)
        assert a.instance_id != b.instance_id
        assert a != b

    def test_equality_by_id(self):
        it = InstanceType("x", "f", ResourceVector(1, 1, 1), 1.0)
        a = fresh_instance(it)
        clone = type(a)(instance_type=it, instance_id=a.instance_id)
        assert a == clone
        assert hash(a) == hash(clone)


class TestTask:
    def test_demand_for_family_fallback(self):
        task = Task(
            task_id="t",
            job_id="j",
            workload="w",
            demands={
                "p3": ResourceVector(1, 8, 16),
                DEFAULT_FAMILY: ResourceVector(1, 4, 16),
            },
        )
        assert task.demand_for("p3").cpus == 8
        assert task.demand_for("c7i").cpus == 4  # falls back to '*'

    def test_demand_for_without_default_uses_any(self):
        task = Task(
            task_id="t", job_id="j", workload="w",
            demands={"p3": ResourceVector(1, 8, 16)},
        )
        assert task.demand_for("c7i").cpus == 8

    def test_empty_demands_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id="t", job_id="j", workload="w", demands={})

    def test_max_demand(self):
        task = Task(
            task_id="t", job_id="j", workload="w",
            demands={
                "a": ResourceVector(1, 8, 10),
                "b": ResourceVector(2, 4, 20),
            },
        )
        assert task.max_demand == ResourceVector(2, 8, 20)


class TestJob:
    def test_make_job_multi_task(self):
        job = make_job("w", {"*": ResourceVector(1, 2, 3)}, 2.0, num_tasks=3)
        assert job.num_tasks == 3
        assert job.is_multi_task
        assert len({t.task_id for t in job.tasks}) == 3
        assert all(t.job_id == job.job_id for t in job.tasks)

    def test_job_requires_tasks(self):
        with pytest.raises(ValueError):
            Job(job_id="j", tasks=(), arrival_time_s=0, duration_hours=1, workload="w")

    def test_job_rejects_foreign_tasks(self):
        other = make_job("w", {"*": ResourceVector(1, 1, 1)}, 1.0)
        with pytest.raises(ValueError):
            Job(
                job_id="j2",
                tasks=other.tasks,
                arrival_time_s=0,
                duration_hours=1,
                workload="w",
            )

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_job("w", {"*": ResourceVector(1, 1, 1)}, 0.0)

    def test_migration_delays_total(self):
        delays = MigrationDelays(checkpoint_s=10, launch_s=20)
        assert delays.total_s() == 30
        assert delays.total_hours() == pytest.approx(30 / 3600)
