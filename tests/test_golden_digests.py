"""Byte-identical regression gate for the simulator's result stream.

The 23-cell scheduler/trace matrix below was digested at the revision
that introduced the action/observation protocol, *before* the
``_apply``-path rewrite, so these digests pin the legacy
snapshot→target semantics.  Any refactor of the scheduling contract,
the action executor, or the event engine must keep every
:class:`~repro.sim.metrics.SimulationResult` byte-identical — the
whole pickled result, not just headline metrics.

Regenerate (only when a change is *supposed* to alter results, which
needs an explicit justification in the PR):

    EVA_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_digests.py

The matrix spans every registered scheduler, single- and multi-task
traces, all four trace families, and the spot market, so digest drift
localizes quickly: a diff confined to ``spot-*`` rows points at the
preemption path, one confined to ``eva*`` rows at the packing layer,
and a full-matrix diff at the engine/accounting core.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.core import make_scheduler
from repro.cloud.market import CreditModel, MarketConfig, MarketPool
from repro.sim.simulator import (
    FailureConfig,
    RetryPolicy,
    SpotConfig,
    run_simulation,
)
from repro.workloads.alibaba import (
    alibaba_gavel_trace,
    alibaba_multi_task_trace,
    synthesize_alibaba_trace,
)
from repro.workloads.synthetic import small_physical_trace, synthetic_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_digests.json"
#: Deadline-SLO cells live in their own file so the legacy 23-cell
#: matrix above is never rewritten by a deadline-side regeneration
#: (regen runs select one test file/function, not one env var).
GOLDEN_DEADLINE_PATH = (
    Path(__file__).parent / "data" / "golden_digests_deadline.json"
)
#: Failure-injection cells, same per-file isolation rationale.
GOLDEN_FAILURE_PATH = (
    Path(__file__).parent / "data" / "golden_digests_failure.json"
)
#: Spot-market cells, same per-file isolation rationale.
GOLDEN_MARKET_PATH = (
    Path(__file__).parent / "data" / "golden_digests_market.json"
)

#: Pinned so the digest does not move when a newer interpreter bumps
#: ``pickle.HIGHEST_PROTOCOL``.
_PICKLE_PROTOCOL = 5

_EVA_VARIANTS = (
    "eva",
    "eva-tnrp",
    "eva-rp",
    "eva-single",
    "eva-full-only",
    "eva-partial-only",
)
_BASELINES = ("no-packing", "stratus", "synergy", "owl")


def _matrix() -> list[tuple[str, str, dict]]:
    """(cell id, scheduler registry name, run_simulation kwargs) triples."""
    cells: list[tuple[str, str, dict]] = []
    syn20 = synthetic_trace(20, seed=0, name="golden-syn20")
    for scheduler in _EVA_VARIANTS + _BASELINES:
        cells.append((f"syn20-{scheduler}", scheduler, {"trace": syn20}))
    ali60 = synthesize_alibaba_trace(60, seed=1)
    for scheduler in ("eva",) + _BASELINES:
        cells.append((f"ali60-{scheduler}", scheduler, {"trace": ali60}))
    multi30 = alibaba_multi_task_trace(30, multi_task_fraction=0.5, seed=2)
    for scheduler in ("eva", "eva-single"):
        cells.append((f"multi30-{scheduler}", scheduler, {"trace": multi30}))
    spot12 = synthetic_trace(12, seed=3, name="golden-spot12")
    spot = SpotConfig(enabled=True, preemption_rate_per_hour=0.3, seed=3)
    for scheduler in ("eva", "no-packing", "stratus"):
        cells.append(
            (f"spot12-{scheduler}", scheduler, {"trace": spot12, "spot": spot})
        )
    cells.append(("gavel24-eva", "eva", {"trace": alibaba_gavel_trace(24, seed=4)}))
    phys32 = small_physical_trace(seed=0)
    for scheduler in ("eva", "owl"):
        cells.append((f"phys32-{scheduler}", scheduler, {"trace": phys32}))
    assert len(cells) == 23, f"golden matrix drifted to {len(cells)} cells"
    return cells


def _digest(cell_kwargs: dict, scheduler_name: str) -> str:
    result = run_simulation(
        scheduler=make_scheduler(scheduler_name, ec2_catalog()), **cell_kwargs
    )
    return hashlib.sha256(
        pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
    ).hexdigest()


def _check_against_golden(actual: dict[str, str], path: Path) -> None:
    if os.environ.get("EVA_REGEN_GOLDEN") == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {len(actual)} golden digests at {path}")

    assert path.exists(), f"{path} missing; regenerate with EVA_REGEN_GOLDEN=1"
    golden = json.loads(path.read_text())
    assert set(actual) == set(golden), (
        "golden matrix cells changed; regenerate deliberately"
    )
    drifted = {
        cell: (golden[cell], actual[cell])
        for cell in sorted(actual)
        if actual[cell] != golden[cell]
    }
    assert not drifted, (
        "SimulationResult digests drifted (byte-identity contract, see "
        f"module docstring): {sorted(drifted)}"
    )


def test_simulation_results_match_golden_digests():
    cells = _matrix()
    actual = {
        cell_id: _digest(kwargs, scheduler)
        for cell_id, scheduler, kwargs in cells
    }
    _check_against_golden(actual, GOLDEN_PATH)


def _deadline_matrix() -> list[tuple[str, str, dict]]:
    """The deadline-SLO cells: deadline-bearing traces × warning windows.

    Pins the whole new surface: deadline sampling in both trace
    families, the once-per-job warning emission, the ``eva-deadline``
    policy's urgency/extraction path, and the SLO fields of
    ``SimulationResult`` — across the configurable warning horizon.
    """
    cells: list[tuple[str, str, dict]] = []
    dl_syn = synthetic_trace(
        16,
        seed=5,
        mean_interarrival_s=600.0,
        deadline_fraction=0.5,
        deadline_slack_range=(1.25, 1.25),
        name="golden-dlsyn16",
    )
    for scheduler in ("eva", "eva-deadline", "no-packing"):
        cells.append(
            (
                f"dlsyn16-{scheduler}",
                scheduler,
                {"trace": dl_syn, "deadline_warning_s": 7 * 24 * 3600.0},
            )
        )
    # The classic two-period default horizon (deadline_warning_s=None).
    cells.append(("dlsyn16-eva-deadline-defaultwarn", "eva-deadline", {"trace": dl_syn}))
    dl_loose = synthetic_trace(
        16,
        seed=5,
        mean_interarrival_s=600.0,
        deadline_fraction=1.0,
        deadline_slack_range=(1.5, 3.0),
        name="golden-dlloose16",
    )
    cells.append(
        (
            "dlloose16-eva-deadline",
            "eva-deadline",
            {"trace": dl_loose, "deadline_warning_s": 7 * 24 * 3600.0},
        )
    )
    dl_ali = synthesize_alibaba_trace(
        40, seed=6, deadline_fraction=0.4, deadline_slack_range=(1.2, 2.0)
    )
    for scheduler in ("eva", "eva-deadline"):
        cells.append(
            (
                f"dlali40-{scheduler}",
                scheduler,
                {"trace": dl_ali, "deadline_warning_s": 3600.0},
            )
        )
    assert len(cells) == 7, f"deadline matrix drifted to {len(cells)} cells"
    return cells


def test_deadline_results_match_golden_digests():
    cells = _deadline_matrix()
    actual = {
        cell_id: _digest(kwargs, scheduler)
        for cell_id, scheduler, kwargs in cells
    }
    _check_against_golden(actual, GOLDEN_DEADLINE_PATH)


def _failure_matrix() -> list[tuple[str, str, dict]]:
    """The fault-injection cells: failure regimes × reaction policies.

    Pins the whole new surface: the two fault RNG streams (per-launch
    crash/straggler draws, self-scheduling domain shocks), rollback to
    the last checkpoint boundary, retry backoff, the checkpoint
    throughput tax, the ``InstanceFailed``/``StragglerReport``
    observation emission, the ``eva-failure`` hazard/urgency/drain
    policy, and the failure fields of ``SimulationResult`` — each cell
    runs ``validate=True`` so the naive accounting cross-checks are part
    of the pinned path.
    """
    cells: list[tuple[str, str, dict]] = []
    fsyn = synthetic_trace(
        16,
        seed=7,
        mean_interarrival_s=600.0,
        duration_range_hours=(0.2, 1.0),
        name="golden-fsyn16",
    )
    # Crashes + shocks + stragglers together (the full regime).
    full = FailureConfig(
        enabled=True,
        crash_rate_per_hour=0.3,
        domain_shock_rate_per_hour=0.1,
        straggler_rate_per_hour=0.3,
        retry=RetryPolicy(
            checkpoint_interval_s=900.0, checkpoint_overhead=0.02
        ),
        seed=7,
    )
    for scheduler in ("eva", "eva-failure", "no-packing"):
        cells.append(
            (
                f"fsyn16-full-{scheduler}",
                scheduler,
                {"trace": fsyn, "failures": full, "validate": True},
            )
        )
    # Shock-dominated: correlated domain kills with no background noise.
    shocks = FailureConfig(
        enabled=True,
        domain_shock_rate_per_hour=0.4,
        num_domains=2,
        retry=RetryPolicy(checkpoint_interval_s=1200.0),
        seed=8,
    )
    for scheduler in ("eva", "eva-failure"):
        cells.append(
            (
                f"fsyn16-shocks-{scheduler}",
                scheduler,
                {"trace": fsyn, "failures": shocks, "validate": True},
            )
        )
    # Straggler-only: degraded capacity, nothing ever dies.
    slow = FailureConfig(
        enabled=True,
        straggler_rate_per_hour=0.8,
        straggler_slowdown=(0.3, 0.6),
        straggler_duration_s=1800.0,
        seed=9,
    )
    for scheduler in ("eva", "eva-failure"):
        cells.append(
            (
                f"fsyn16-slow-{scheduler}",
                scheduler,
                {"trace": fsyn, "failures": slow, "validate": True},
            )
        )
    fali = synthesize_alibaba_trace(40, seed=10)
    cells.append(
        (
            "fali40-eva-failure",
            "eva-failure",
            {"trace": fali, "failures": full, "validate": True},
        )
    )
    assert len(cells) == 8, f"failure matrix drifted to {len(cells)} cells"
    return cells


def test_failure_results_match_golden_digests():
    cells = _failure_matrix()
    actual = {
        cell_id: _digest(kwargs, scheduler)
        for cell_id, scheduler, kwargs in cells
    }
    _check_against_golden(actual, GOLDEN_FAILURE_PATH)


def _market_matrix() -> list[tuple[str, str, dict]]:
    """The spot-market cells: price regimes × bidding policies.

    Pins the whole new surface: the seeded price walks and their
    mid-life billing splits, the ``PriceChanged``/``PoolExhausted``
    emission, the price-coupled eviction draw under legacy spot, finite
    pool capacity with backlog delays, burstable credits, and the
    ``eva-market`` repricing/bid-ceiling/fallback policy.
    """
    cells: list[tuple[str, str, dict]] = []
    msyn = synthetic_trace(
        16,
        seed=11,
        mean_interarrival_s=600.0,
        duration_range_hours=(0.2, 1.0),
        name="golden-msyn16",
    )
    volatile = MarketConfig(
        enabled=True,
        seed=11,
        pools=(
            MarketPool(
                name="cpu-c", families=("c7i",), volatility=0.3, step_s=1800.0
            ),
            MarketPool(
                name="cpu-r", families=("r7i",), volatility=0.3, step_s=1800.0
            ),
        ),
    )
    # Volatile two-pool market under the three bidding postures.
    for scheduler in ("eva", "eva-market", "no-packing"):
        cells.append(
            (
                f"msyn16-volatile-{scheduler}",
                scheduler,
                {"trace": msyn, "market": volatile},
            )
        )
    # Legacy spot with the price-coupled eviction draw and notices the
    # storm detector can see.
    coupled = MarketConfig(
        enabled=True,
        seed=12,
        eviction_coupling=2.0,
        pools=volatile.pools,
    )
    spot = SpotConfig(
        enabled=True, preemption_rate_per_hour=0.2, seed=11, notice_s=300.0
    )
    cells.append(
        (
            "msyn16-coupled-eva-market",
            "eva-market",
            {"trace": msyn, "market": coupled, "spot": spot},
        )
    )
    # Finite capacity: backlog delays + PoolExhausted emission.
    tight = MarketConfig(
        enabled=True,
        seed=13,
        pools=(
            MarketPool(
                name="tiny",
                families=("c7i", "r7i"),
                capacity=2,
                backlog_delay_s=600.0,
            ),
        ),
    )
    for scheduler in ("eva", "eva-market"):
        cells.append(
            (
                f"msyn16-tight-{scheduler}",
                scheduler,
                {"trace": msyn, "market": tight},
            )
        )
    # Burstable credits: deterministic exhaustion, degraded throughput.
    burst = MarketConfig(
        enabled=True,
        seed=14,
        pools=(MarketPool(name="burst", families=("c7i", "r7i")),),
        credits=CreditModel(
            families=("c7i", "r7i"), initial_credit_s=1800.0
        ),
    )
    cells.append(
        ("msyn16-burst-eva", "eva", {"trace": msyn, "market": burst})
    )
    # Replayed price trace (the CSV-backed path, inlined).
    replay = MarketConfig(
        enabled=True,
        seed=15,
        pools=(
            MarketPool(
                name="replay",
                families=("c7i",),
                trace=((0.0, 1.0), (3600.0, 1.6), (10800.0, 0.7)),
            ),
        ),
    )
    cells.append(
        ("msyn16-replay-eva-market", "eva-market", {"trace": msyn, "market": replay})
    )
    assert len(cells) == 8, f"market matrix drifted to {len(cells)} cells"
    return cells


def test_market_results_match_golden_digests():
    cells = _market_matrix()
    actual = {
        cell_id: _digest(kwargs, scheduler)
        for cell_id, scheduler, kwargs in cells
    }
    _check_against_golden(actual, GOLDEN_MARKET_PATH)
