"""Tests for the experiments CLI (python -m repro.experiments)."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.registry import experiment_ids


class TestList:
    def test_list(self, capsys):
        assert main(["prog", "list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_ids():
            assert name in out

    def test_list_json(self, capsys):
        assert main(["prog", "list", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["id"] for e in entries} == set(experiment_ids())
        assert all({"id", "kind", "title"} <= set(e) for e in entries)


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["prog", "run", "tableXX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_id_rejected_even_with_all(self, capsys):
        assert main(["prog", "run", "all", "tableXX"]) == 2
        assert "tableXX" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["prog"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_bare_id_back_compat(self, capsys):
        assert main(["prog", "table08", "--param", "num_jobs=1000"]) == 0
        out = capsys.readouterr().out
        assert "GPU Demand" in out
        assert "finished in" in out

    def test_run_subcommand(self, capsys):
        assert main(["prog", "run", "table07"]) == 0
        assert "Workload" in capsys.readouterr().out

    def test_run_json_format(self, capsys):
        assert main(
            ["prog", "run", "table08", "--param", "num_jobs=1000",
             "--format", "json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["ids"] == ["table08"]
        [payload] = record["experiments"]
        assert payload["id"] == "table08"
        assert payload["tables"][0]["headers"] == ["GPU Demand", "Published", "Generated"]

    def test_run_csv_format(self, capsys):
        assert main(
            ["prog", "run", "table07", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("# table07:")
        assert "Workload,Description" in out

    def test_seeds_validated(self, capsys):
        assert main(["prog", "run", "table08", "--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_param_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["prog", "run", "table08", "--param", "nonsense"])


class TestCacheAndReport:
    def test_cached_rerun_and_report(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out_file = str(tmp_path / "run.json")
        args = [
            "prog", "run", "table11", "--seeds", "2",
            "--cache-dir", cache, "--format", "json", "--output", out_file,
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["experiments"][0]["cache"]["misses"] == 10

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        cache_stats = second["experiments"][0]["cache"]
        assert cache_stats["misses"] == 0, "second run must be 100% cache hits"
        assert cache_stats["hits"] == 10
        assert (
            second["experiments"][0]["tables"] == first["experiments"][0]["tables"]
        )

        # report re-renders the saved record without simulating
        assert main(["prog", "report", out_file]) == 0
        text = capsys.readouterr().out
        assert "multi-seed trials" in text
        assert main(["prog", "report", out_file, "--format", "csv"]) == 0
        assert "Scenario,Total Cost" in capsys.readouterr().out

    def test_report_missing_file(self, capsys):
        assert main(["prog", "report", "/nonexistent/run.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_unknown_id(self, tmp_path, capsys):
        out_file = str(tmp_path / "run.json")
        assert main(
            ["prog", "run", "table07", "--format", "json", "--output", out_file]
        ) == 0
        capsys.readouterr()
        assert main(["prog", "report", out_file, "--id", "fig04"]) == 2
        assert "not in record" in capsys.readouterr().err
