"""Tests for the experiments CLI (python -m repro.experiments)."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.registry import experiment_ids


class TestList:
    def test_list(self, capsys):
        assert main(["prog", "list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_ids():
            assert name in out

    def test_list_json(self, capsys):
        assert main(["prog", "list", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["id"] for e in entries} == set(experiment_ids())
        assert all({"id", "kind", "title"} <= set(e) for e in entries)


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["prog", "run", "tableXX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_id_rejected_even_with_all(self, capsys):
        assert main(["prog", "run", "all", "tableXX"]) == 2
        assert "tableXX" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["prog"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_bare_id_back_compat(self, capsys):
        assert main(["prog", "table08", "--param", "num_jobs=1000"]) == 0
        out = capsys.readouterr().out
        assert "GPU Demand" in out
        assert "finished in" in out

    def test_run_subcommand(self, capsys):
        assert main(["prog", "run", "table07"]) == 0
        assert "Workload" in capsys.readouterr().out

    def test_run_json_format(self, capsys):
        assert main(
            ["prog", "run", "table08", "--param", "num_jobs=1000",
             "--format", "json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["ids"] == ["table08"]
        [payload] = record["experiments"]
        assert payload["id"] == "table08"
        assert payload["tables"][0]["headers"] == ["GPU Demand", "Published", "Generated"]

    def test_run_csv_format(self, capsys):
        assert main(
            ["prog", "run", "table07", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("# table07:")
        assert "Workload,Description" in out

    def test_seeds_validated(self, capsys):
        assert main(["prog", "run", "table08", "--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_param_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["prog", "run", "table08", "--param", "nonsense"])


class TestCacheAndReport:
    def test_cached_rerun_and_report(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out_file = str(tmp_path / "run.json")
        args = [
            "prog", "run", "table11", "--seeds", "2",
            "--cache-dir", cache, "--format", "json", "--output", out_file,
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["experiments"][0]["cache"]["misses"] == 10

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        cache_stats = second["experiments"][0]["cache"]
        assert cache_stats["misses"] == 0, "second run must be 100% cache hits"
        assert cache_stats["hits"] == 10
        assert (
            second["experiments"][0]["tables"] == first["experiments"][0]["tables"]
        )

        # report re-renders the saved record without simulating
        assert main(["prog", "report", out_file]) == 0
        text = capsys.readouterr().out
        assert "multi-seed trials" in text
        assert main(["prog", "report", out_file, "--format", "csv"]) == 0
        assert "Scenario,Total Cost" in capsys.readouterr().out

    def test_report_missing_file(self, capsys):
        assert main(["prog", "report", "/nonexistent/run.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_unknown_id(self, tmp_path, capsys):
        out_file = str(tmp_path / "run.json")
        assert main(
            ["prog", "run", "table07", "--format", "json", "--output", out_file]
        ) == 0
        capsys.readouterr()
        assert main(["prog", "report", out_file, "--id", "fig04"]) == 2
        assert "not in record" in capsys.readouterr().err


class TestDryRun:
    def test_dry_run_without_cache_lists_grid(self, capsys):
        assert main(
            ["prog", "run", "table11", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "table11: 5 scenario(s)" in out
        # One row per cell: 16-hex fingerprint, no cache status.
        rows = [l for l in out.splitlines() if l.startswith("  ")]
        assert len(rows) == 5
        for row in rows:
            fp, status = row.split()[:2]
            assert len(fp) == 16 and int(fp, 16) >= 0
            assert status == "-"
        # Nothing was simulated (no run footer, no cache line).
        assert "finished in" not in out
        assert "[cache]" not in out

    def test_dry_run_expands_seeds(self, capsys):
        assert main(
            ["prog", "run", "table11", "--dry-run", "--seeds", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "table11: 5 scenario(s) x 2 seed(s)" in out
        assert len([l for l in out.splitlines() if l.startswith("  ")]) == 10

    def test_dry_run_direct_experiment(self, capsys):
        assert main(["prog", "run", "table01", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "table01: direct experiment" in out

    def test_dry_run_rejects_format_and_output(self, tmp_path, capsys):
        assert main(
            ["prog", "run", "table11", "--dry-run", "--format", "json"]
        ) == 2
        assert "--dry-run" in capsys.readouterr().err
        out_file = str(tmp_path / "plan.json")
        assert main(
            ["prog", "run", "table11", "--dry-run", "--output", out_file]
        ) == 2
        assert "--dry-run" in capsys.readouterr().err
        assert not (tmp_path / "plan.json").exists()

    def test_dry_run_reports_cache_status(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        dry = [
            "prog", "run", "spot-eviction", "--dry-run",
            "--param", "num_jobs=12", "--cache-dir", cache,
        ]
        assert main(dry) == 0
        cold = capsys.readouterr().out
        assert cold.count("  miss") == 9
        assert "hits=0/9 misses=9" in cold

        # Populate the cache for real, then the same dry run is all hits.
        assert main(
            ["prog", "run", "spot-eviction",
             "--param", "num_jobs=12", "--cache-dir", cache]
        ) == 0
        capsys.readouterr()
        assert main(dry) == 0
        warm = capsys.readouterr().out
        assert warm.count("  hit") == 9
        assert "hits=9/9 misses=0" in warm
        # Fingerprints shown dry match the ones that keyed the store.
        assert {
            l.split()[0] for l in cold.splitlines() if l.startswith("  ")
        } == {l.split()[0] for l in warm.splitlines() if l.startswith("  ")}
