"""Tests for the experiments CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import _RUNNERS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["prog", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("table13", "fig04", "table04"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["prog", "tableXX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["prog"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_run_cheap_experiment(self, capsys):
        assert main(["prog", "table08"]) == 0
        out = capsys.readouterr().out
        assert "GPU Demand" in out
        assert "finished in" in out

    def test_every_runner_registered(self):
        # One runner per paper table/figure (plus data tables 7-9).
        expected = {
            "fig01", "fig04", "fig05", "fig06", "fig07", "fig08",
            "table01", "table04", "table05", "table06", "table07",
            "table08", "table09", "table10", "table11", "table12",
            "table13", "table14",
        }
        assert set(_RUNNERS) == expected
