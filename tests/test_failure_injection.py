"""Fault injection, retry/restart semantics, and the eva-failure policy.

Covers the reliability subsystem end to end:

* config validation (``FailureConfig``/``RetryPolicy``, plus the
  ``SpotConfig`` non-finite regression);
* byte-identity with failures disabled (the fault-free engine path must
  be indistinguishable from a build without the subsystem);
* crash/rollback semantics — a failed instance loses exactly the
  un-checkpointed progress, retries back off exponentially, and domain
  shocks take out whole failure domains at once;
* the typed observation surface (``InstanceFailed``,
  ``StragglerReport``) every scheduler sees;
* the ``eva-failure`` scheduler: per-domain hazard estimates built from
  observations only, strike-escalated urgency, straggler draining;
* fingerprint coverage for every failure knob, stable across
  ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.cluster.instance import fresh_instance
from repro.cluster.state import ClusterSnapshot, InstanceState
from repro.core import make_scheduler
from repro.core.failure import FailureAwareConfig, FailureAwareEvaScheduler
from repro.core.interfaces import Scheduler
from repro.core.protocol import InstanceFailed, StragglerReport
from repro.sim.batch import Scenario, TraceSpec
from repro.sim.simulator import (
    ClusterSimulator,
    FailureConfig,
    RetryPolicy,
    SpotConfig,
    _JobRT,
    run_simulation,
)
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.workloads import TABLE7_WORKLOADS

#: The Table-7 pool minus the multi-task ResNet variants — rollback and
#: backoff bounds below need the one-task-per-job premise.
_SINGLE_TASK_WORKLOADS = tuple(
    w for w in TABLE7_WORKLOADS if w.tasks_per_job == 1
)


def _trace(num_jobs=10, seed=0, single_task=False, **kwargs):
    kwargs.setdefault("mean_interarrival_s", 600.0)
    kwargs.setdefault("duration_range_hours", (0.2, 1.0))
    if single_task:
        kwargs.setdefault("workloads", _SINGLE_TASK_WORKLOADS)
    return synthetic_trace(num_jobs, seed=seed, name=f"fail-{seed}", **kwargs)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.1])
    def test_failure_rates_must_be_finite_nonnegative(self, bad):
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, crash_rate_per_hour=bad)
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, domain_shock_rate_per_hour=bad)
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, straggler_rate_per_hour=bad)

    def test_straggler_slowdown_band_validated(self):
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, straggler_slowdown=(0.9, 0.2))
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, straggler_slowdown=(0.0, 0.5))
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, straggler_slowdown=(0.5, 1.5))

    def test_num_domains_must_be_positive(self):
        with pytest.raises(ValueError):
            FailureConfig(enabled=True, num_domains=0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_retry_policy_knobs_must_be_finite(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=bad)
        with pytest.raises(ValueError):
            RetryPolicy(checkpoint_interval_s=bad if bad != -1.0 else 0.0)

    def test_checkpoint_overhead_is_a_fraction(self):
        with pytest.raises(ValueError):
            RetryPolicy(checkpoint_overhead=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(checkpoint_overhead=-0.01)
        assert RetryPolicy(checkpoint_overhead=0.0).checkpoint_overhead == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_spot_config_rejects_non_finite(self, bad):
        """Regression: NaN/inf used to flow into event timestamps and
        corrupt the queue ordering instead of failing fast."""
        with pytest.raises(ValueError):
            SpotConfig(enabled=True, preemption_rate_per_hour=bad)
        with pytest.raises(ValueError):
            SpotConfig(
                enabled=True, preemption_rate_per_hour=0.3, notice_s=bad
            )


# ---------------------------------------------------------------------------
# Fault-free byte identity
# ---------------------------------------------------------------------------


class TestDisabledByteIdentity:
    def test_disabled_config_matches_no_config(self, catalog):
        trace = _trace()
        results = []
        for failures in (None, FailureConfig(), FailureConfig(seed=99)):
            results.append(
                run_simulation(
                    trace, make_scheduler("eva", catalog), failures=failures
                )
            )
        baseline = pickle.dumps(results[0], protocol=5)
        assert all(
            pickle.dumps(r, protocol=5) == baseline for r in results[1:]
        )

    def test_eva_failure_scheduler_matches_eva_without_faults(self, catalog):
        """With no failure observations the policy must be byte-for-byte
        plain Eva (the urgency machinery never engages)."""
        trace = _trace()
        eva = run_simulation(trace, make_scheduler("eva", catalog))
        # Same display name so the only possible pickle difference is
        # behavioural (the result embeds the scheduler name).
        eva_failure = run_simulation(
            trace, FailureAwareEvaScheduler(catalog, name="Eva")
        )
        assert pickle.dumps(eva, protocol=5) == pickle.dumps(
            eva_failure, protocol=5
        )

    def test_failure_aware_requires_tnrp(self, catalog):
        from repro.core.scheduler import EvaConfig

        with pytest.raises(ValueError, match="interference_aware"):
            FailureAwareEvaScheduler(
                ec2_catalog(), config=EvaConfig(interference_aware=False)
            )


# ---------------------------------------------------------------------------
# Crash semantics
# ---------------------------------------------------------------------------


def _crash_config(**kwargs):
    kwargs.setdefault("crash_rate_per_hour", 0.6)
    retry = kwargs.pop("retry", None) or RetryPolicy(
        checkpoint_interval_s=900.0
    )
    return FailureConfig(enabled=True, retry=retry, **kwargs)


class TestCrashSemantics:
    def test_rollback_bounded_by_checkpoint_interval(self, catalog):
        """Single-task jobs progress at rate <= 1 standalone-hour per
        wall hour, so no crash can lose more than one checkpoint
        interval's worth of work."""
        trace = _trace(seed=1, single_task=True)
        assert trace.num_tasks() == len(trace)
        interval_s = 900.0
        result = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            failures=_crash_config(
                retry=RetryPolicy(checkpoint_interval_s=interval_s)
            ),
            validate=True,
        )
        assert result.instance_failures > 0
        for outcome in result.failure_outcomes:
            for _, lost in outcome.job_losses:
                assert 0.0 < lost <= interval_s / 3600.0 + 1e-9

    def test_no_checkpoints_lose_all_progress_since_start(self, catalog):
        """With an effectively infinite checkpoint interval, the useful
        work is bounded by the jobs' total durations, and goodput
        degrades against the checkpointed run."""
        trace = _trace(seed=2)
        sparse = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            failures=_crash_config(
                retry=RetryPolicy(checkpoint_interval_s=1e12)
            ),
            validate=True,
        )
        dense = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            failures=_crash_config(
                retry=RetryPolicy(checkpoint_interval_s=300.0)
            ),
            validate=True,
        )
        assert sparse.instance_failures > 0
        # Every loss under the infinite interval is the job's entire
        # progress at crash time (never capped by a boundary).
        total = sum(j.duration_hours for j in trace)
        assert sparse.work_lost_h > 0
        for outcome in sparse.failure_outcomes:
            for jid, lost in outcome.job_losses:
                job = next(j for j in trace if j.job_id == jid)
                assert lost <= job.duration_hours + 1e-9
        assert sparse.total_work_hours == pytest.approx(total)
        assert dense.goodput_fraction >= sparse.goodput_fraction

    def test_retry_backoff_floors_every_repair(self, catalog):
        """Single-task jobs cannot recover before the backoff expires:
        every repair span is at least the base backoff."""
        trace = _trace(seed=3, single_task=True)
        assert trace.num_tasks() == len(trace)
        base_s = 1200.0
        result = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            failures=_crash_config(
                retry=RetryPolicy(
                    backoff_base_s=base_s, checkpoint_interval_s=900.0
                )
            ),
            validate=True,
        )
        assert result.repair_outcomes, "no repairs recorded"
        for repair in result.repair_outcomes:
            assert repair.repair_s >= base_s - 1e-6

    def test_restart_counts_match_failure_records(self, catalog):
        result = run_simulation(
            _trace(seed=4),
            make_scheduler("eva", catalog),
            failures=_crash_config(),
            validate=True,
        )
        assert result.task_restarts == sum(
            o.tasks_lost for o in result.failure_outcomes
        )
        assert result.restarts_per_job() == pytest.approx(
            result.task_restarts / result.num_jobs
        )


class _SnapshotRecorder(Scheduler):
    """Wrapper recording (snapshot, observations) for every round."""

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.name = inner.name
        self.action_types = inner.action_types
        self.rounds: list[tuple] = []

    def schedule(self, snapshot):  # pragma: no cover - decide() is the path
        return self.inner.schedule(snapshot)

    def decide(self, snapshot, observations=()):
        self.rounds.append((snapshot, observations))
        return self.inner.decide(snapshot, observations)


class TestDomainShocks:
    def test_single_domain_shock_clears_the_whole_cluster(self, catalog):
        """With one failure domain, a shock kills every live instance:
        no instance id survives across a shock timestamp."""
        recorder = _SnapshotRecorder(make_scheduler("eva", catalog))
        result = run_simulation(
            _trace(seed=5),
            recorder,
            failures=FailureConfig(
                enabled=True,
                domain_shock_rate_per_hour=0.5,
                num_domains=1,
                seed=5,
            ),
            validate=True,
        )
        shocks = [
            o for o in result.failure_outcomes if o.kind == "domain-shock"
        ]
        assert shocks, "no shocks fired"
        assert all(o.failure_domain == 0 for o in result.failure_outcomes)
        for shock_time in {o.time_s for o in shocks}:
            before = [
                {st.instance_id for st in snap.instances}
                for snap, _ in recorder.rounds
                if snap.time_s < shock_time
            ]
            after = [
                {st.instance_id for st in snap.instances}
                for snap, _ in recorder.rounds
                if snap.time_s > shock_time
            ]
            if before and after:
                assert not (before[-1] & after[0])

    def test_multi_domain_shock_spares_other_domains(self, catalog):
        """Shock outcomes sharing one timestamp share one domain, and
        crashes land across several domains over the run."""
        result = run_simulation(
            _trace(num_jobs=14, seed=2),
            make_scheduler("eva", catalog),
            failures=FailureConfig(
                enabled=True,
                crash_rate_per_hour=0.4,
                domain_shock_rate_per_hour=0.3,
                num_domains=3,
                seed=2,
            ),
            validate=True,
        )
        kinds = {o.kind for o in result.failure_outcomes}
        assert kinds == {"crash", "domain-shock"}
        by_time: dict[float, set[int]] = {}
        for outcome in result.failure_outcomes:
            if outcome.kind == "domain-shock":
                by_time.setdefault(outcome.time_s, set()).add(
                    outcome.failure_domain
                )
        assert by_time
        for domains in by_time.values():
            assert len(domains) == 1


class TestObservationSurface:
    def test_failures_and_stragglers_reach_every_scheduler(self, catalog):
        recorder = _SnapshotRecorder(make_scheduler("no-packing", catalog))
        run_simulation(
            _trace(seed=7),
            recorder,
            failures=FailureConfig(
                enabled=True,
                crash_rate_per_hour=0.5,
                straggler_rate_per_hour=0.6,
                straggler_duration_s=1800.0,
                seed=7,
            ),
            validate=True,
        )
        flat = [o for _, obs in recorder.rounds for o in obs]
        failed = [o for o in flat if isinstance(o, InstanceFailed)]
        straggles = [o for o in flat if isinstance(o, StragglerReport)]
        assert failed and straggles
        assert all(o.failure_domain >= 0 for o in failed)
        onsets = [o for o in straggles if o.slowdown < 1.0]
        recoveries = [o for o in straggles if o.slowdown == 1.0]
        assert onsets, "no straggler onsets observed"
        assert all(0.0 < o.slowdown < 1.0 for o in onsets)
        # Recoveries only exist for instances that lived long enough —
        # but any recovery must name a previously reported straggler.
        onset_ids = {o.instance_id for o in onsets}
        assert all(o.instance_id in onset_ids for o in recoveries)

    def test_stragglers_slow_jobs_down(self, catalog):
        """A straggler-degraded run can never finish earlier than the
        fault-free run of the same trace (no-packing: placements do not
        react, so the slowdown maps straight onto JCT)."""
        trace = _trace(seed=8)
        clean = run_simulation(trace, make_scheduler("no-packing", catalog))
        slowed = run_simulation(
            trace,
            make_scheduler("no-packing", catalog),
            failures=FailureConfig(
                enabled=True,
                straggler_rate_per_hour=1.0,
                straggler_slowdown=(0.3, 0.5),
                straggler_duration_s=3600.0,
                seed=8,
            ),
            validate=True,
        )
        assert slowed.makespan_hours >= clean.makespan_hours - 1e-9
        assert slowed.mean_jct_hours() >= clean.mean_jct_hours() - 1e-9


# ---------------------------------------------------------------------------
# Checkpoint boundary math (unit level)
# ---------------------------------------------------------------------------


class TestCheckpointBoundaries:
    def _job_rt(self, interval_s):
        job = next(iter(_trace(num_jobs=1, seed=0)))
        return _JobRT(
            job=job,
            arrival_s=0.0,
            ckpt_interval_s=interval_s,
            last_ckpt_s=0.0,
        )

    def test_advance_completes_crossed_boundaries_exactly(self):
        rt = self._job_rt(600.0)
        rt.rate = 1.0
        rt.advance(1500.0)  # crosses boundaries at 600 and 1200
        assert rt.work_done_h == pytest.approx(1500.0 / 3600.0)
        assert rt.last_ckpt_s == 1200.0
        assert rt.ckpt_work_h == pytest.approx(1200.0 / 3600.0)

    def test_no_boundary_no_checkpoint(self):
        rt = self._job_rt(600.0)
        rt.rate = 1.0
        rt.advance(599.0)
        assert rt.ckpt_work_h == 0.0
        assert rt.last_ckpt_s == 0.0

    def test_rate_change_between_boundaries_stays_exact(self):
        """The boundary work is computed under the rate that actually
        held there: advance → rate change → advance across boundary."""
        rt = self._job_rt(600.0)
        rt.rate = 1.0
        rt.advance(300.0)
        rt.rate = 0.5
        rt.advance(900.0)  # boundary at 600 under rate 0.5
        expected_at_600 = 300.0 / 3600.0 + 0.5 * 300.0 / 3600.0
        assert rt.ckpt_work_h == pytest.approx(expected_at_600)
        assert rt.work_done_h == pytest.approx(
            300.0 / 3600.0 + 0.5 * 600.0 / 3600.0
        )


# ---------------------------------------------------------------------------
# The eva-failure policy
# ---------------------------------------------------------------------------


def _snapshot(time_s=0.0, tasks=None, jobs=None, instances=()):
    return ClusterSnapshot(
        time_s=time_s,
        tasks=tasks or {},
        jobs=jobs or {},
        instances=tuple(instances),
    )


class TestFailureAwarePolicy:
    def _scheduler(self, **kwargs):
        return FailureAwareEvaScheduler(
            ec2_catalog(),
            failure_config=FailureAwareConfig(**kwargs) if kwargs else None,
        )

    def test_hazard_estimates_come_from_observations_only(self):
        sched = self._scheduler()
        sched.observe(
            (
                InstanceFailed(instance_id="i-a", time_s=100.0, failure_domain=0),
                InstanceFailed(instance_id="i-b", time_s=200.0, failure_domain=0),
                InstanceFailed(instance_id="i-c", time_s=300.0, failure_domain=1),
            )
        )
        sched.decide(_snapshot(time_s=7200.0))
        hazard = sched.domain_hazard_per_hour()
        assert hazard == {0: pytest.approx(1.0), 1: pytest.approx(0.5)}

    def test_strikes_escalate_urgency_with_domain_weight(self):
        trace = _trace(num_jobs=2, seed=0)
        jobs = {j.job_id: j for j in trace}
        tasks = {t.task_id: t for j in trace for t in j.tasks}
        victim_job = sorted(jobs)[0]
        victim_task = next(
            t.task_id for t in tasks.values() if t.job_id == victim_job
        )
        instance = fresh_instance(ec2_catalog()[0])
        snap = _snapshot(
            time_s=3600.0,
            tasks=tasks,
            jobs=jobs,
            instances=[
                InstanceState(
                    instance=instance, task_ids=frozenset({victim_task})
                )
            ],
        )
        sched = self._scheduler(strike_urgency=8.0, max_urgency=64.0)
        sched.decide(snap)  # remembers placements
        sched.observe(
            (
                InstanceFailed(
                    instance_id=instance.instance_id,
                    time_s=3700.0,
                    failure_domain=2,
                ),
            )
        )
        sched.decide(_snapshot(time_s=7200.0, tasks=tasks, jobs=jobs))
        # One strike, one observed domain → weight 1 → urgency 8.
        assert sched.last_urgency == {victim_job: pytest.approx(8.0)}
        # A second strike from the same (now clearly hot) domain
        # compounds: min(64, 8**2 * weight) with weight 2 (two of the
        # domain's failures vs a 1-failure peer domain) caps at 64.
        sched.observe(
            (
                InstanceFailed(
                    instance_id="i-unattributed",
                    time_s=7300.0,
                    failure_domain=3,
                ),
            )
        )
        sched._last_placements = {"i-x": frozenset({victim_job})}
        sched.observe(
            (
                InstanceFailed(
                    instance_id="i-x", time_s=7400.0, failure_domain=2
                ),
            )
        )
        sched.decide(_snapshot(time_s=9000.0, tasks=tasks, jobs=jobs))
        assert sched.last_urgency == {victim_job: pytest.approx(64.0)}

    def test_strikes_prune_when_job_leaves(self):
        sched = self._scheduler()
        sched._strikes["ghost"] = 2
        sched._strike_domain["ghost"] = 1
        sched.decide(_snapshot(time_s=100.0))
        assert sched._strikes == {}
        assert sched.last_urgency == {}

    def test_straggler_drain_hides_instances_from_packing(self):
        sched = self._scheduler()
        healthy = fresh_instance(ec2_catalog()[0])
        degraded = fresh_instance(ec2_catalog()[0])
        sched.observe(
            (
                StragglerReport(
                    instance_id=degraded.instance_id,
                    time_s=50.0,
                    slowdown=0.4,
                ),
            )
        )
        snap = _snapshot(
            time_s=100.0,
            instances=[
                InstanceState(instance=healthy, task_ids=frozenset()),
                InstanceState(instance=degraded, task_ids=frozenset()),
            ],
        )
        sched._pre_schedule(snap)
        packed = sched._packing_snapshot(snap)
        assert {st.instance_id for st in packed.instances} == {
            healthy.instance_id
        }
        # Recovery report restores visibility.
        sched.observe(
            (
                StragglerReport(
                    instance_id=degraded.instance_id,
                    time_s=200.0,
                    slowdown=1.0,
                ),
            )
        )
        assert sched._packing_snapshot(snap) is snap

    def test_drain_disabled_keeps_stragglers_visible(self):
        sched = self._scheduler(drain_stragglers=False)
        degraded = fresh_instance(ec2_catalog()[0])
        sched.observe(
            (
                StragglerReport(
                    instance_id=degraded.instance_id, time_s=1.0, slowdown=0.5
                ),
            )
        )
        snap = _snapshot(
            instances=[InstanceState(instance=degraded, task_ids=frozenset())]
        )
        assert sched._packing_snapshot(snap) is snap

    def test_policy_config_validated(self):
        with pytest.raises(ValueError):
            FailureAwareConfig(strike_urgency=0.5)
        with pytest.raises(ValueError):
            FailureAwareConfig(strike_urgency=8.0, max_urgency=4.0)

    def test_end_to_end_reacts_to_failures(self, catalog):
        """Under a hostile regime the policy actually engages: it sees
        failures, builds hazard estimates, and charges urgency."""

        class _Probe(FailureAwareEvaScheduler):
            engaged = False

            def _pre_schedule(self, snapshot):
                super()._pre_schedule(snapshot)
                if self.last_urgency:
                    _Probe.engaged = True

        sched = _Probe(ec2_catalog())
        result = run_simulation(
            _trace(num_jobs=14, seed=9),
            sched,
            failures=FailureConfig(
                enabled=True,
                crash_rate_per_hour=0.8,
                domain_shock_rate_per_hour=0.2,
                seed=9,
            ),
            validate=True,
        )
        assert result.instance_failures > 0
        assert sched._total_failures == result.instance_failures
        assert _Probe.engaged, "urgency never charged despite failures"


# ---------------------------------------------------------------------------
# Fingerprint coverage
# ---------------------------------------------------------------------------


class TestFailureFingerprint:
    def _scenario(self, failures):
        return Scenario(
            scheduler="eva",
            trace=TraceSpec.make("synthetic", num_jobs=4, seed=0),
            failures=failures,
        )

    def test_every_knob_changes_the_fingerprint(self):
        base = FailureConfig(
            enabled=True,
            crash_rate_per_hour=0.2,
            domain_shock_rate_per_hour=0.1,
            straggler_rate_per_hour=0.3,
            retry=RetryPolicy(checkpoint_interval_s=900.0),
            seed=1,
        )
        from dataclasses import replace

        variants = [
            None,
            replace(base, crash_rate_per_hour=0.25),
            replace(base, domain_shock_rate_per_hour=0.15),
            replace(base, straggler_rate_per_hour=0.35),
            replace(base, num_domains=7),
            replace(base, straggler_slowdown=(0.2, 0.6)),
            replace(base, straggler_duration_s=1234.0),
            replace(base, seed=2),
            replace(base, retry=RetryPolicy(backoff_base_s=120.0)),
            replace(base, retry=RetryPolicy(checkpoint_interval_s=600.0)),
            replace(base, retry=RetryPolicy(checkpoint_overhead=0.05)),
        ]
        prints = {self._scenario(base).fingerprint()}
        for variant in variants:
            fp = self._scenario(variant).fingerprint()
            assert fp not in prints, f"knob not covered: {variant}"
            prints.add(fp)

    def test_fingerprint_stable_across_hash_seeds(self):
        """Same regression harness as the simulator hash-seed test: the
        failure-bearing fingerprint must be process-invariant (it keys
        the persistent result store)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = Path(repro.__file__).resolve().parents[1]
        script = (
            "from repro.sim.batch import Scenario, TraceSpec\n"
            "from repro.sim.simulator import FailureConfig, RetryPolicy\n"
            "s = Scenario(scheduler='eva',\n"
            "             trace=TraceSpec.make('synthetic', num_jobs=4, seed=0),\n"
            "             failures=FailureConfig(enabled=True,\n"
            "                 crash_rate_per_hour=0.2,\n"
            "                 domain_shock_rate_per_hour=0.1,\n"
            "                 retry=RetryPolicy(checkpoint_overhead=0.02),\n"
            "                 seed=3))\n"
            "print(s.fingerprint())\n"
        )
        prints = set()
        for hash_seed in ("0", "1"):
            env = {**os.environ, "PYTHONHASHSEED": hash_seed}
            env["PYTHONPATH"] = (
                str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            prints.add(proc.stdout.strip())
        assert len(prints) == 1, f"hash-seed-dependent fingerprint: {prints}"


# ---------------------------------------------------------------------------
# Derived metrics
# ---------------------------------------------------------------------------


class TestDerivedMetrics:
    def test_goodput_accounts_lost_work(self, catalog):
        result = run_simulation(
            _trace(seed=10),
            make_scheduler("eva", catalog),
            failures=_crash_config(),
            validate=True,
        )
        assert result.work_lost_h > 0
        gross = result.total_work_hours + result.work_lost_h
        assert result.goodput_fraction == pytest.approx(
            result.total_work_hours / gross
        )
        assert not math.isnan(result.mean_mttr_s())

    def test_fault_free_run_reports_clean_reliability(self, catalog):
        result = run_simulation(_trace(seed=11), make_scheduler("eva", catalog))
        assert result.instance_failures == 0
        assert result.task_restarts == 0
        assert result.work_lost_h == 0.0
        assert result.goodput_fraction == 1.0
        assert result.mean_mttr_s() == 0.0
        assert result.failure_outcomes == ()
        assert result.repair_outcomes == ()
