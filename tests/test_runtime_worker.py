"""Unit tests for the per-instance worker."""

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.cluster.instance import fresh_instance
from repro.interference.model import InterferenceModel, no_interference_model
from repro.runtime.container import GlobalStorage
from repro.runtime.rpc import RpcBus
from repro.runtime.worker import Worker


def _worker(interference=None, storage=None):
    return Worker(
        instance=fresh_instance(ec2_catalog()[2]),
        storage=storage or GlobalStorage(),
        interference=interference or no_interference_model(),
    )


class TestTaskHosting:
    def test_launch_and_progress(self):
        w = _worker()
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        w.advance(100.0)
        assert w.iterations_of("t") == pytest.approx(100.0)

    def test_duplicate_launch_rejected(self):
        w = _worker()
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        with pytest.raises(ValueError):
            w.launch_task(task_id="t", workload="GCN", image="i", command="c")

    def test_interference_slows_progress(self):
        w = _worker(interference=InterferenceModel())
        w.launch_task(task_id="a", workload="GCN", image="i", command="c")
        w.launch_task(task_id="b", workload="A3C", image="i", command="c")
        w.advance(100.0)
        # GCN next to A3C runs at 0.65 (Figure 1).
        assert w.iterations_of("a") == pytest.approx(65.0)

    def test_throughput_report(self):
        w = _worker(interference=InterferenceModel())
        w.launch_task(task_id="a", workload="GCN", image="i", command="c")
        w.launch_task(task_id="b", workload="A3C", image="i", command="c")
        report = w.report_throughput()["throughputs"]
        assert report["a"] == pytest.approx(0.65)
        assert report["b"] == pytest.approx(0.94)


class TestMigrationFlow:
    def test_checkpoint_restore_across_workers(self):
        storage = GlobalStorage()
        src = _worker(storage=storage)
        src.launch_task(task_id="t", workload="GCN", image="i", command="c")
        src.advance(50.0)
        src.checkpoint_task("t")
        assert storage.get("ckpt/t")["iterations"] == pytest.approx(50.0)

        dst = _worker(storage=storage)
        response = dst.launch_task(
            task_id="t", workload="GCN", image="i", command="c"
        )
        assert response["restored"] is True
        dst.advance(25.0)
        assert dst.iterations_of("t") == pytest.approx(75.0)

    def test_checkpoint_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            _worker().checkpoint_task("ghost")

    def test_remove_task_clears_checkpoint(self):
        storage = GlobalStorage()
        w = _worker(storage=storage)
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        w.advance(10.0)
        w.checkpoint_task("t")
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        w.remove_task("t")
        assert storage.get("ckpt/t") is None
        assert w.remove_task("t") == {"removed": False}


class TestRpcSurface:
    def test_register_and_call_via_bus(self):
        bus = RpcBus()
        w = _worker()
        w.register(bus)
        bus.call(
            w.service_name,
            "launch_task",
            task_id="t",
            workload="GCN",
            image="i",
            command="c",
        )
        assert bus.call(w.service_name, "list_tasks")["task_ids"] == ["t"]
        w.unregister(bus)
        assert w.service_name not in bus.services()
