"""Unit tests for the per-instance worker."""

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.cloud.provider import SimulatedCloud
from repro.cluster.instance import fresh_instance
from repro.interference.model import InterferenceModel, no_interference_model
from repro.runtime.container import ContainerState, GlobalStorage
from repro.runtime.executor import Executor
from repro.runtime.provisioner import Provisioner
from repro.runtime.rpc import RpcBus
from repro.runtime.worker import Worker
from repro.workloads.synthetic import synthetic_trace


def _worker(interference=None, storage=None):
    return Worker(
        instance=fresh_instance(ec2_catalog()[2]),
        storage=storage or GlobalStorage(),
        interference=interference or no_interference_model(),
    )


class TestTaskHosting:
    def test_launch_and_progress(self):
        w = _worker()
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        w.advance(100.0)
        assert w.iterations_of("t") == pytest.approx(100.0)

    def test_duplicate_launch_rejected(self):
        w = _worker()
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        with pytest.raises(ValueError):
            w.launch_task(task_id="t", workload="GCN", image="i", command="c")

    def test_interference_slows_progress(self):
        w = _worker(interference=InterferenceModel())
        w.launch_task(task_id="a", workload="GCN", image="i", command="c")
        w.launch_task(task_id="b", workload="A3C", image="i", command="c")
        w.advance(100.0)
        # GCN next to A3C runs at 0.65 (Figure 1).
        assert w.iterations_of("a") == pytest.approx(65.0)

    def test_throughput_report(self):
        w = _worker(interference=InterferenceModel())
        w.launch_task(task_id="a", workload="GCN", image="i", command="c")
        w.launch_task(task_id="b", workload="A3C", image="i", command="c")
        report = w.report_throughput()["throughputs"]
        assert report["a"] == pytest.approx(0.65)
        assert report["b"] == pytest.approx(0.94)


class TestMigrationFlow:
    def test_checkpoint_restore_across_workers(self):
        storage = GlobalStorage()
        src = _worker(storage=storage)
        src.launch_task(task_id="t", workload="GCN", image="i", command="c")
        src.advance(50.0)
        src.checkpoint_task("t")
        assert storage.get("ckpt/t")["iterations"] == pytest.approx(50.0)

        dst = _worker(storage=storage)
        response = dst.launch_task(
            task_id="t", workload="GCN", image="i", command="c"
        )
        assert response["restored"] is True
        dst.advance(25.0)
        assert dst.iterations_of("t") == pytest.approx(75.0)

    def test_checkpoint_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            _worker().checkpoint_task("ghost")

    def test_remove_task_clears_checkpoint(self):
        storage = GlobalStorage()
        w = _worker(storage=storage)
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        w.advance(10.0)
        w.checkpoint_task("t")
        w.launch_task(task_id="t", workload="GCN", image="i", command="c")
        w.remove_task("t")
        assert storage.get("ckpt/t") is None
        assert w.remove_task("t") == {"removed": False}


class TestFailureRecovery:
    """The checkpoint/restore loop the fault-injection layer leans on:
    a killed worker forfeits exactly the progress made since the last
    checkpoint — never more, never less."""

    def test_kill_loses_exactly_uncheckpointed_iterations(self):
        storage = GlobalStorage()
        doomed = _worker(storage=storage)
        doomed.launch_task(task_id="t", workload="GCN", image="i", command="c")
        doomed.advance(50.0)
        doomed.checkpoint_task("t")
        doomed.launch_task(task_id="t", workload="GCN", image="i", command="c")
        doomed.advance(30.0)  # 80 iterations live, 50 durable
        # The instance dies: the worker is simply abandoned — no
        # checkpoint_task runs, so the 30 post-checkpoint iterations
        # exist nowhere but in the dead worker's memory.
        del doomed
        assert storage.get("ckpt/t")["iterations"] == pytest.approx(50.0)

        replacement = _worker(storage=storage)
        response = replacement.launch_task(
            task_id="t", workload="GCN", image="i", command="c"
        )
        assert response["restored"] is True
        assert replacement.iterations_of("t") == pytest.approx(50.0)
        assert replacement._tasks["t"].container.restore_count == 1

    def test_kill_before_first_checkpoint_restarts_from_zero(self):
        storage = GlobalStorage()
        doomed = _worker(storage=storage)
        doomed.launch_task(task_id="t", workload="GCN", image="i", command="c")
        doomed.advance(99.0)
        del doomed
        replacement = _worker(storage=storage)
        response = replacement.launch_task(
            task_id="t", workload="GCN", image="i", command="c"
        )
        assert response["restored"] is False
        assert replacement.iterations_of("t") == 0.0

    def test_restore_counts_accumulate_across_incarnations(self):
        storage = GlobalStorage()
        iterations = 0.0
        for incarnation in range(3):
            w = _worker(storage=storage)
            w.launch_task(task_id="t", workload="GCN", image="i", command="c")
            assert w.iterations_of("t") == pytest.approx(iterations)
            w.advance(10.0)
            iterations += 10.0
            w.checkpoint_task("t")
        assert storage.get("ckpt/t")["iterations"] == pytest.approx(30.0)


class TestExecutorUnassignLoop:
    """Executor semantics under the retry loop: unassign is
    checkpoint-then-teardown, and a later placement anywhere restores."""

    def _cluster(self):
        bus = RpcBus()
        storage = GlobalStorage()
        provisioner = Provisioner(
            cloud=SimulatedCloud(),
            bus=bus,
            storage=storage,
            interference=no_interference_model(),
        )
        ids = []
        for _ in range(2):
            receipt = provisioner.launch(
                fresh_instance(ec2_catalog()[2]), now_s=0.0
            )
            ids.append(receipt.instance.instance_id)
        return Executor(bus=bus, provisioner=provisioner), provisioner, ids

    def _task(self):
        job = next(iter(synthetic_trace(1, seed=0, name="exec-loop")))
        return job.tasks[0]

    def test_unassign_is_checkpoint_then_teardown(self):
        executor, provisioner, (a, _) = self._cluster()
        task = self._task()
        executor.place_task(task, a)
        worker = provisioner.worker_of(a)
        worker.advance(40.0)
        executor.unassign_task(task, a)
        assert worker.hosted_task_ids() == []
        assert provisioner.storage.get(f"ckpt/{task.task_id}")[
            "iterations"
        ] == pytest.approx(40.0)
        assert executor.stats.unassignments == 1

    def test_replacement_placement_resumes_from_checkpoint(self):
        executor, provisioner, (a, b) = self._cluster()
        task = self._task()
        executor.place_task(task, a)
        provisioner.worker_of(a).advance(40.0)
        executor.unassign_task(task, a)
        # The queue drains onto the second instance; nothing re-runs.
        executor.place_task(task, b)
        dst = provisioner.worker_of(b)
        assert dst.iterations_of(task.task_id) == pytest.approx(40.0)
        dst.advance(5.0)
        assert dst.iterations_of(task.task_id) == pytest.approx(45.0)
        container = dst._tasks[task.task_id].container
        assert container.state is ContainerState.RUNNING
        assert container.restore_count == 1

    def test_crashed_instance_terminates_clean_after_unassign(self):
        executor, provisioner, (a, _) = self._cluster()
        task = self._task()
        executor.place_task(task, a)
        executor.unassign_task(task, a)
        # Teardown left no live tasks, so the provisioner may reclaim it.
        provisioner.terminate(a, now_s=10.0)
        assert a not in provisioner.active_instance_ids()


class TestRpcSurface:
    def test_register_and_call_via_bus(self):
        bus = RpcBus()
        w = _worker()
        w.register(bus)
        bus.call(
            w.service_name,
            "launch_task",
            task_id="t",
            workload="GCN",
            image="i",
            command="c",
        )
        assert bus.call(w.service_name, "list_tasks")["task_ids"] == ["t"]
        w.unregister(bus)
        assert w.service_name not in bus.services()
