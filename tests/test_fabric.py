"""Fault-injection harness for the distributed sweep fabric.

Everything here drives the real production pieces — `WorkQueue`,
`InMemoryFabric`, `FabricWorker`, `FabricDispatcher`, and the HTTP
server/client pair — and asserts the fabric's one non-negotiable
contract: a sweep through the fabric yields **byte-identical**
`SimulationResult`s to serial `run_batch`, no matter how many workers
run, which ones die mid-lease, or how many duplicate executions race.

Determinism discipline: worker death is injected by taking a lease and
abandoning it (exactly what a SIGKILLed worker leaves behind), and time
is a fake monotonic clock injected into the `WorkQueue`, so lease
expiry happens when the test says so — no sleeps, no flaky timing.
"""

import pickle
import random
import threading
import time

import pytest

from repro.sim.batch import Scenario, TraceSpec, _execute_scenario, run_batch
from repro.sim.fabric import (
    FabricDispatcher,
    FabricServer,
    FabricWorker,
    HTTPFabricClient,
    HTTPKVMap,
    InMemoryFabric,
    KVBackend,
    LocalFSBackend,
    TieredStore,
    WorkQueue,
)
from repro.sim.results import ResultStore
from test_sim_invariants import _fuzz_scenario


class FakeClock:
    """Injectable monotonic clock: time moves only when the test says."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _scenarios(n: int = 3) -> list[Scenario]:
    return [
        Scenario(
            scheduler="eva",
            trace=TraceSpec.make("small-physical", seed=seed),
            name=f"Eva/s{seed}",
            seed=seed,
        )
        for seed in range(n)
    ]


def _wait_until(predicate, timeout_s: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)


def _result_bytes(outcome) -> bytes:
    return pickle.dumps(outcome.result)


# ---------------------------------------------------------------------------
# WorkQueue unit tests (fake clock, no threads)
# ---------------------------------------------------------------------------


class TestWorkQueue:
    def make(self, **kwargs) -> tuple[WorkQueue, FakeClock]:
        clock = FakeClock()
        kwargs.setdefault("lease_duration_s", 10.0)
        return WorkQueue(clock=clock, **kwargs), clock

    def test_fifo_over_submission_order(self):
        queue, _ = self.make()
        queue.submit_many([("t/a", b"1"), ("t/b", b"2"), ("t/c", b"3")])
        assert [queue.lease("w").key for _ in range(3)] == ["t/a", "t/b", "t/c"]
        assert queue.lease("w") is None

    def test_submit_is_idempotent(self):
        queue, _ = self.make()
        assert queue.submit("t/a", b"1") is True
        assert queue.submit("t/a", b"1") is False
        assert queue.submit_many([("t/a", b"1"), ("t/b", b"2")]) == 1

    def test_expired_lease_is_restolen(self):
        queue, clock = self.make(lease_duration_s=10.0)
        queue.submit("t/a", b"1")
        first = queue.lease("victim")
        assert queue.lease("other") is None  # leased, nothing to steal
        clock.advance(10.1)
        second = queue.lease("thief")
        assert second is not None and second.key == "t/a"
        assert second.attempt == 2
        item = queue.item("t/a")
        assert f"expired:{first.lease_id}:victim" in item.history
        # The victim's lease id is now stale everywhere.
        assert queue.heartbeat(first.lease_id) is False
        assert queue.complete(first.lease_id) is False
        assert queue.fail(first.lease_id) is False

    def test_heartbeat_extends_the_deadline(self):
        queue, clock = self.make(lease_duration_s=10.0)
        queue.submit("t/a", b"1")
        grant = queue.lease("w")
        for _ in range(5):
            clock.advance(9.0)
            assert queue.heartbeat(grant.lease_id) is True
        # 45 fake seconds of work later the lease is still ours.
        assert queue.complete(grant.lease_id) is True
        assert queue.item("t/a").state == "done"

    def test_repeated_expiry_parks_the_item_as_failed(self):
        queue, clock = self.make(lease_duration_s=1.0, max_attempts=3)
        queue.submit("t/a", b"1")
        for attempt in (1, 2, 3):
            grant = queue.lease(f"w{attempt}")
            assert grant.attempt == attempt
            clock.advance(1.5)
        assert queue.lease("w4") is None
        item = queue.item("t/a")
        assert item.state == "failed"
        assert "expired 3 time(s)" in item.error
        assert queue.poll(["t/a"])["failed"] == {
            "t/a": "lease expired 3 time(s) without completion"
        }

    def test_fail_requeues_then_parks_and_resubmit_rearms(self):
        queue, _ = self.make(max_attempts=2)
        queue.submit("t/a", b"1")
        assert queue.fail(queue.lease("w").lease_id, "boom 1") is True
        assert queue.item("t/a").state == "queued"
        assert queue.fail(queue.lease("w").lease_id, "boom 2") is True
        assert queue.item("t/a").state == "failed"
        assert queue.poll(["t/a"])["failed"] == {"t/a": "boom 2"}
        # A fresh submission re-arms the parked item with fresh attempts.
        assert queue.submit("t/a", b"1") is True
        assert queue.item("t/a").attempts == 0
        assert queue.lease("w").attempt == 1

    def test_mark_done_resolves_regardless_of_lease_state(self):
        queue, _ = self.make()
        queue.submit_many([("t/a", b"1"), ("t/b", b"2")])
        queue.lease("w")  # t/a leased
        assert queue.mark_done("t/a") is True  # result arrived out-of-band
        assert queue.mark_done("t/a") is False  # already done
        assert queue.mark_done("t/b") is True  # still queued: also fine
        assert queue.mark_done("t/zzz") is False  # unknown key
        assert queue.lease("w") is None
        assert queue.poll(["t/a", "t/b"]) == {
            "done": ["t/a", "t/b"],
            "failed": {},
            "pending": 0,
        }

    def test_status_and_outstanding(self):
        queue, clock = self.make(lease_duration_s=5.0)
        queue.submit_many([("t/a", b"1"), ("t/b", b"2"), ("t/c", b"3")])
        queue.complete(queue.lease("w").lease_id)
        queue.lease("w")
        assert queue.status() == {"queued": 1, "leased": 1, "done": 1, "failed": 0}
        assert queue.outstanding() == 2
        clock.advance(6.0)  # the leased item expires back into the queue
        assert queue.status() == {"queued": 2, "leased": 0, "done": 1, "failed": 0}

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="lease_duration_s"):
            WorkQueue(lease_duration_s=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            WorkQueue(max_attempts=0)


# ---------------------------------------------------------------------------
# Multi-worker sweeps: byte-identity with injected faults
# ---------------------------------------------------------------------------


def _start_workers(fabric, backend, n, stop, **worker_kwargs):
    workers = [
        FabricWorker(
            fabric,
            ResultStore(backend=backend),
            worker_id=f"w{i}",
            poll_interval_s=0.005,
            **worker_kwargs,
        )
        for i in range(n)
    ]
    threads = [
        threading.Thread(target=w.run, kwargs={"stop": stop}, daemon=True)
        for w in workers
    ]
    for t in threads:
        t.start()
    return workers, threads


class TestFabricSweeps:
    def test_multiworker_sweep_is_byte_identical_to_serial(self):
        scenarios = _scenarios(4)
        serial = run_batch(scenarios)

        fabric = InMemoryFabric(lease_duration_s=60.0)
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=120)
        store = dispatcher.make_store()
        stop = threading.Event()
        workers, threads = _start_workers(fabric, fabric.kv, 3, stop)
        try:
            outcomes = dispatcher.run_batch(scenarios, store=store)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)

        for s_out, f_out in zip(serial, outcomes):
            assert _result_bytes(s_out) == _result_bytes(f_out), s_out.scenario.name
            assert f_out.scenario == s_out.scenario
        # Conservation: each scenario simulated exactly once, fleet-wide.
        assert sum(w.executed for w in workers) == len(scenarios)
        assert fabric.queue.status()["done"] == len(scenarios)
        # Cold pass through the dispatcher counts one miss per scenario.
        assert store.stats.misses == len(scenarios)

        # Warm pass needs no workers at all: every cell is a cache hit.
        again = dispatcher.run_batch(scenarios, store=store)
        assert [_result_bytes(o) for o in again] == [
            _result_bytes(o) for o in serial
        ]
        assert store.stats.hits == len(scenarios)

    def test_killed_worker_lease_expires_and_is_restolen(self):
        """The headline fault injection: a worker takes a lease and dies.

        The dispatcher blocks on the sweep while a 'victim' lease is
        abandoned (a SIGKILLed worker leaves exactly this state behind);
        advancing the fake clock expires the lease, the surviving worker
        re-steals the scenario, and the final result set is complete and
        byte-identical to a serial run.
        """
        scenarios = _scenarios(3)
        serial = run_batch(scenarios)

        clock = FakeClock()
        fabric = InMemoryFabric(lease_duration_s=50.0, clock=clock)
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=120)
        driver_store = dispatcher.make_store()

        holder: dict = {}

        def drive() -> None:
            holder["outcomes"] = dispatcher.run_batch(
                scenarios, store=driver_store
            )

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        _wait_until(
            lambda: fabric.queue.outstanding() == len(scenarios),
            what="the driver to submit its work items",
        )

        # The victim leases the oldest scenario ... and dies silently.
        victim = fabric.lease("victim")
        assert victim is not None

        stop = threading.Event()
        # Huge heartbeat interval: the live worker never beats, so only
        # the fake clock (which we alone advance) decides expiry.
        workers, threads = _start_workers(
            fabric, fabric.kv, 1, stop, heartbeat_interval_s=1000.0
        )
        try:
            # The survivor drains everything except the victim's lease.
            _wait_until(
                lambda: fabric.queue.status()["done"] == len(scenarios) - 1,
                what="the surviving worker to drain the queue",
            )
            assert fabric.poll([victim.key])["pending"] == 1
            assert driver.is_alive()  # sweep incomplete: driver still waits

            clock.advance(51.0)  # the victim's lease expires ...
            driver.join(timeout=60)  # ... and the sweep completes
            assert not driver.is_alive()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)

        item = fabric.queue.item(victim.key)
        assert item.state == "done"
        assert item.attempts == 2  # victim's lease + the re-steal
        assert f"expired:{victim.lease_id}:victim" in item.history
        # The victim's stale lease id resolves nothing after the fact.
        assert fabric.complete(victim.lease_id) is False

        outcomes = holder["outcomes"]
        assert [_result_bytes(o) for o in outcomes] == [
            _result_bytes(o) for o in serial
        ]
        [survivor] = workers
        assert survivor.executed == len(scenarios)  # incl. the re-steal

    def test_duplicate_execution_race_first_write_wins_equal_bytes(self):
        """Two workers execute the same scenario; the store keeps one entry.

        Worker 1 finishes computing but stalls before publishing (a GC
        pause, a slow network); its lease expires and worker 2 re-steals,
        executes, and publishes.  When worker 1 finally publishes, its
        put-if-absent loses — and because results are deterministic, the
        loser's bytes equal the winner's, so nothing was lost.
        """
        clock = FakeClock()
        fabric = InMemoryFabric(lease_duration_s=5.0, clock=clock)
        backend = fabric.kv
        [scenario] = _scenarios(1)
        driver_store = ResultStore(backend=backend)
        key = driver_store.key_for_scenario(scenario)
        fabric.submit_many([(key, pickle.dumps(scenario))])

        computed = threading.Event()
        release = threading.Event()
        outcomes_seen = []

        def stalling_executor(s):
            outcome = _execute_scenario(s)
            outcomes_seen.append(outcome)
            computed.set()
            assert release.wait(60)
            return outcome

        w1 = FabricWorker(
            fabric,
            ResultStore(backend=backend),
            worker_id="w1",
            executor=stalling_executor,
            heartbeat_interval_s=1000.0,  # never beats: expiry is ours
        )
        g1 = fabric.lease("w1")
        t1 = threading.Thread(target=w1.run_one, args=(g1,), daemon=True)
        t1.start()
        assert computed.wait(60)  # w1 has the result in hand, unpublished

        clock.advance(6.0)  # w1's lease expires mid-flight
        w2 = FabricWorker(
            fabric,
            ResultStore(backend=backend),
            worker_id="w2",
            heartbeat_interval_s=1000.0,
        )
        g2 = fabric.lease("w2")
        assert g2 is not None and g2.key == key and g2.attempt == 2
        assert w2.run_one(g2) is True
        winner_bytes = backend.get(key)
        assert winner_bytes is not None

        release.set()  # w1 wakes up and publishes late
        t1.join(timeout=60)
        assert not t1.is_alive()

        # First-write-wins: the stored entry is untouched by the loser.
        assert backend.get(key) == winner_bytes
        # Both executions really happened and agreed byte-for-byte.
        assert w1.executed == 1 and w2.executed == 1
        [w1_outcome] = outcomes_seen
        stored = driver_store.fetch_key(key)
        assert pickle.dumps(stored.result) == pickle.dumps(w1_outcome.result)
        # The loser's stale lease could not complete; the winner's did.
        assert w1.completed == 0 and w2.completed == 1
        assert fabric.queue.item(key).state == "done"

    def test_restolen_item_with_published_result_skips_execution(self):
        """Fast path: a re-stolen item whose result already landed in the
        shared store completes without re-simulating."""
        fabric = InMemoryFabric(lease_duration_s=60.0)
        backend = fabric.kv
        [scenario] = _scenarios(1)
        store = ResultStore(backend=backend)
        key = store.key_for_scenario(scenario)
        # The result is already published (late worker, foreign driver).
        store.put(scenario, _execute_scenario(scenario))
        fabric.submit_many([(key, pickle.dumps(scenario))])
        worker = FabricWorker(fabric, ResultStore(backend=backend))
        assert worker.run_one(fabric.lease("w")) is True
        assert worker.executed == 0 and worker.completed == 1

    def test_permanent_failure_surfaces_scenario_labels(self):
        fabric = InMemoryFabric(lease_duration_s=60.0, max_attempts=1)
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=60)
        store = dispatcher.make_store()

        def explode(scenario):
            raise ValueError("injected simulation fault")

        stop = threading.Event()
        _, threads = _start_workers(fabric, fabric.kv, 1, stop, executor=explode)
        try:
            with pytest.raises(
                RuntimeError,
                match=r"permanently failed.*Eva/s0.*injected simulation fault",
            ):
                dispatcher.run_batch(_scenarios(1), store=store)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)

    def test_worker_detects_code_token_skew(self):
        fabric = InMemoryFabric()
        [scenario] = _scenarios(1)
        # The "driver" submitted under a different code token than the
        # worker's store computes — i.e. mismatched deployments.
        foreign_key = f"{'f' * 16}/{scenario.fingerprint()}"
        fabric.submit_many([(foreign_key, pickle.dumps(scenario))])
        worker = FabricWorker(fabric, ResultStore(backend=fabric.kv))
        assert worker.run_one(fabric.lease("w")) is False
        item = fabric.queue.item(foreign_key)
        assert "code-token skew" in item.error

    def test_uncacheable_scenarios_run_locally(self):
        import numpy as np

        from repro.cloud.delays import DelayModel

        fabric = InMemoryFabric()
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=60)
        scenario = Scenario(
            scheduler="eva",
            trace=TraceSpec.make("small-physical", seed=0),
            delay_model=DelayModel(stochastic=True, rng=np.random.default_rng(0)),
        )
        # No workers attached: the uncacheable cell must not need any.
        [outcome] = dispatcher.run_batch([scenario])
        assert outcome.result.num_jobs > 0
        assert fabric.queue.status() == {
            "queued": 0,
            "leased": 0,
            "done": 0,
            "failed": 0,
        }

    def test_duplicate_display_names_collapse_to_one_execution(self):
        base = _scenarios(1)[0]
        scenarios = [
            Scenario(
                scheduler=base.scheduler,
                trace=base.trace,
                name=name,
                seed=base.seed,
            )
            for name in ("First", "Second")
        ]
        fabric = InMemoryFabric()
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=60)
        store = dispatcher.make_store()
        stop = threading.Event()
        workers, threads = _start_workers(fabric, fabric.kv, 2, stop)
        try:
            outcomes = dispatcher.run_batch(scenarios, store=store)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert sum(w.executed for w in workers) == 1
        assert [o.scenario.name for o in outcomes] == ["First", "Second"]
        assert _result_bytes(outcomes[0]) == _result_bytes(outcomes[1])

    def test_dispatcher_timeout_names_the_stragglers(self):
        fabric = InMemoryFabric()  # no workers will ever attach
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=0.05)
        with pytest.raises(TimeoutError, match=r"Eva/s0"):
            dispatcher.run_batch(_scenarios(1))


# ---------------------------------------------------------------------------
# Seeded fuzz: random worker counts, kill schedules, and fabric knobs
# ---------------------------------------------------------------------------


class TestFuzzedFabric:
    @pytest.mark.parametrize("fuzz_seed", [1, 2, 3])
    def test_fuzzed_sweep_conserves_and_matches_serial(self, fuzz_seed, tmp_path):
        """Randomized fleet shapes never change a single result byte.

        Each case draws worker count, lease duration, heartbeat
        interval, backend kind, and a kill schedule (how many leases get
        abandoned before the fleet starts) from a seeded RNG, sweeps
        fuzzed scenarios (imported from the simulator's own fuzz
        harness), and asserts conservation — every scenario done exactly
        once, nothing failed — plus byte-identity with serial run_batch.
        """
        rng = random.Random(1000 + fuzz_seed)
        scenarios = [
            _fuzz_scenario(rng.randrange(10_000)) for _ in range(rng.randint(2, 3))
        ]
        serial = run_batch(scenarios)

        n_workers = rng.randint(1, 3)
        lease_s = rng.uniform(20.0, 90.0)
        heartbeat_s = lease_s / rng.choice([3, 4, 5])
        backend_kind = rng.choice(["kv", "tiered", "localfs"])
        n_kills = rng.randint(0, 2)

        clock = FakeClock()
        fabric = InMemoryFabric(
            lease_duration_s=lease_s, max_attempts=5, clock=clock
        )
        if backend_kind == "kv":
            backend = fabric.kv
        elif backend_kind == "localfs":
            backend = LocalFSBackend(tmp_path / "shared")
        else:
            backend = TieredStore(
                LocalFSBackend(tmp_path / "tier"), KVBackend(fabric.kv.kv)
            )
        dispatcher = FabricDispatcher(fabric, poll_interval_s=0.01, timeout_s=300)
        driver_store = ResultStore(backend=backend)

        holder: dict = {}
        driver = threading.Thread(
            target=lambda: holder.update(
                outcomes=dispatcher.run_batch(scenarios, store=driver_store)
            ),
            daemon=True,
        )
        driver.start()
        _wait_until(
            lambda: fabric.queue.outstanding() > 0 or not driver.is_alive(),
            what="work-item submission",
        )

        # Kill schedule: victims lease work and die without a heartbeat.
        victims = []
        for _ in range(n_kills):
            grant = fabric.lease(f"victim{len(victims)}")
            if grant is not None:
                victims.append(grant)
        if victims:
            clock.advance(lease_s * 1.5)  # every victim's lease expires

        stop = threading.Event()
        workers, threads = _start_workers(
            fabric,
            backend,
            n_workers,
            stop,
            heartbeat_interval_s=heartbeat_s,
        )
        try:
            driver.join(timeout=300)
            assert not driver.is_alive(), "fuzzed sweep deadlocked"
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)

        outcomes = holder["outcomes"]
        # Conservation: one outcome per scenario, all done, none failed,
        # every distinct cell executed exactly once across the fleet.
        assert len(outcomes) == len(scenarios)
        status = fabric.queue.status()
        assert status["failed"] == 0 and status["queued"] == 0
        distinct = {driver_store.key_for_scenario(s) for s in scenarios}
        assert sum(w.executed for w in workers) == len(distinct)
        for victim in victims:
            assert fabric.queue.item(victim.key).state == "done"
            assert fabric.complete(victim.lease_id) is False  # stale

        # Byte-identity with the serial sweep, scenario by scenario.
        for s_out, f_out in zip(serial, outcomes):
            assert _result_bytes(s_out) == _result_bytes(f_out), (
                f"fuzz_seed={fuzz_seed} scenario={s_out.scenario.name} "
                f"workers={n_workers} kills={n_kills} backend={backend_kind}"
            )


# ---------------------------------------------------------------------------
# HTTP transport: server/client round-trips and an end-to-end sweep
# ---------------------------------------------------------------------------


class TestHTTPFabric:
    @pytest.fixture()
    def server(self):
        with FabricServer(port=0, lease_duration_s=60.0) as srv:
            yield srv

    def test_kv_map_speaks_the_dict_protocol(self, server):
        kv = HTTPKVMap(server.url)
        assert "tok/a" not in kv
        with pytest.raises(KeyError):
            kv["tok/a"]
        assert kv.put_if_absent("tok/a", b"first") is True
        assert kv.put_if_absent("tok/a", b"second") is False
        assert kv["tok/a"] == b"first"
        assert "tok/a" in kv
        kv["tok/a"] = b"replaced"  # __setitem__ is the unconditional write
        assert kv["tok/a"] == b"replaced"
        kv["tok/b"] = b"x"
        assert list(kv.keys()) == ["tok/a", "tok/b"]
        assert list(kv.keys("tok/a")) == ["tok/a"]

    def test_queue_round_trip_over_http(self, server):
        client = HTTPFabricClient(server.url)
        assert client.submit_many([("t/a", b"payload-bytes")]) == 1
        grant = client.lease("w1")
        assert grant.key == "t/a" and grant.payload == b"payload-bytes"
        assert grant.attempt == 1
        assert client.heartbeat(grant.lease_id) is True
        assert client.complete(grant.lease_id) is True
        assert client.complete(grant.lease_id) is False  # already resolved
        assert client.poll(["t/a"]) == {"done": ["t/a"], "failed": {}, "pending": 0}
        assert client.lease("w1") is None
        status = client.status()
        assert status["done"] == 1 and status["kv_entries"] == 0

    def test_fail_and_mark_done_over_http(self, server):
        client = HTTPFabricClient(server.url)
        client.submit_many([("t/a", b"1"), ("t/b", b"2")])
        grant = client.lease("w1")
        assert client.fail(grant.lease_id, "boom") is True
        assert client.mark_done("t/b") is True
        poll = client.poll(["t/a", "t/b"])
        assert poll["done"] == ["t/b"] and poll["pending"] == 1

    def test_unknown_endpoints_return_404(self, server):
        import json
        import urllib.error
        import urllib.request

        for method, path in (("GET", "/nope"), ("POST", "/nope"), ("PUT", "/nope")):
            req = urllib.request.Request(
                server.url + path,
                data=b"{}" if method != "GET" else None,
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 404
            assert "unknown endpoint" in json.loads(err.value.read())["error"]

    def test_http_sweep_is_byte_identical_to_serial(self, server):
        scenarios = _scenarios(2)
        serial = run_batch(scenarios)

        client = HTTPFabricClient(server.url)
        dispatcher = FabricDispatcher(server.url, poll_interval_s=0.02, timeout_s=120)
        store = dispatcher.make_store()
        worker_backend = KVBackend(client.kv_map())
        stop = threading.Event()
        workers, threads = _start_workers(client, worker_backend, 2, stop)
        try:
            outcomes = dispatcher.run_batch(scenarios, store=store)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)

        assert [_result_bytes(o) for o in outcomes] == [
            _result_bytes(o) for o in serial
        ]
        assert sum(w.executed for w in workers) == len(scenarios)
        # Second driver against the same server: pure cache, no workers.
        second = FabricDispatcher(server.url, timeout_s=60)
        warm_store = second.make_store()
        again = second.run_batch(scenarios, store=warm_store)
        assert [_result_bytes(o) for o in again] == [
            _result_bytes(o) for o in serial
        ]
        assert warm_store.stats.hits == len(scenarios)
        assert warm_store.stats.misses == 0

    def test_tiered_driver_cache_survives_a_fresh_server(self, tmp_path):
        """A driver's local tier keeps results when the fabric KV is wiped
        (server restart): the warm pass needs neither server state nor
        workers."""
        scenarios = _scenarios(2)
        with FabricServer(port=0) as first:
            dispatcher = FabricDispatcher(first.url, poll_interval_s=0.02, timeout_s=120)
            store = dispatcher.make_store(cache_dir=str(tmp_path / "cache"))
            client = HTTPFabricClient(first.url)
            stop = threading.Event()
            _, threads = _start_workers(
                client, KVBackend(client.kv_map()), 2, stop
            )
            try:
                first_pass = dispatcher.run_batch(scenarios, store=store)
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=10)

        with FabricServer(port=0) as fresh:  # empty KV: a restarted server
            dispatcher = FabricDispatcher(fresh.url, timeout_s=60)
            store = dispatcher.make_store(cache_dir=str(tmp_path / "cache"))
            warm = dispatcher.run_batch(scenarios, store=store)
            assert fresh.queue.status()["done"] == 0  # nothing re-ran
        assert [_result_bytes(o) for o in warm] == [
            _result_bytes(o) for o in first_pass
        ]
