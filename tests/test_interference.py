"""Unit tests for the Figure 1 matrix and ground-truth model."""

import pytest

from repro.interference.matrix import (
    FIGURE1_WORKLOADS,
    figure1_matrix,
    pairwise_throughput,
    resolve_profile_name,
    uniform_matrix,
)
from repro.interference.model import InterferenceModel, no_interference_model


class TestMatrix:
    def test_shape(self):
        matrix = figure1_matrix()
        assert set(matrix) == set(FIGURE1_WORKLOADS)
        for row in matrix.values():
            assert set(row) == set(FIGURE1_WORKLOADS)

    def test_published_spot_values(self):
        # Spot-check cells transcribed from Figure 1.
        assert pairwise_throughput("ResNet18", "ResNet18") == 0.93
        assert pairwise_throughput("GPT2", "ResNet18") == 0.79
        assert pairwise_throughput("GCN", "A3C") == 0.65
        assert pairwise_throughput("CycleGAN", "A3C") == 1.00
        assert pairwise_throughput("A3C", "A3C") == 0.67

    def test_asymmetry_preserved(self):
        # Figure 1 is not symmetric: ResNet18 next to GPT2 differs from
        # GPT2 next to ResNet18.
        assert pairwise_throughput("ResNet18", "GPT2") == 0.92
        assert pairwise_throughput("GPT2", "ResNet18") == 0.79

    def test_aliases(self):
        assert resolve_profile_name("ResNet18-2") == "ResNet18"
        assert resolve_profile_name("ResNet18-4") == "ResNet18"
        assert resolve_profile_name("ViT") == "ResNet18"
        assert pairwise_throughput("ViT", "GCN") == pairwise_throughput(
            "ResNet18", "GCN"
        )

    def test_unknown_workload_is_neutral(self):
        assert pairwise_throughput("mystery", "ResNet18") == 1.0

    def test_uniform_matrix(self):
        m = uniform_matrix(0.9)
        assert all(v == 0.9 for row in m.values() for v in row.values())
        with pytest.raises(ValueError):
            uniform_matrix(0.0)


class TestModel:
    def test_product_composition(self):
        model = InterferenceModel()
        solo = model.task_throughput("ResNet18", [])
        pair = model.task_throughput("ResNet18", ["GCN"])
        triple = model.task_throughput("ResNet18", ["GCN", "A3C"])
        assert solo == 1.0
        assert pair == pytest.approx(0.83)
        assert triple == pytest.approx(0.83 * 0.83)

    def test_neighbour_order_irrelevant(self):
        model = InterferenceModel()
        a = model.task_throughput("GPT2", ["ResNet18", "CycleGAN"])
        b = model.task_throughput("GPT2", ["CycleGAN", "ResNet18"])
        assert a == b

    def test_uniform_override(self):
        model = InterferenceModel(uniform_value=0.8)
        assert model.pairwise("anything", "else") == 0.8
        assert model.task_throughput("x", ["a", "b"]) == pytest.approx(0.64)

    def test_explicit_override(self):
        model = InterferenceModel(
            pairwise_override={"ResNet18": {"ResNet18": 0.5}}
        )
        assert model.pairwise("ResNet18", "ResNet18") == 0.5
        assert model.pairwise("ResNet18", "GCN") == 1.0  # absent -> neutral

    def test_job_throughput_is_straggler(self):
        model = InterferenceModel()
        assert model.job_throughput([0.9, 0.7, 1.0]) == 0.7
        assert model.job_throughput([]) == 1.0

    def test_no_interference_model(self):
        model = no_interference_model()
        assert model.task_throughput("GCN", ["A3C", "GPT2"]) == 1.0

    def test_caching_consistency(self):
        model = InterferenceModel()
        first = model.task_throughput("GCN", ["A3C"])
        second = model.task_throughput("GCN", ["A3C"])
        assert first == second
