"""Spot-market economics: price processes, billing splits, and eva-market.

Covers the market subsystem end to end:

* config validation (``MarketPool``/``MarketConfig``/``CreditModel``/
  ``MarketPolicyConfig`` reject NaN/inf and out-of-range knobs);
* the seeded price process — deterministic, quantized, clamped, and
  replayable from explicit traces or CSV files;
* byte-identity with the market unset, disabled, or fully static (the
  no-market engine path must be indistinguishable from a build without
  the subsystem — including under legacy spot);
* mid-life billing splits (hand-computed two-segment bill) and the
  price-coupled eviction rate;
* the typed observation surface (``PriceChanged``, ``PoolExhausted``)
  and the ``eva-market`` policy: repriced reservation prices, bid
  ceiling, eviction-storm fallback, exhaust penalties;
* burstable credits (``CreditModel``) degrading throughput on
  exhaustion;
* fingerprint coverage for every market knob, stable across
  ``PYTHONHASHSEED``, and serial-vs-parallel batch determinism.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import replace

import pytest

from repro.cloud.catalog import ec2_catalog
from repro.cloud.market import (
    CreditModel,
    MarketConfig,
    MarketPool,
    MarketRuntime,
    load_price_trace_csv,
)
from repro.cloud.pricing import BillingLedger, BillingRecord
from repro.cluster.instance import InstanceType
from repro.cluster.resources import ResourceVector
from repro.cluster.state import ClusterSnapshot
from repro.core import make_scheduler
from repro.core.market import MarketAwareEvaScheduler, MarketPolicyConfig
from repro.core.protocol import (
    PoolExhausted,
    PriceChanged,
    SpotEvictionNotice,
)
from repro.sim.batch import Scenario, TraceSpec, reseed, run_batch
from repro.sim.simulator import SpotConfig, run_simulation
from repro.workloads.synthetic import synthetic_trace


def _trace(num_jobs=10, seed=0, **kwargs):
    kwargs.setdefault("mean_interarrival_s", 600.0)
    kwargs.setdefault("duration_range_hours", (0.2, 1.0))
    return synthetic_trace(num_jobs, seed=seed, name=f"mkt-{seed}", **kwargs)


def _itype(family):
    return next(it for it in ec2_catalog() if it.family == family)


def _volatile_market(seed=11, **config_kwargs):
    return MarketConfig(
        enabled=True,
        seed=seed,
        pools=(
            MarketPool(name="cpu-c", families=("c7i",), volatility=0.3, step_s=1800.0),
            MarketPool(name="cpu-r", families=("r7i",), volatility=0.3, step_s=1800.0),
        ),
        **config_kwargs,
    )


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.1])
    def test_pool_rates_must_be_finite_nonnegative(self, bad):
        with pytest.raises(ValueError):
            MarketPool(name="p", volatility=bad)
        with pytest.raises(ValueError):
            MarketPool(name="p", base_multiplier=bad)
        with pytest.raises(ValueError):
            MarketPool(name="p", backlog_delay_s=bad)

    def test_pool_band_and_step_validated(self):
        with pytest.raises(ValueError):
            MarketPool(name="p", min_multiplier=2.0, max_multiplier=1.0)
        with pytest.raises(ValueError):
            MarketPool(name="p", step_s=0.0)
        with pytest.raises(ValueError):
            MarketPool(name="p", quantum=-0.05)
        with pytest.raises(ValueError):
            MarketPool(name="p", reversion=1.5)

    def test_trace_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            MarketPool(name="p", trace=((0.0, 1.0), (0.0, 2.0)))
        MarketPool(name="p", trace=((0.0, 1.0), (10.0, 2.0)))

    def test_trace_and_csv_mutually_exclusive(self):
        with pytest.raises(ValueError):
            MarketPool(name="p", trace=((0.0, 1.0),), trace_csv="x.csv")

    def test_pool_names_unique(self):
        with pytest.raises(ValueError):
            MarketConfig(
                enabled=True,
                pools=(MarketPool(name="p"), MarketPool(name="p")),
            )

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5])
    def test_eviction_coupling_finite_nonnegative(self, bad):
        with pytest.raises(ValueError):
            MarketConfig(enabled=True, eviction_coupling=bad)

    def test_credit_model_fractions(self):
        with pytest.raises(ValueError):
            CreditModel(accrual_fraction=1.0)
        with pytest.raises(ValueError):
            CreditModel(baseline_fraction=0.0)
        with pytest.raises(ValueError):
            CreditModel(initial_credit_s=-1.0)
        model = CreditModel(initial_credit_s=1800.0, accrual_fraction=0.25)
        assert model.exhaustion_horizon_s == pytest.approx(2400.0)

    def test_policy_config_validated(self):
        with pytest.raises(ValueError):
            MarketPolicyConfig(bid_ceiling=0.5)
        with pytest.raises(ValueError):
            MarketPolicyConfig(storm_threshold=0)
        with pytest.raises(ValueError):
            MarketPolicyConfig(storm_window_s=0.0)
        with pytest.raises(ValueError):
            MarketPolicyConfig(exhaust_penalty=0.9)

    def test_runtime_requires_active_config(self):
        with pytest.raises(ValueError):
            MarketRuntime(MarketConfig())


# ---------------------------------------------------------------------------
# Price process
# ---------------------------------------------------------------------------


class TestPriceProcess:
    def test_walk_is_deterministic_and_lazy(self):
        config = _volatile_market(seed=5)
        times = [0.0, 900.0, 1800.0, 5400.0, 36000.0, 3600.0]
        first = MarketRuntime(config)
        second = MarketRuntime(config)
        # Querying out of order must not change the trajectory (the walk
        # is a pure function of (seed, pool, segment), never query order).
        a = [first.multiplier_at(_itype("c7i"), t) for t in times]
        b = [second.multiplier_at(_itype("c7i"), t) for t in sorted(times)]
        b_by_time = dict(zip(sorted(times), b))
        assert a == [b_by_time[t] for t in times]

    def test_segment_zero_is_base(self):
        rt = MarketRuntime(_volatile_market(seed=5))
        assert rt.multiplier_at(_itype("c7i"), 0.0) == 1.0
        assert rt.multiplier_at(_itype("c7i"), 1799.0) == 1.0

    def test_walk_respects_band_and_quantum(self):
        pool = MarketPool(
            name="p", families=("c7i",), volatility=1.5, step_s=600.0,
            min_multiplier=0.5, max_multiplier=2.0, quantum=0.05,
        )
        rt = MarketRuntime(MarketConfig(enabled=True, pools=(pool,), seed=3))
        for k in range(200):
            mult = rt.multiplier_at(_itype("c7i"), k * 600.0)
            assert 0.5 <= mult <= 2.0
            # On-band values sit on the quantum lattice.
            if 0.5 < mult < 2.0:
                assert math.isclose(mult / 0.05, round(mult / 0.05))

    def test_static_pool_never_moves(self):
        pool = MarketPool(name="p", families=("c7i",), base_multiplier=1.3)
        rt = MarketRuntime(MarketConfig(enabled=True, pools=(pool,), seed=3))
        assert rt.next_boundary_after(0, 0.0) is None
        assert rt.multiplier_at(_itype("c7i"), 1e6) == pytest.approx(1.3)

    def test_unpooled_family_is_par(self):
        rt = MarketRuntime(_volatile_market())
        assert rt.multiplier_at(_itype("p3"), 7200.0) == 1.0

    def test_replay_trace_steps_at_breakpoints(self):
        pool = MarketPool(
            name="p", families=("c7i",),
            trace=((0.0, 1.0), (600.0, 1.5), (1200.0, 0.8)),
        )
        rt = MarketRuntime(MarketConfig(enabled=True, pools=(pool,), seed=0))
        assert rt.multiplier_at(_itype("c7i"), 0.0) == 1.0
        assert rt.multiplier_at(_itype("c7i"), 599.0) == 1.0
        assert rt.multiplier_at(_itype("c7i"), 600.0) == 1.5
        assert rt.multiplier_at(_itype("c7i"), 5000.0) == pytest.approx(0.8)
        assert rt.next_boundary_after(0, 0.0) == 600.0
        assert rt.next_boundary_after(0, 600.0) == 1200.0
        assert rt.next_boundary_after(0, 1200.0) is None

    def test_csv_trace_loads(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "# time_s,multiplier\ntime_s,multiplier\n0,1.0\n600,1.4\n\n1200,0.9\n"
        )
        assert load_price_trace_csv(path) == ((0.0, 1.0), (600.0, 1.4), (1200.0, 0.9))


# ---------------------------------------------------------------------------
# Byte identity without a live market
# ---------------------------------------------------------------------------


class TestByteIdentity:
    def _run(self, scheduler="eva", **kwargs):
        catalog = ec2_catalog()
        return run_simulation(
            _trace(num_jobs=8, seed=3), make_scheduler(scheduler, catalog), **kwargs
        )

    def test_unset_disabled_and_static_all_identical(self):
        baseline = pickle.dumps(self._run(), protocol=5)
        disabled = self._run(market=MarketConfig())
        static = self._run(
            market=MarketConfig(
                enabled=True,
                pools=(MarketPool(name="flat", families=("c7i", "r7i", "p3")),),
            )
        )
        assert pickle.dumps(disabled, protocol=5) == baseline
        assert pickle.dumps(static, protocol=5) == baseline

    def test_legacy_spot_path_untouched_without_market(self):
        spot = SpotConfig(enabled=True, preemption_rate_per_hour=0.4, seed=4)
        baseline = self._run(spot=spot)
        disabled = self._run(spot=spot, market=MarketConfig())
        assert pickle.dumps(disabled, protocol=5) == pickle.dumps(
            baseline, protocol=5
        )
        assert baseline.preemptions > 0

    def test_market_scheduler_matches_eva_without_market(self):
        trace = _trace(num_jobs=8, seed=3)
        catalog = ec2_catalog()
        eva = run_simulation(trace, make_scheduler("eva", catalog))
        market = run_simulation(
            trace, MarketAwareEvaScheduler(catalog, name="Eva")
        )
        assert pickle.dumps(market, protocol=5) == pickle.dumps(eva, protocol=5)


# ---------------------------------------------------------------------------
# Billing splits
# ---------------------------------------------------------------------------


class TestBillingSplits:
    _TYPE = InstanceType(
        name="t.test", family="t", capacity=ResourceVector(0, 4, 16), hourly_cost=3.6
    )

    def test_two_segment_bill_hand_computed(self):
        ledger = BillingLedger()
        ledger.on_launch("i-1", self._TYPE, 0.0, hourly_rate=3.6)
        ledger.change_rate("i-1", 1800.0, 7.2)
        ledger.on_terminate("i-1", 3600.0)
        # 30 min at $3.6/h + 30 min at $7.2/h.
        assert ledger.total_cost(3600.0) == pytest.approx(3.6 * 0.5 + 7.2 * 0.5)
        record = ledger.records["i-1"]
        assert record.uptime_s(3600.0) == 3600.0
        assert ledger.instances_launched() == 1

    def test_never_rerated_record_uses_legacy_expression(self):
        record = BillingRecord("i-1", self._TYPE, launch_time_s=100.0)
        assert record.segment_start_s is None
        assert record.cost(1900.0) == pytest.approx(1800.0 * 3.6 / 3600.0)

    def test_rerate_guards(self):
        record = BillingRecord("i-1", self._TYPE, launch_time_s=0.0)
        record.change_rate(600.0, 1.0)
        with pytest.raises(ValueError):
            record.change_rate(500.0, 2.0)
        record.termination_time_s = 1200.0
        with pytest.raises(ValueError):
            record.change_rate(1300.0, 2.0)

    def test_simulated_cost_matches_repriced_rates(self):
        """A volatile market must actually move the bill (and count its
        re-rates), while leaving launch/uptime accounting untouched."""
        catalog = ec2_catalog()
        trace = _trace(num_jobs=8, seed=3)
        base = run_simulation(trace, make_scheduler("no-packing", catalog))
        priced = run_simulation(
            trace, make_scheduler("no-packing", catalog), market=_volatile_market()
        )
        assert priced.price_changes > 0
        assert priced.total_cost != base.total_cost
        assert priced.instances_launched == base.instances_launched


# ---------------------------------------------------------------------------
# Price-coupled evictions
# ---------------------------------------------------------------------------


class TestEvictionCoupling:
    def test_expensive_pool_evicts_harder(self):
        catalog = ec2_catalog()
        trace = _trace(num_jobs=10, seed=6)
        expensive = MarketConfig(
            enabled=True,
            seed=2,
            eviction_coupling=2.0,
            pools=(
                MarketPool(
                    name="hot", families=("c7i", "r7i"), base_multiplier=2.5,
                    max_multiplier=2.5,
                ),
            ),
        )
        spot = SpotConfig(enabled=True, preemption_rate_per_hour=0.15, seed=6)
        coupled = run_simulation(
            trace, make_scheduler("eva", catalog), spot=spot, market=expensive
        )
        uncoupled = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            spot=spot,
            market=replace(expensive, eviction_coupling=0.0),
        )
        assert coupled.preemptions > uncoupled.preemptions


# ---------------------------------------------------------------------------
# Observation surface
# ---------------------------------------------------------------------------


class _Recorder:
    """Wraps a scheduler, taping every observation batch.

    The simulator enters through ``decide`` (which internally fans out
    to ``observe``), so that is the method to intercept.
    """

    def __init__(self, inner):
        self.inner = inner
        self.observations = []
        self.name = inner.name

    def decide(self, snapshot, observations):
        self.observations.extend(observations)
        return self.inner.decide(snapshot, observations)

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


class TestObservationSurface:
    def test_price_changes_reach_the_scheduler(self):
        recorder = _Recorder(make_scheduler("eva", ec2_catalog()))
        result = run_simulation(
            _trace(num_jobs=8, seed=3), recorder, market=_volatile_market()
        )
        changes = [o for o in recorder.observations if isinstance(o, PriceChanged)]
        assert len(changes) == result.price_changes > 0
        assert any(c.multiplier != 1.0 for c in changes)
        for change in changes:
            assert change.pool in ("cpu-c", "cpu-r")
            assert change.multiplier != change.previous

    def test_exhausted_pool_emits_and_delays(self):
        tight = MarketConfig(
            enabled=True,
            seed=2,
            pools=(
                MarketPool(
                    name="tiny", families=("c7i", "r7i"), capacity=1,
                    backlog_delay_s=600.0,
                ),
            ),
        )
        recorder = _Recorder(make_scheduler("eva", ec2_catalog()))
        result = run_simulation(_trace(num_jobs=10, seed=4), recorder, market=tight)
        exhaustions = [
            o for o in recorder.observations if isinstance(o, PoolExhausted)
        ]
        assert len(exhaustions) == result.pool_exhaustions > 0
        assert all(o.pool == "tiny" for o in exhaustions)


# ---------------------------------------------------------------------------
# The eva-market policy
# ---------------------------------------------------------------------------


def _snapshot(time_s=0.0):
    return ClusterSnapshot(time_s=time_s, tasks={}, jobs={}, instances=())


class TestMarketAwarePolicy:
    def _scheduler(self, **kwargs):
        return MarketAwareEvaScheduler(
            ec2_catalog(),
            market_config=MarketPolicyConfig(**kwargs) if kwargs else None,
        )

    def test_prices_come_from_observations_only(self):
        sched = self._scheduler()
        sched.observe(
            (
                PriceChanged(
                    pool="cpu-c", time_s=600.0, multiplier=1.4,
                    previous=1.0, families=("c7i",),
                ),
            )
        )
        sched._pre_schedule(_snapshot(900.0))
        repriced = {it.name: it for it in sched.catalog}
        stock = {it.name: it for it in sched._stock_catalog}
        for name, itype in stock.items():
            expected = itype.hourly_cost * (1.4 if itype.family == "c7i" else 1.0)
            assert repriced[name].hourly_cost == pytest.approx(expected)
        assert sched.rp_calculator is not sched._stock_calculator

    def test_par_price_restores_stock_objects(self):
        sched = self._scheduler()
        sched.observe(
            (
                PriceChanged(
                    pool="cpu-c", time_s=600.0, multiplier=1.4,
                    previous=1.0, families=("c7i",),
                ),
            )
        )
        sched._pre_schedule(_snapshot(900.0))
        sched.observe(
            (
                PriceChanged(
                    pool="cpu-c", time_s=1200.0, multiplier=1.0,
                    previous=1.4, families=("c7i",),
                ),
            )
        )
        sched._pre_schedule(_snapshot(1500.0))
        assert sched.catalog is sched._stock_catalog
        assert sched.rp_calculator is sched._stock_calculator

    def test_bid_ceiling_drops_covered_family_only(self):
        sched = self._scheduler(bid_ceiling=1.5)
        sched.observe(
            (
                PriceChanged(
                    pool="cpu-c", time_s=0.0, multiplier=2.0,
                    previous=1.0, families=("c7i",),
                ),
                PriceChanged(
                    pool="gpu", time_s=0.0, multiplier=2.0,
                    previous=1.0, families=("p3",),
                ),
            )
        )
        sched._pre_schedule(_snapshot(300.0))
        families = {it.family for it in sched.catalog}
        # c7i is covered by r7i (identical CPU shapes) and drops; p3 is
        # the only GPU capacity and must survive at its inflated price.
        assert "c7i" not in families
        assert "p3" in families
        p3 = next(it for it in sched.catalog if it.family == "p3")
        stock_p3 = next(it for it in sched._stock_catalog if it.name == p3.name)
        assert p3.hourly_cost == pytest.approx(2.0 * stock_p3.hourly_cost)

    def test_eviction_storm_flips_use_spot_then_recovers(self):
        sched = self._scheduler(
            storm_threshold=3, storm_window_s=900.0, storm_cooldown_s=600.0
        )
        notices = tuple(
            SpotEvictionNotice(instance_id=f"i-{k}", eviction_time_s=1000.0 + k)
            for k in range(3)
        )
        sched.observe(notices)
        sched._pre_schedule(_snapshot(1100.0))
        assert sched.use_spot is False
        sched._pre_schedule(_snapshot(1100.0 + 601.0))
        assert sched.use_spot is True

    def test_exhaust_penalty_lasts_one_round(self):
        sched = self._scheduler(exhaust_penalty=1.5)
        sched.observe(
            (PoolExhausted(pool="tiny", time_s=0.0, families=("c7i",)),)
        )
        sched._pre_schedule(_snapshot(300.0))
        assert sched._effective == {"c7i": 1.5}
        sched._pre_schedule(_snapshot(600.0))
        assert sched._effective == {}
        assert sched.catalog is sched._stock_catalog

    def test_end_to_end_beats_blind_eva_on_volatile_market(self):
        """The acceptance shape at miniature scale: same volatile
        market, eva-market no costlier than blind Eva."""
        catalog = ec2_catalog()
        trace = _trace(num_jobs=12, seed=1)
        market = _volatile_market(seed=7, eviction_coupling=2.0)
        spot = SpotConfig(
            enabled=True, preemption_rate_per_hour=0.15, seed=1, notice_s=300.0
        )
        eva = run_simulation(
            trace, make_scheduler("eva", catalog), spot=spot, market=market
        )
        aware = run_simulation(
            trace, make_scheduler("eva-market", catalog), spot=spot, market=market
        )
        assert aware.total_cost <= eva.total_cost * 1.02


# ---------------------------------------------------------------------------
# Burstable credits
# ---------------------------------------------------------------------------


class TestCredits:
    def test_credit_exhaustion_slows_jobs(self):
        catalog = ec2_catalog()
        trace = _trace(num_jobs=8, seed=3, duration_range_hours=(1.0, 2.0))
        market = MarketConfig(
            enabled=True,
            seed=2,
            pools=(MarketPool(name="burst", families=("c7i", "r7i")),),
            credits=CreditModel(
                families=("c7i", "r7i"),
                initial_credit_s=1800.0,
                baseline_fraction=0.4,
            ),
        )
        burst = run_simulation(trace, make_scheduler("eva", catalog), market=market)
        flat = run_simulation(
            trace,
            make_scheduler("eva", catalog),
            market=replace(market, credits=None),
        )
        assert burst.credit_exhaustions > 0
        assert flat.credit_exhaustions == 0
        assert burst.mean_jct_hours() > flat.mean_jct_hours()


# ---------------------------------------------------------------------------
# Fingerprint coverage
# ---------------------------------------------------------------------------


class TestMarketFingerprint:
    def _scenario(self, market):
        return Scenario(
            scheduler="eva",
            trace=TraceSpec.make("synthetic", num_jobs=4, seed=0),
            market=market,
        )

    def test_every_knob_changes_the_fingerprint(self):
        pool = MarketPool(name="p", families=("c7i",), volatility=0.2)
        base = MarketConfig(enabled=True, pools=(pool,), seed=1)
        variants = [
            None,
            MarketConfig(),
            replace(base, seed=2),
            replace(base, eviction_coupling=1.0),
            replace(base, credits=CreditModel(families=("c7i",))),
            replace(base, pools=(replace(pool, volatility=0.25),)),
            replace(base, pools=(replace(pool, reversion=0.3),)),
            replace(base, pools=(replace(pool, step_s=600.0),)),
            replace(base, pools=(replace(pool, base_multiplier=1.1),)),
            replace(base, pools=(replace(pool, min_multiplier=0.5),)),
            replace(base, pools=(replace(pool, max_multiplier=3.0),)),
            replace(base, pools=(replace(pool, quantum=0.01),)),
            replace(base, pools=(replace(pool, capacity=4),)),
            replace(base, pools=(replace(pool, backlog_delay_s=300.0),)),
            replace(base, pools=(replace(pool, families=("r7i",)),)),
            replace(
                base,
                pools=(replace(pool, volatility=0.0, trace=((0.0, 1.0),)),),
            ),
        ]
        prints = {self._scenario(base).fingerprint()}
        for variant in variants:
            fp = self._scenario(variant).fingerprint()
            assert fp not in prints, f"knob not covered: {variant}"
            prints.add(fp)

    def test_fingerprint_stable_across_hash_seeds(self):
        """The market-bearing fingerprint must be process-invariant (it
        keys the persistent result store)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = Path(repro.__file__).resolve().parents[1]
        script = (
            "from repro.cloud.market import CreditModel, MarketConfig, MarketPool\n"
            "from repro.sim.batch import Scenario, TraceSpec\n"
            "s = Scenario(scheduler='eva',\n"
            "             trace=TraceSpec.make('synthetic', num_jobs=4, seed=0),\n"
            "             market=MarketConfig(enabled=True, seed=3,\n"
            "                 eviction_coupling=1.5,\n"
            "                 credits=CreditModel(families=('c7i',)),\n"
            "                 pools=(MarketPool(name='p', families=('c7i',),\n"
            "                                   volatility=0.2),)))\n"
            "print(s.fingerprint())\n"
        )
        prints = set()
        for hash_seed in ("0", "1"):
            env = {**os.environ, "PYTHONHASHSEED": hash_seed}
            env["PYTHONPATH"] = (
                str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            prints.add(proc.stdout.strip())
        assert len(prints) == 1, f"hash-seed-dependent fingerprint: {prints}"


# ---------------------------------------------------------------------------
# Batch determinism
# ---------------------------------------------------------------------------


class TestBatchDeterminism:
    def _scenarios(self):
        return [
            Scenario(
                scheduler=scheduler,
                trace=TraceSpec.make("synthetic", num_jobs=6, seed=s),
                market=_volatile_market(seed=s),
                spot=SpotConfig(
                    enabled=True, preemption_rate_per_hour=0.2, seed=s,
                    notice_s=300.0,
                ),
                seed=s,
                name=f"{scheduler}-{s}",
            )
            for s, scheduler in enumerate(["eva", "eva-market", "no-packing"])
        ]

    def test_serial_vs_parallel_byte_identical(self):
        serial = run_batch(self._scenarios(), workers=1)
        parallel = run_batch(self._scenarios(), workers=4)
        for s_out, p_out in zip(serial, parallel):
            assert pickle.dumps(s_out.result) == pickle.dumps(p_out.result)
        assert any(o.result.price_changes > 0 for o in serial)

    def test_reseed_overrides_market_seed(self):
        scenario = self._scenarios()[0]
        reseeded = reseed(scenario, 99)
        assert reseeded.market.seed == 99
        assert reseeded.spot.seed == 99
        assert reseeded.seed == 99
        # Unset market stays unset.
        bare = Scenario(
            scheduler="eva", trace=TraceSpec.make("synthetic", num_jobs=4)
        )
        assert reseed(bare, 99).market is None
