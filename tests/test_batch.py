"""Tests for the parallel scenario/batch execution subsystem.

Covers the ISSUE-1 guarantees: per-scenario metrics are byte-identical
between serial and parallel execution (and across two parallel runs),
results come back in input order regardless of completion order, every
registry scheduler survives a smoke run, and the ``EVA_BENCH_WORKERS`` /
``EVA_BENCH_SCALE`` knobs reject malformed values (including the
NaN/inf values that previously slipped past the positivity guard).
"""

from __future__ import annotations

import pickle

import pytest

from repro.cloud.delays import DelayModel
from repro.core import make_scheduler, scheduler_names
from repro.experiments.common import bench_scale, scaled
from repro.interference.model import InterferenceModel
from repro.sim.batch import (
    Scenario,
    TraceSpec,
    bench_workers,
    parallel_map,
    run_batch,
    run_grid,
    run_scenario,
)
from repro.sim.simulator import SpotConfig
from repro.workloads.synthetic import synthetic_trace


def _mixed_scenarios() -> list[Scenario]:
    """A small grid exercising interference, delays, spot, and specs."""
    trace = synthetic_trace(6, seed=11)
    return [
        Scenario(scheduler="eva", trace=trace, name="eva-plain", seed=11),
        Scenario(
            scheduler="owl",
            trace=trace,
            name="owl-uniform",
            interference=InterferenceModel(uniform_value=0.9),
            seed=11,
        ),
        Scenario(
            scheduler="stratus",
            trace=trace,
            name="stratus-stochastic-delays",
            delay_model=DelayModel(stochastic=True),
            seed=11,
        ),
        Scenario(
            scheduler="no-packing",
            trace=trace,
            name="no-packing-spot",
            spot=SpotConfig(enabled=True, preemption_rate_per_hour=0.2),
            seed=11,
        ),
        Scenario(
            scheduler="synergy",
            trace=TraceSpec.make("synthetic", num_jobs=5),
            name="synergy-spec",
            seed=7,
        ),
    ]


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_serial_vs_parallel_byte_identical(self):
        scenarios = _mixed_scenarios()
        serial = run_batch(scenarios, workers=1)
        parallel = run_batch(scenarios, workers=4)
        assert len(serial) == len(parallel) == len(scenarios)
        for s_out, p_out in zip(serial, parallel):
            assert s_out.scenario.name == p_out.scenario.name
            assert pickle.dumps(s_out.result) == pickle.dumps(p_out.result)

    def test_two_parallel_runs_byte_identical(self):
        scenarios = _mixed_scenarios()
        first = run_batch(scenarios, workers=2)
        second = run_batch(scenarios, workers=2)
        for a, b in zip(first, second):
            assert pickle.dumps(a.result) == pickle.dumps(b.result)

    def test_serial_runs_do_not_leak_state_between_scenarios(self):
        # A stochastic DelayModel carries an RNG; executing the same
        # scenario object twice must not consume shared RNG state.
        scenario = Scenario(
            scheduler="eva",
            trace=synthetic_trace(4, seed=2),
            delay_model=DelayModel(stochastic=True),
        )
        twice = run_batch([scenario, scenario], workers=1)
        assert pickle.dumps(twice[0].result) == pickle.dumps(twice[1].result)


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


def _job_count(label_and_jobs: tuple[str, int]) -> tuple[str, int]:
    return label_and_jobs


class TestOrdering:
    def test_results_in_input_order_despite_uneven_runtimes(self):
        # The first scenario is much larger than the rest, so with two
        # workers it finishes *last*; outcomes must still lead with it.
        big = Scenario(
            scheduler="eva", trace=synthetic_trace(18, seed=0), name="s0"
        )
        small = [
            Scenario(
                scheduler="no-packing",
                trace=synthetic_trace(2, seed=i),
                name=f"s{i}",
            )
            for i in range(1, 5)
        ]
        scenarios = [big, *small]
        outcomes = run_batch(scenarios, workers=2)
        assert [o.scenario.name for o in outcomes] == [s.name for s in scenarios]
        assert [o.result.scheduler_name for o in outcomes] == [
            "Eva",
            "No-Packing",
            "No-Packing",
            "No-Packing",
            "No-Packing",
        ]

    def test_parallel_map_preserves_order(self):
        items = [("x", 3), ("y", 1), ("z", 2)]
        assert parallel_map(_job_count, items, workers=2) == items

    def test_outcomes_carry_timing(self):
        outcome = run_scenario(
            Scenario(scheduler="no-packing", trace=synthetic_trace(2, seed=0))
        )
        assert outcome.elapsed_s > 0

    def test_run_grid_keys_results_structurally(self):
        trace = synthetic_trace(3, seed=1)
        schedulers = {"No-Packing": "no-packing", "Eva": "eva"}
        grid = run_grid(
            (0.9, 1.0),
            schedulers,
            lambda point, registry_name: Scenario(
                scheduler=registry_name,
                trace=trace,
                interference=InterferenceModel(uniform_value=point),
            ),
            workers=2,
        )
        assert set(grid) == {0.9, 1.0}
        for point, results in grid.items():
            assert set(results) == set(schedulers)
            assert results["No-Packing"].scheduler_name == "No-Packing"
            assert results["Eva"].scheduler_name == "Eva"
            assert results["Eva"].num_jobs == len(trace)


# ---------------------------------------------------------------------------
# Worker-death resilience
# ---------------------------------------------------------------------------


def _square_or_die(x: int) -> int:
    import multiprocessing
    import os

    # Only die inside a pool worker: the serial retry runs in the parent
    # process, where parent_process() is None, and must succeed.
    if x == 2 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


class TestWorkerDeath:
    def test_broken_pool_retries_serially_with_warning(self):
        """A worker dying mid-batch (OOM-killer territory) must not lose
        the batch: the poisoned items rerun serially in the parent."""
        with pytest.warns(RuntimeWarning, match="retrying"):
            results = parallel_map(_square_or_die, list(range(5)), workers=2)
        assert results == [0, 1, 4, 9, 16]

    def test_broken_pool_warning_names_the_poisoned_items(self):
        """The retry warning must say *which* items it is retrying —
        'a worker died' without labels is useless in a large sweep."""
        with pytest.warns(RuntimeWarning, match=r"serially in the parent process: .*2"):
            parallel_map(_square_or_die, list(range(5)), workers=2)

    def test_serial_path_unaffected(self):
        # workers=1 never enters the pool, so nothing dies.
        assert parallel_map(_square_or_die, [2], workers=1) == [4]


# ---------------------------------------------------------------------------
# Exception labelling
# ---------------------------------------------------------------------------


def _square_or_raise(x: int) -> int:
    if x == 3:
        raise ValueError("poisoned cell")
    return x * x


class _Labelled:
    def __init__(self, label: str) -> None:
        self.label = label


class TestExceptionLabelling:
    """Per-item exceptions must carry the originating item's label, so a
    poisoned cell in a thousand-scenario sweep is identifiable from the
    traceback alone (pool and serial paths alike)."""

    def test_pool_exception_names_item_index_and_label(self):
        with pytest.raises(ValueError, match="poisoned cell") as excinfo:
            parallel_map(_square_or_raise, list(range(5)), workers=2)
        assert any(
            "parallel_map item 3 (3) raised in its worker process" in note
            for note in excinfo.value.__notes__
        )

    def test_serial_exception_names_the_item(self):
        with pytest.raises(ValueError, match="poisoned cell") as excinfo:
            parallel_map(_square_or_raise, [0, 3], workers=1)
        assert any(
            "while executing item 3" in note for note in excinfo.value.__notes__
        )

    def test_custom_label_callable_is_used(self):
        with pytest.raises(ValueError) as excinfo:
            parallel_map(
                _square_or_raise, [3], workers=1, label=lambda x: f"cell-{x}"
            )
        assert any("cell-3" in note for note in excinfo.value.__notes__)

    def test_default_label_prefers_item_label_attribute(self):
        from repro.sim.batch import _item_label

        assert _item_label(_Labelled("eva/seed=3")) == "eva/seed=3"
        # An empty label falls back to repr, like any label-less item.
        assert _item_label(_Labelled("")).startswith("<")
        assert _item_label(12) == "12"
        long = "x" * 200
        rendered = _item_label(long)
        assert len(rendered) == 80 and rendered.endswith("...")

    def test_scenario_exception_carries_its_label(self):
        scenario = Scenario(
            scheduler="nonesuch", trace=synthetic_trace(2, seed=0), name="Bad"
        )
        with pytest.raises(KeyError) as excinfo:
            run_batch([scenario], workers=1)
        assert any(scenario.label in note for note in excinfo.value.__notes__)


# ---------------------------------------------------------------------------
# Cross-scheduler smoke matrix
# ---------------------------------------------------------------------------


class TestSchedulerMatrix:
    def test_every_registry_scheduler_completes_tiny_trace(self):
        trace = synthetic_trace(4, seed=5)
        names = scheduler_names()
        assert {"eva", "no-packing", "owl", "stratus", "synergy"} <= set(names)
        scenarios = [
            Scenario(scheduler=name, trace=trace, name=name, validate=True)
            for name in names
        ]
        outcomes = run_batch(scenarios, workers=2)
        for outcome in outcomes:
            result = outcome.result
            assert result.num_jobs == len(trace), outcome.scenario.name
            assert result.total_cost > 0, outcome.scenario.name
            assert result.makespan_hours > 0, outcome.scenario.name

    def test_registry_rejects_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            run_scenario(
                Scenario(scheduler="nonesuch", trace=synthetic_trace(2, seed=0))
            )

    def test_registry_normalizes_aliases(self, catalog):
        assert make_scheduler("No_Packing", catalog).name == "No-Packing"
        assert make_scheduler(" EVA-TNRP ", catalog).name == "Eva-TNRP"

    def test_registry_builds_fresh_instances(self, catalog):
        assert make_scheduler("eva", catalog) is not make_scheduler("eva", catalog)

    def test_trace_spec_rejects_unknown_builder(self):
        with pytest.raises(KeyError, match="unknown trace builder"):
            TraceSpec.make("nonesuch").build()


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------


class TestWorkersKnob:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("EVA_BENCH_WORKERS", raising=False)
        assert bench_workers() == 1

    def test_parses_valid_value(self, monkeypatch):
        monkeypatch.setenv("EVA_BENCH_WORKERS", "4")
        assert bench_workers() == 4

    @pytest.mark.parametrize("raw", ["zero", "2.5", "", "nan"])
    def test_rejects_non_integers(self, monkeypatch, raw):
        monkeypatch.setenv("EVA_BENCH_WORKERS", raw)
        with pytest.raises(ValueError, match="must be an integer"):
            bench_workers()

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_rejects_non_positive(self, monkeypatch, raw):
        monkeypatch.setenv("EVA_BENCH_WORKERS", raw)
        with pytest.raises(ValueError, match=">= 1"):
            bench_workers()

    def test_run_batch_rejects_bad_workers_argument(self):
        with pytest.raises(ValueError, match=">= 1"):
            run_batch(
                [Scenario(scheduler="eva", trace=synthetic_trace(2, seed=0))],
                workers=0,
            )


class TestScaleKnob:
    def test_parses_valid_value(self, monkeypatch):
        monkeypatch.setenv("EVA_BENCH_SCALE", "2.0")
        assert bench_scale() == 2.0
        assert scaled(10) == 20

    @pytest.mark.parametrize("raw", ["nan", "inf", "-inf", "NaN"])
    def test_rejects_non_finite(self, monkeypatch, raw):
        monkeypatch.setenv("EVA_BENCH_SCALE", raw)
        with pytest.raises(ValueError, match="finite"):
            bench_scale()

    @pytest.mark.parametrize("raw", ["0", "-1.5"])
    def test_rejects_non_positive(self, monkeypatch, raw):
        monkeypatch.setenv("EVA_BENCH_SCALE", raw)
        with pytest.raises(ValueError, match="positive"):
            bench_scale()

    def test_rejects_junk(self, monkeypatch):
        monkeypatch.setenv("EVA_BENCH_SCALE", "big")
        with pytest.raises(ValueError, match="must be a float"):
            bench_scale()
