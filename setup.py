"""Setuptools entry point.

The legacy ``setup.py`` path is kept (instead of a ``[build-system]`` table
in ``pyproject.toml``) so that ``pip install -e .`` works in offline
environments that lack the ``wheel`` package required by PEP 660 editable
installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Eva: Cost-Efficient Cloud-Based Cluster Scheduling' "
        "(EuroSys 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
