"""Interference study: why cost-efficiency needs throughput awareness.

Reproduces the Figure 4 narrative at example scale: as co-location
interference grows, an interference-blind packer (Eva-RP) packs itself
into longer runtimes and *higher* total cost, while the full scheduler
(Eva-TNRP) backs off packing exactly when it stops paying for itself,
degrading gracefully toward the No-Packing baseline.

Run:  python examples/interference_study.py
"""

from repro import NoPackingScheduler, ec2_catalog, run_simulation
from repro.analysis.reporting import render_table
from repro.core.scheduler import make_eva_variant
from repro.interference.model import InterferenceModel
from repro.workloads import synthesize_alibaba_trace

LEVELS = (1.0, 0.9, 0.8)


def main() -> None:
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(120, seed=1)
    rows = []
    for level in LEVELS:
        interference = InterferenceModel(uniform_value=level)
        baseline = run_simulation(
            trace, NoPackingScheduler(catalog), interference=interference
        )
        for variant in ("eva-rp", "eva-tnrp"):
            scheduler = make_eva_variant(catalog, variant)
            result = run_simulation(trace, scheduler, interference=interference)
            rows.append(
                (
                    f"{level:.2f}",
                    scheduler.name,
                    f"{result.total_cost / baseline.total_cost * 100:.1f}%",
                    round(result.mean_normalized_tput(), 3),
                    round(result.mean_jct_hours(), 2),
                    round(result.tasks_per_instance, 2),
                )
            )
    print(
        render_table(
            "Packing under increasing co-location interference "
            "(cost normalized to No-Packing)",
            (
                "Pairwise Tput",
                "Scheduler",
                "Norm. Cost",
                "Job Tput",
                "JCT (h)",
                "Tasks/Inst",
            ),
            rows,
            notes=(
                "Eva-RP ignores interference and packs regardless; "
                "Eva-TNRP packs only when throughput-normalized value "
                "covers the instance cost",
            ),
        )
    )


if __name__ == "__main__":
    main()
