"""Shared ML training cluster: the paper's target use case (§2.3).

An enterprise with multiple ML development teams replaces per-team
instance provisioning with a shared cloud-based cluster.  This example
builds a day of team submissions (vision, NLP, graph-learning, and
scientific-computing teams with different workloads and schedules), runs
it under the No-Packing strategy (one instance per task — what the teams
did on their own) and under Eva, and reports the cost/JCT trade-off.

Run:  python examples/ml_training_cluster.py
"""

import numpy as np

from repro import EvaScheduler, NoPackingScheduler, ec2_catalog, run_simulation
from repro.analysis.reporting import render_table
from repro.workloads import Trace, sort_jobs_by_arrival, workload

#: Each team's workload pool and submission count for the work day.
TEAMS = {
    "vision": (("ResNet18-2", "ViT", "ViT", "CycleGAN"), 14),
    "nlp": (("GPT2",), 6),
    "graph": (("GraphSAGE", "GCN"), 10),
    "science": (("Diamond", "OpenFOAM", "A3C"), 12),
}

#: Submissions land within the teams' overlapping work day.
WORKDAY_HOURS = 10.0


def build_submissions(seed: int = 7) -> Trace:
    """One work day of job submissions across the four teams."""
    rng = np.random.default_rng(seed)
    jobs = []
    for team, (pool, count) in TEAMS.items():
        for i in range(count):
            name = pool[int(rng.integers(len(pool)))]
            jobs.append(
                workload(name).make_job(
                    duration_hours=float(rng.uniform(0.5, 4.0)),
                    arrival_time_s=float(rng.uniform(0, WORKDAY_HOURS * 3600)),
                    job_id=f"{team}-{i}-{name}",
                )
            )
    return Trace(name="ml-teams-day", jobs=sort_jobs_by_arrival(jobs))


def main() -> None:
    catalog = ec2_catalog()
    trace = build_submissions()
    print(
        f"{len(trace)} jobs ({trace.num_tasks()} tasks) submitted over "
        f"{trace.span_hours():.1f}h by {len(TEAMS)} teams\n"
    )

    per_team_cost = run_simulation(trace, NoPackingScheduler(catalog))
    shared_eva = run_simulation(trace, EvaScheduler(catalog))

    rows = []
    for label, result in (
        ("Per-team instances (No-Packing)", per_team_cost),
        ("Shared cluster (Eva)", shared_eva),
    ):
        rows.append(
            (
                label,
                round(result.total_cost, 2),
                f"{result.total_cost / per_team_cost.total_cost * 100:.1f}%",
                round(result.mean_jct_hours(), 2),
                round(result.tasks_per_instance, 2),
                f"{result.allocation['gpus'] * 100:.0f}%",
            )
        )
    print(
        render_table(
            "Shared ML training cluster: cost of one day of team submissions",
            (
                "Strategy",
                "Total Cost ($)",
                "Norm. Cost",
                "Mean JCT (h)",
                "Tasks/Instance",
                "GPU Alloc",
            ),
            rows,
        )
    )
    saving = 1 - shared_eva.total_cost / per_team_cost.total_cost
    jct_increase = (
        shared_eva.mean_jct_hours() / per_team_cost.mean_jct_hours() - 1
    )
    print(
        f"\nEva saves {saving * 100:.1f}% of the cloud bill for a "
        f"{max(0.0, jct_increase) * 100:.1f}% increase in mean JCT."
    )


if __name__ == "__main__":
    main()
