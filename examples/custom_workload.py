"""Bring your own workload: demand vectors, EvaIterator, and profiling.

Shows the user-facing integration surface of the system (§5):

1. declare a workload with per-family demand vectors (fewer CPUs on the
   higher-frequency C7i/R7i families, like Table 7's parenthesised values);
2. wrap the training loop's iterator in ``EvaIterator`` so workers can
   query throughput over a sliding window;
3. let the ``Profiler`` estimate standalone throughput when the job does
   not declare one;
4. submit to an Eva master and watch where the scheduler places it.

Run:  python examples/custom_workload.py
"""

from repro import EvaScheduler, ResourceVector, ec2_catalog
from repro.cluster.task import MigrationDelays, make_job
from repro.runtime import EvaIterator, EvaMaster, Profiler


def train_steps(n: int):
    """Stand-in for a user training loop's data iterator."""
    for step in range(n):
        yield {"step": step}


def main() -> None:
    catalog = ec2_catalog()

    # 1. Demand vectors per instance family: this (fictional) recommender
    # model needs 1 GPU + 6 CPUs on P3, but only 3 CPUs on C7i/R7i.
    demands = {
        "p3": ResourceVector(gpus=1, cpus=6, ram_gb=30),
        "c7i": ResourceVector(gpus=1, cpus=3, ram_gb=30),
        "r7i": ResourceVector(gpus=1, cpus=3, ram_gb=30),
    }
    job = make_job(
        workload="RecSys",
        demands=demands,
        duration_hours=0.4,
        migration=MigrationDelays(checkpoint_s=5, launch_s=30),
        job_id="recsys-demo",
    )

    # 2. The EvaIterator wrapper: three lines of user code.
    clock = {"t": 0.0}

    def fake_clock() -> float:
        clock["t"] += 0.25  # each step takes 250 ms
        return clock["t"]

    iterator = EvaIterator(inner=train_steps(200), clock=fake_clock)
    for _batch in iterator:
        pass  # train_step(_batch)
    print(
        f"EvaIterator saw {iterator.total_iterations} steps; "
        f"throughput over the last 30s: {iterator.throughput(30.0):.2f} it/s"
    )

    # 3. Profiling the standalone rate (cached per workload).
    profiler = Profiler(catalog=catalog, window_s=30.0)
    rate = profiler.standalone_throughput(job.tasks[0], true_iters_per_s=4.0)
    print(
        f"profiled standalone rate: {rate:.2f} it/s on "
        f"{profiler.profiling_instance_type(job.tasks[0]).name}"
    )

    # 4. Submit and run.
    master = EvaMaster(catalog=catalog, scheduler=EvaScheduler(catalog))
    master.submit_job(job)
    master.run_for(hours=0.6)
    for done in master.completed:
        print(f"job {done.job_id} completed, JCT {done.jct_hours:.2f}h")
    print(f"total cost: ${master.total_cost():.3f}")


if __name__ == "__main__":
    main()
