"""Quickstart: host three batch jobs on a cloud-based cluster with Eva.

This mirrors the paper artifact's minimal working example (E1): three jobs
— a 2-task ResNet18 training job, a GraphSAGE graph-embedding job, and an
A3C reinforcement-learning job — are submitted to an Eva master, which
provisions simulated EC2 instances, co-locates tasks where cost-efficient,
monitors throughput, and tears everything down as jobs finish.

Part two runs a paper experiment through the declarative experiment API
(see docs/experiments.md): every table/figure is an ``ExperimentSpec`` in
a registry, executed with ``run_experiment`` — the same machinery behind
``python -m repro.experiments run <id>``.

Run:  python examples/quickstart.py
"""

from repro import EvaScheduler, ec2_catalog
from repro.experiments import ExperimentContext, get_experiment, run_experiment
from repro.runtime import EvaMaster
from repro.workloads import workload


def main() -> None:
    catalog = ec2_catalog()
    master = EvaMaster(catalog=catalog, scheduler=EvaScheduler(catalog))

    # Submit the three E1 jobs.  In a real deployment each submission is a
    # Dockerfile plus per-task resource demand vectors; the workload specs
    # of Table 7 carry exactly that information.
    for name, duration_hours in (
        ("ResNet18-2", 0.5),
        ("GraphSAGE", 0.4),
        ("A3C", 0.3),
    ):
        job = workload(name).make_job(duration_hours=duration_hours, job_id=name)
        master.submit_job(job)
        demand = job.tasks[0].demand_for("p3")
        print(
            f"submitted {name}: {job.num_tasks} task(s), "
            f"{demand.gpus:g} GPU / {demand.cpus:g} CPU / "
            f"{demand.ram_gb:g} GB each, {duration_hours:g}h of work"
        )

    # Alternate scheduling rounds and progress until everything finishes.
    print("\nrunning scheduling rounds (5-minute periods)...")
    master.run_for(hours=1.0)

    print("\ncompleted jobs:")
    for done in master.completed:
        print(f"  {done.job_id:12s} JCT = {done.jct_hours:.2f}h")

    stats = master.stats()
    print(
        f"\ntotal cost: ${stats['total_cost']:.2f}  "
        f"instances used: {stats['placements']} placements, "
        f"{stats['migrations']} migrations, "
        f"{stats['rounds']} scheduling rounds, "
        f"{stats['rpc_calls']} worker RPCs"
    )

    # Part two: drive a registered experiment declaratively.  ``table08``
    # validates the Alibaba trace generator against the published GPU-demand
    # composition — cheap enough for a quickstart.  Heavier specs take the
    # same ``ExperimentContext`` (plus seeds=… for mean ± std trials and
    # store=ResultStore(...) for a persistent result cache).
    spec = get_experiment("table08")
    print(f"\nrunning experiment {spec.id!r}: {spec.title}")
    run = run_experiment(spec, ExperimentContext(params={"num_jobs": 2000}))
    print(run.presentation.text)


if __name__ == "__main__":
    main()
