"""Replay the (synthesized) Alibaba production trace under all five
schedulers — the paper artifact's experiment E2.

E2 runs "the first 200 jobs of the Alibaba trace" through No-Packing,
Stratus, Synergy, Owl and Eva and compares total costs.  The trace here is
the documented synthetic equivalent (Tables 8/9 marginals; DESIGN.md §2).

Run:  python examples/alibaba_trace_replay.py [num_jobs]
"""

import sys

from repro import ec2_catalog
from repro.analysis import compare_schedulers, standard_scheduler_factories
from repro.workloads import synthesize_alibaba_trace


def main(num_jobs: int = 200) -> None:
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(num_jobs, seed=0).head(num_jobs)
    print(
        f"replaying {len(trace)} Alibaba-like jobs "
        f"(GPU mix: {trace.gpu_demand_composition()})\n"
    )

    comparison = compare_schedulers(
        trace, standard_scheduler_factories(catalog)
    )
    print(
        comparison.end_to_end_table(
            f"Experiment E2: first {num_jobs} Alibaba jobs, five schedulers"
        ).render()
    )

    eva = comparison.results["Eva"]
    print(
        f"\nEva: {eva.instances_launched} instances launched, "
        f"{eva.migrations_per_task():.2f} migrations/task, "
        f"Full Reconfiguration adopted in "
        f"{(eva.full_adoption_fraction or 0) * 100:.1f}% of rounds"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
