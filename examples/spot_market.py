"""Spot-market extension: running Eva's cluster on preemptible capacity.

The paper notes (§7) that exploiting cheaper, preemptible spot instances
is an orthogonal extension to Eva.  The simulator supports it end to end:
spot launches bill at a discount, instances are reclaimed after random
lifetimes, and preempted tasks are checkpointed and re-queued for the
next scheduling round — so Eva transparently re-packs them.

Run:  python examples/spot_market.py
"""

from repro import EvaScheduler, ec2_catalog, run_simulation
from repro.analysis.reporting import render_table
from repro.sim import SpotConfig
from repro.workloads import synthesize_alibaba_trace


def main() -> None:
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(100, seed=11)

    on_demand = run_simulation(trace, EvaScheduler(catalog))
    rows = [
        (
            "on-demand",
            round(on_demand.total_cost, 2),
            "100.0%",
            round(on_demand.mean_jct_hours(), 2),
            0,
        )
    ]
    for rate in (0.05, 0.2):
        spot = run_simulation(
            trace,
            EvaScheduler(catalog),
            spot=SpotConfig(enabled=True, preemption_rate_per_hour=rate, seed=11),
        )
        rows.append(
            (
                f"spot, {rate:.2f} preemptions/hr",
                round(spot.total_cost, 2),
                f"{spot.total_cost / on_demand.total_cost * 100:.1f}%",
                round(spot.mean_jct_hours(), 2),
                spot.preemptions,
            )
        )
    print(
        render_table(
            "Eva on spot capacity (30% of on-demand price)",
            ("Capacity", "Total Cost ($)", "Norm. Cost", "Mean JCT (h)", "Preemptions"),
            rows,
            notes=(
                "preempted tasks checkpoint during the interruption notice "
                "and re-enter the queue; Eva re-packs them next round",
            ),
        )
    )


if __name__ == "__main__":
    main()
