"""Spot-market extension: running Eva's cluster on preemptible capacity.

The paper notes (§7) that exploiting cheaper, preemptible spot instances
is an orthogonal extension to Eva.  The simulator supports it end to end:
spot launches bill at a discount, instances are reclaimed after random
lifetimes, and preempted tasks are checkpointed and re-queued for the
next scheduling round — so Eva transparently re-packs them.

Each capacity mode is expressed as a declarative
:class:`~repro.sim.batch.Scenario`, and because spot preemptions are
random the sweep runs as **multi-seed trials**
(:func:`~repro.sim.batch.run_trials`): every row reports mean ± std
across seeds — spot savings are only meaningful with their variance.

Run:  python examples/spot_market.py
"""

from repro.analysis.reporting import render_table
from repro.sim import SpotConfig
from repro.sim.batch import Scenario, TraceSpec, run_trials

SEEDS = (11, 12, 13)


def main() -> None:
    trace = TraceSpec.make("alibaba", num_jobs=100, seed=11)
    scenarios = [
        Scenario(scheduler="eva", trace=trace, name="on-demand"),
    ] + [
        Scenario(
            scheduler="eva",
            trace=trace,
            name=f"spot, {rate:.2f} preemptions/hr",
            spot=SpotConfig(enabled=True, preemption_rate_per_hour=rate),
        )
        for rate in (0.05, 0.2)
    ]

    # One batch over (scenario × seed); reseeding varies the trace and the
    # spot market's preemption draw together.
    trials = run_trials(scenarios, SEEDS)
    baseline = trials.aggregates[0]

    rows = []
    for aggregate in trials:
        norm = aggregate.normalized_cost(baseline)
        preemptions = aggregate.stat(lambda r: r.preemptions)
        rows.append(
            (
                aggregate.label,
                f"{aggregate.total_cost:.2f}",
                f"{norm.mean * 100:.1f}% ± {norm.std * 100:.1f}%",
                f"{aggregate.mean_jct_hours:.2f}",
                f"{preemptions:.1f}",
            )
        )
    print(
        render_table(
            f"Eva on spot capacity (30% of on-demand price; "
            f"{len(SEEDS)} seeds)",
            ("Capacity", "Total Cost ($)", "Norm. Cost", "Mean JCT (h)", "Preemptions"),
            rows,
            notes=(
                "mean ± std across trial seeds "
                + str(list(SEEDS))
                + "; normalized per seed against the on-demand run",
                "preempted tasks checkpoint during the interruption notice "
                "and re-enter the queue; Eva re-packs them next round",
            ),
        )
    )


if __name__ == "__main__":
    main()
