"""Reporting and comparison utilities for experiment outputs."""

from repro.analysis.charts import line_chart, sweep_chart
from repro.analysis.comparison import (
    ComparisonResult,
    compare_schedulers,
    standard_scheduler_factories,
)
from repro.analysis.reporting import (
    ExperimentTable,
    percent,
    render_cdf,
    render_table,
)

__all__ = [
    "line_chart",
    "sweep_chart",
    "ComparisonResult",
    "compare_schedulers",
    "standard_scheduler_factories",
    "ExperimentTable",
    "percent",
    "render_cdf",
    "render_table",
]
