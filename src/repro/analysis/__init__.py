"""Reporting and comparison utilities for experiment outputs."""

from repro.analysis.charts import line_chart, sweep_chart
from repro.analysis.comparison import (
    STANDARD_SCHEDULERS,
    ComparisonResult,
    compare_schedulers,
    standard_scheduler_factories,
    standard_scheduler_names,
)
from repro.analysis.reporting import (
    ExperimentTable,
    percent,
    render_cdf,
    render_table,
)

__all__ = [
    "line_chart",
    "sweep_chart",
    "STANDARD_SCHEDULERS",
    "ComparisonResult",
    "compare_schedulers",
    "standard_scheduler_factories",
    "standard_scheduler_names",
    "ExperimentTable",
    "percent",
    "render_cdf",
    "render_table",
]
