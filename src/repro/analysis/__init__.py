"""Reporting, comparison, and static-analysis utilities.

Two families live here:

* Experiment-output tooling: charts, scheduler comparisons, tables.
* The determinism & invariant linter (``python -m repro.analysis``) —
  see :mod:`repro.analysis.runner` and ``docs/static-analysis.md``.
"""

from repro.analysis.charts import line_chart, sweep_chart
from repro.analysis.comparison import (
    STANDARD_SCHEDULERS,
    ComparisonResult,
    compare_schedulers,
    standard_scheduler_factories,
    standard_scheduler_names,
)
from repro.analysis.findings import Finding
from repro.analysis.reporting import (
    ExperimentTable,
    percent,
    render_cdf,
    render_table,
)
from repro.analysis.runner import AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Finding",
    "run_analysis",
    "line_chart",
    "sweep_chart",
    "STANDARD_SCHEDULERS",
    "ComparisonResult",
    "compare_schedulers",
    "standard_scheduler_factories",
    "standard_scheduler_names",
    "ExperimentTable",
    "percent",
    "render_cdf",
    "render_table",
]
