"""Multi-scheduler comparison harness.

The evaluation repeatedly runs the same trace under several schedulers and
reports costs normalized against No-Packing (§6.1 "Metrics").  This module
packages that loop, including fresh-scheduler construction per run (the
schedulers are stateful learners) and the standard end-to-end table shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.reporting import ExperimentTable, percent
from repro.baselines import (
    NoPackingScheduler,
    OwlScheduler,
    StratusScheduler,
    SynergyScheduler,
)
from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType
from repro.core.interfaces import Scheduler
from repro.core.scheduler import EvaScheduler
from repro.interference.model import InterferenceModel
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import DEFAULT_PERIOD_S, run_simulation
from repro.workloads.trace import Trace

SchedulerFactory = Callable[[], Scheduler]


def standard_scheduler_factories(
    catalog: Sequence[InstanceType],
    interference: InterferenceModel | None = None,
    delay_model: DelayModel | None = None,
) -> dict[str, SchedulerFactory]:
    """The five evaluation schedulers, freshly constructed per run.

    Owl receives the ground-truth pairwise profile (§6.1 provides the
    co-location profile exclusively to Owl).
    """
    profile = interference or InterferenceModel()
    return {
        "No-Packing": lambda: NoPackingScheduler(catalog),
        "Stratus": lambda: StratusScheduler(catalog),
        "Synergy": lambda: SynergyScheduler(catalog),
        "Owl": lambda: OwlScheduler(catalog, profile=profile),
        "Eva": lambda: EvaScheduler(catalog, delay_model=delay_model),
    }


@dataclass
class ComparisonResult:
    """Results of one trace under several schedulers."""

    trace_name: str
    results: dict[str, SimulationResult]
    baseline_name: str = "No-Packing"

    def normalized_cost(self, name: str) -> float:
        return self.results[name].total_cost / self.results[self.baseline_name].total_cost

    def end_to_end_table(self, title: str) -> ExperimentTable:
        """The Table 13/14-shaped summary."""
        rows = []
        for name, res in self.results.items():
            rows.append(
                (
                    name,
                    round(res.total_cost, 2),
                    percent(self.normalized_cost(name)),
                    round(res.tasks_per_instance, 2),
                    round(res.mean_normalized_tput(), 2),
                    round(res.mean_jct_hours(), 2),
                    round(res.mean_idle_hours(), 2),
                )
            )
        return ExperimentTable(
            title=title,
            headers=(
                "Scheduler",
                "Total Cost ($)",
                "Norm. Cost",
                "Tasks/Instance",
                "Norm. Job Tput",
                "JCT (hours)",
                "Job Idle (hours)",
            ),
            rows=tuple(rows),
        )

    def allocation_table(self, title: str) -> ExperimentTable:
        """The Table 10/11-shaped summary with resource allocation."""
        rows = []
        for name, res in self.results.items():
            rows.append(
                (
                    name,
                    round(res.total_cost, 2),
                    percent(self.normalized_cost(name)),
                    res.instances_launched,
                    round(res.migrations_per_task(), 2),
                    percent(res.allocation["gpus"]),
                    percent(res.allocation["cpus"]),
                    percent(res.allocation["ram_gb"]),
                )
            )
        return ExperimentTable(
            title=title,
            headers=(
                "Scheduler",
                "Total Cost ($)",
                "Norm. Cost",
                "Instances",
                "Migr./Task",
                "GPU Alloc",
                "CPU Alloc",
                "RAM Alloc",
            ),
            rows=tuple(rows),
        )


def compare_schedulers(
    trace: Trace,
    factories: dict[str, SchedulerFactory],
    interference: InterferenceModel | None = None,
    delay_model: DelayModel | None = None,
    period_s: float = DEFAULT_PERIOD_S,
    validate: bool = False,
) -> ComparisonResult:
    """Run ``trace`` under every scheduler factory and bundle the results."""
    results: dict[str, SimulationResult] = {}
    for name, factory in factories.items():
        scheduler = factory()
        results[name] = run_simulation(
            trace,
            scheduler,
            interference=interference,
            delay_model=delay_model,
            period_s=period_s,
            validate=validate,
        )
    return ComparisonResult(trace_name=trace.name, results=results)
