"""Multi-scheduler comparison harness.

The evaluation repeatedly runs the same trace under several schedulers and
reports costs normalized against No-Packing (§6.1 "Metrics").  This module
packages that loop, including fresh-scheduler construction per run (the
schedulers are stateful learners) and the standard end-to-end table shape.

Scheduler grids are expressed as ``{display name: registry name}`` (see
:func:`repro.core.make_scheduler`) and executed through
:func:`repro.sim.batch.run_batch`, so a comparison fans out over
``EVA_BENCH_WORKERS`` processes; ``{display name: callable}`` grids are
still accepted and run serially in-process (callables don't pickle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.analysis.reporting import ExperimentTable, percent
from repro.cloud.delays import DelayModel
from repro.core.interfaces import Scheduler
from repro.interference.model import InterferenceModel
from repro.sim.batch import Scenario, TraceSpec, run_batch
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import DEFAULT_PERIOD_S, run_simulation
from repro.workloads.trace import Trace

SchedulerFactory = Callable[[], Scheduler]

#: The five evaluation schedulers (§6.1), display name → registry name.
STANDARD_SCHEDULERS: dict[str, str] = {
    "No-Packing": "no-packing",
    "Stratus": "stratus",
    "Synergy": "synergy",
    "Owl": "owl",
    "Eva": "eva",
}


def standard_scheduler_names() -> dict[str, str]:
    """A fresh copy of the standard display-name → registry-name grid."""
    return dict(STANDARD_SCHEDULERS)


def standard_scheduler_factories(
    catalog,
    interference: InterferenceModel | None = None,
    delay_model: DelayModel | None = None,
) -> dict[str, SchedulerFactory]:
    """The five evaluation schedulers as in-process factories.

    Owl receives the ground-truth pairwise profile (§6.1 provides the
    co-location profile exclusively to Owl).  Prefer
    :func:`standard_scheduler_names` for anything batch-shaped — these
    closures don't pickle.
    """
    from repro.core import make_scheduler

    def factory_for(registry_name: str) -> SchedulerFactory:
        return lambda: make_scheduler(
            registry_name,
            catalog,
            interference=interference,
            delay_model=delay_model,
        )

    return {
        display: factory_for(registry_name)
        for display, registry_name in STANDARD_SCHEDULERS.items()
    }


@dataclass
class ComparisonResult:
    """Results of one trace under several schedulers."""

    trace_name: str
    results: dict[str, SimulationResult]
    baseline_name: str = "No-Packing"

    def normalized_cost(self, name: str) -> float:
        return self.results[name].total_cost / self.results[self.baseline_name].total_cost

    def end_to_end_table(self, title: str) -> ExperimentTable:
        """The Table 13/14-shaped summary."""
        rows = []
        for name, res in self.results.items():
            rows.append(
                (
                    name,
                    round(res.total_cost, 2),
                    percent(self.normalized_cost(name)),
                    round(res.tasks_per_instance, 2),
                    round(res.mean_normalized_tput(), 2),
                    round(res.mean_jct_hours(), 2),
                    round(res.mean_idle_hours(), 2),
                )
            )
        return ExperimentTable(
            title=title,
            headers=(
                "Scheduler",
                "Total Cost ($)",
                "Norm. Cost",
                "Tasks/Instance",
                "Norm. Job Tput",
                "JCT (hours)",
                "Job Idle (hours)",
            ),
            rows=tuple(rows),
        )

    def allocation_table(self, title: str) -> ExperimentTable:
        """The Table 10/11-shaped summary with resource allocation."""
        rows = []
        for name, res in self.results.items():
            rows.append(
                (
                    name,
                    round(res.total_cost, 2),
                    percent(self.normalized_cost(name)),
                    res.instances_launched,
                    round(res.migrations_per_task(), 2),
                    percent(res.allocation["gpus"]),
                    percent(res.allocation["cpus"]),
                    percent(res.allocation["ram_gb"]),
                )
            )
        return ExperimentTable(
            title=title,
            headers=(
                "Scheduler",
                "Total Cost ($)",
                "Norm. Cost",
                "Instances",
                "Migr./Task",
                "GPU Alloc",
                "CPU Alloc",
                "RAM Alloc",
            ),
            rows=tuple(rows),
        )


def comparison_scenarios(
    trace: Trace | TraceSpec,
    schedulers: Mapping[str, str] | None = None,
    interference: InterferenceModel | None = None,
    delay_model: DelayModel | None = None,
    period_s: float = DEFAULT_PERIOD_S,
    validate: bool = False,
    seed: int = 0,
) -> list[Scenario]:
    """The scenario list of a comparison: one per display name.

    This is the declarative half of :func:`compare_schedulers` — the
    experiment registry builds grids from it and hands execution to the
    (cache-aware, parallel) batch layer.  ``schedulers`` maps display
    names to registry names; ``None`` means the standard five.
    """
    if schedulers is None:
        schedulers = standard_scheduler_names()
    return [
        Scenario(
            scheduler=registry_name,
            trace=trace,
            name=display,
            interference=interference,
            delay_model=delay_model,
            period_s=period_s,
            validate=validate,
            seed=seed,
        )
        for display, registry_name in schedulers.items()
    ]


def comparison_from_results(
    trace: Trace | TraceSpec,
    results: Mapping[str, SimulationResult],
    baseline_name: str = "No-Packing",
) -> ComparisonResult:
    """Bundle per-display results into a :class:`ComparisonResult`."""
    results = dict(results)
    if isinstance(trace, Trace):
        trace_name = trace.name
    elif results:
        trace_name = next(iter(results.values())).trace_name
    else:
        trace_name = f"{trace.builder}-spec"
    return ComparisonResult(
        trace_name=trace_name, results=results, baseline_name=baseline_name
    )


def compare_schedulers(
    trace: Trace | TraceSpec,
    factories: Mapping[str, SchedulerFactory | str] | None = None,
    interference: InterferenceModel | None = None,
    delay_model: DelayModel | None = None,
    period_s: float = DEFAULT_PERIOD_S,
    validate: bool = False,
    workers: int | None = None,
    store=None,
    seed: int = 0,
) -> ComparisonResult:
    """Run ``trace`` under every scheduler and bundle the results.

    ``trace`` may be an inline :class:`Trace` or a
    :class:`~repro.sim.batch.TraceSpec` — pass a spec for large traces
    so workers rebuild it instead of unpickling one copy per scheduler.
    ``factories`` maps display names to either scheduler *registry names*
    (strings — the preferred form: those comparisons are expressed as
    :class:`~repro.sim.batch.Scenario` lists and fan out over
    ``EVA_BENCH_WORKERS``/``workers`` processes) or zero-argument
    callables (run serially in-process).  ``None`` means the standard
    five-scheduler grid.  ``store`` is an optional
    :class:`~repro.sim.results.ResultStore`; cached scenarios are served
    without re-simulating (callable-backed entries never cache).
    """
    if factories is None:
        factories = standard_scheduler_names()
    results: dict[str, SimulationResult] = {}

    named = {
        display: ref for display, ref in factories.items() if isinstance(ref, str)
    }
    scenarios = comparison_scenarios(
        trace,
        named,
        interference=interference,
        delay_model=delay_model,
        period_s=period_s,
        validate=validate,
        seed=seed,
    )
    for outcome in run_batch(scenarios, workers=workers, store=store):
        results[outcome.scenario.name] = outcome.result

    has_callables = any(not isinstance(ref, str) for ref in factories.values())
    if has_callables:
        concrete = trace if isinstance(trace, Trace) else trace.build()
        for display, ref in factories.items():
            if isinstance(ref, str):
                continue
            results[display] = run_simulation(
                concrete,
                ref(),
                interference=interference,
                delay_model=delay_model,
                period_s=period_s,
                validate=validate,
            )

    # Preserve the caller's grid order (normalization tables iterate it).
    results = {display: results[display] for display in factories}
    return comparison_from_results(trace, results)
