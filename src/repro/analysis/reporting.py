"""Plain-text table and CDF rendering for experiment outputs.

Every experiment driver returns an :class:`ExperimentTable`; benchmarks
and examples print them with :func:`render_table`, producing the same
rows/series the paper's tables and figures report.  Tables also export
to JSON (:meth:`ExperimentTable.to_json`) and CSV
(:meth:`ExperimentTable.to_csv`) — the CLI's ``--format`` backends —
and both round-trip losslessly through :meth:`ExperimentTable.from_json`
/ :meth:`ExperimentTable.from_csv`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np


def _plain_cell(value: Any) -> Any:
    """Cell value as a JSON/CSV-encodable plain Python scalar."""
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def parse_cell(text: str) -> Any:
    """Invert ``str(cell)`` for the scalar types tables actually hold."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    if text in ("True", "False"):
        return text == "True"
    if text == "None":
        return None
    return text


@dataclass(frozen=True)
class ExperimentTable:
    """A titled table of experiment results."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: tuple[str, ...] = field(default=())

    def column(self, name: str) -> list:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return render_table(self.title, self.headers, self.rows, self.notes)

    # ------------------------------------------------------------------
    # Structured export (the CLI's --format json/csv backends)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        """A JSON-encodable dict of this table (cells as plain scalars)."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_plain_cell(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_json(cls, payload: str | Mapping) -> "ExperimentTable":
        data = json.loads(payload) if isinstance(payload, str) else payload
        return cls(
            title=data["title"],
            headers=tuple(data["headers"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            notes=tuple(data.get("notes", ())),
        )

    def to_csv(self) -> str:
        """RFC-4180 CSV: a header row then one row per result row.

        The title and notes are not part of the CSV payload (they carry
        no column structure); pass them back to :meth:`from_csv` when a
        lossless round-trip matters, or use JSON which keeps everything.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow([_plain_cell(v) for v in row])
        return buffer.getvalue()

    @classmethod
    def from_csv(
        cls,
        payload: str,
        title: str = "",
        notes: Sequence[str] = (),
    ) -> "ExperimentTable":
        """Parse :meth:`to_csv` output (numeric cells regain their type)."""
        parsed = list(csv.reader(io.StringIO(payload)))
        if not parsed:
            raise ValueError("empty CSV payload")
        return cls(
            title=title,
            headers=tuple(parsed[0]),
            rows=tuple(
                tuple(parse_cell(cell) for cell in row) for row in parsed[1:]
            ),
            notes=tuple(notes),
        )


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned, boxed plain-text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, "=" * len(title), line(headers), sep]
    out.extend(line(row) for row in cells)
    for note in notes:
        out.append(f"  note: {note}")
    return "\n".join(out)


def render_cdf(
    title: str,
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    points: int = 10,
) -> str:
    """Render CDF series (e.g. Figure 3's instance uptimes) as rows.

    Each series is (x values, cumulative fractions); the output samples
    ``points`` quantile levels per series.
    """
    headers = ("series",) + tuple(f"p{int(q * 100)}" for q in _quantiles(points))
    rows = []
    for name, (xs, ys) in series.items():
        if len(xs) == 0:
            rows.append((name,) + ("-",) * points)
            continue
        values = tuple(
            float(np.interp(q, ys, xs)) for q in _quantiles(points)
        )
        rows.append((name,) + values)
    return render_table(title, headers, rows)


def _quantiles(points: int) -> tuple[float, ...]:
    return tuple(np.linspace(0.1, 1.0, points))


def percent(value: float) -> str:
    """Format a ratio as a percent string (0.754 → '75.4%')."""
    return f"{value * 100:.1f}%"
