"""Plain-text table and CDF rendering for experiment outputs.

Every experiment driver returns an :class:`ExperimentTable`; benchmarks
and examples print them with :func:`render_table`, producing the same
rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ExperimentTable:
    """A titled table of experiment results."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: tuple[str, ...] = field(default=())

    def column(self, name: str) -> list:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return render_table(self.title, self.headers, self.rows, self.notes)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned, boxed plain-text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, "=" * len(title), line(headers), sep]
    out.extend(line(row) for row in cells)
    for note in notes:
        out.append(f"  note: {note}")
    return "\n".join(out)


def render_cdf(
    title: str,
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    points: int = 10,
) -> str:
    """Render CDF series (e.g. Figure 3's instance uptimes) as rows.

    Each series is (x values, cumulative fractions); the output samples
    ``points`` quantile levels per series.
    """
    headers = ("series",) + tuple(f"p{int(q * 100)}" for q in _quantiles(points))
    rows = []
    for name, (xs, ys) in series.items():
        if len(xs) == 0:
            rows.append((name,) + ("-",) * points)
            continue
        values = tuple(
            float(np.interp(q, ys, xs)) for q in _quantiles(points)
        )
        rows.append((name,) + values)
    return render_table(title, headers, rows)


def _quantiles(points: int) -> tuple[float, ...]:
    return tuple(np.linspace(0.1, 1.0, points))


def percent(value: float) -> str:
    """Format a ratio as a percent string (0.754 → '75.4%')."""
    return f"{value * 100:.1f}%"
