"""Determinism rules: unordered iteration and banned nondeterminism.

These two rules statically enforce the byte-identity contract of the
golden digest matrices (``tests/test_golden_digests.py``): the
*result-affecting core* — :mod:`repro.core`, :mod:`repro.sim`,
:mod:`repro.cloud`, :mod:`repro.cluster`, :mod:`repro.interference` —
must produce identical :class:`~repro.sim.metrics.SimulationResult`
bytes for identical scenarios, across processes and
``PYTHONHASHSEED`` values.

**unordered-iteration** (the PR 1 bug class): iterating a ``set`` /
``frozenset`` / ``dict.keys()`` view in a ``for`` loop, a list/dict
comprehension, or an order-sensitive consumer (``list``, ``tuple``,
``max``, ``min``, ``sum``) makes tie-breaks and float-addition order
depend on hash randomization.  Wrap the iterable in ``sorted()`` or
feed it to an order-insensitive consumer (``set``, ``frozenset``,
``any``, ``all``, ``len``, a set comprehension).

**banned-call**: wall-clock time, module-level RNG, ``hash()``,
``id()``, uuids and ``os.urandom`` inject process-local state into
results.  ``time.perf_counter`` stays legal (it only feeds wall-clock
*reporting* fields like ``ScenarioOutcome.elapsed_s``, never the
simulation itself), as do explicitly seeded constructors
(``np.random.default_rng(seed)``) and ``hash()`` inside a ``__hash__``
definition delegating to a stable field.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.visitor import ModuleFacts

__all__ = [
    "RESULT_AFFECTING_PREFIXES",
    "check_banned_calls",
    "check_unordered_iteration",
    "in_result_affecting_core",
]

#: Repo-relative path prefixes of the result-affecting core.
RESULT_AFFECTING_PREFIXES = (
    "src/repro/core/",
    "src/repro/sim/",
    "src/repro/cloud/",
    "src/repro/cluster/",
    "src/repro/interference/",
)


def in_result_affecting_core(path: str) -> bool:
    return path.startswith(RESULT_AFFECTING_PREFIXES)


# ---------------------------------------------------------------------------
# Rule: unordered-iteration
# ---------------------------------------------------------------------------


def check_unordered_iteration(facts: ModuleFacts) -> list[Finding]:
    """Flag order-sensitive iteration over statically set-typed values."""
    if not in_result_affecting_core(facts.source.path):
        return []
    findings: list[Finding] = []
    for event in facts.iterations:
        if not event.set_typed:
            continue
        findings.append(
            Finding(
                rule="unordered-iteration",
                path=facts.source.path,
                line=event.line,
                message=(
                    f"{event.context} iterates a set-typed value "
                    f"({event.evidence}); iteration order follows hash "
                    "randomization — wrap in sorted() or use an "
                    "order-insensitive consumer"
                ),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Rule: banned-call
# ---------------------------------------------------------------------------

#: Exact dotted names that are always nondeterministic.
_BANNED_EXACT = {
    "time.time": "wall-clock time is process-local",
    "time.time_ns": "wall-clock time is process-local",
    "datetime.datetime.now": "wall-clock time is process-local",
    "datetime.datetime.utcnow": "wall-clock time is process-local",
    "os.urandom": "OS entropy is unseedable",
    "secrets.token_hex": "OS entropy is unseedable",
    "secrets.token_bytes": "OS entropy is unseedable",
    "id": "CPython object addresses vary per process",
}

#: Dotted-name prefixes banned wholesale (module-level / global RNG and
#: uuids), with per-prefix carve-outs for seeded constructors.
_BANNED_PREFIXES: tuple[tuple[str, frozenset[str], str], ...] = (
    (
        "random.",
        frozenset({"Random"}),
        "the random module's global RNG is process-local state",
    ),
    ("uuid.", frozenset(), "uuids embed clock/entropy"),
    (
        "np.random.",
        frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"}),
        "numpy's legacy global RNG is process-local state",
    ),
    (
        "numpy.random.",
        frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"}),
        "numpy's legacy global RNG is process-local state",
    ),
)


def check_banned_calls(facts: ModuleFacts) -> list[Finding]:
    """Flag calls whose results differ across processes or runs."""
    if not in_result_affecting_core(facts.source.path):
        return []
    findings: list[Finding] = []
    for call in facts.calls:
        reason = _ban_reason(call.name, call.enclosing)
        if reason is None:
            continue
        findings.append(
            Finding(
                rule="banned-call",
                path=facts.source.path,
                line=call.line,
                message=(
                    f"call to {call.name}() in the result-affecting core: "
                    f"{reason}; results must depend only on scenario "
                    "fields and seeds"
                ),
            )
        )
    return findings


def _ban_reason(name: str, enclosing: str) -> str | None:
    if name == "hash":
        if enclosing == "__hash__":
            # Delegating __hash__ to a stable field is the standard
            # idiom; only *consuming* hash() for keys/ordering is banned.
            return None
        return "hash() is randomized by PYTHONHASHSEED"
    exact = _BANNED_EXACT.get(name)
    if exact is not None:
        return exact
    for prefix, allowed, reason in _BANNED_PREFIXES:
        if name.startswith(prefix):
            suffix = name[len(prefix) :]
            if suffix.split(".", maxsplit=1)[0] in allowed:
                return None
            return reason
    return None
