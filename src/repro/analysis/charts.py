"""ASCII charts for figure-style experiment outputs.

The paper's Figures 4–8 are line charts (normalized cost vs a swept
parameter, one series per scheduler).  This module renders the same
series as terminal plots so sweep results can be eyeballed without a
plotting stack:

>>> print(line_chart(
...     "demo",
...     x_values=[1, 2, 3],
...     series={"Eva": [0.9, 0.8, 0.7]},
...     y_label="norm cost",
... ))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Marker characters assigned to series in insertion order.
_MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    """Map ``value`` in [lo, hi] onto 0..steps (clamped)."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps, max(0, round(frac * steps)))


def line_chart(
    title: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x-values as an ASCII plot.

    Args:
        title: Chart heading.
        x_values: Swept parameter values (ascending or descending).
        series: name → y-values, one per x-value.
        width: Plot-area columns.
        height: Plot-area rows.
        y_label: Y-axis caption.
    """
    if not x_values:
        raise ValueError("x_values must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x-values"
            )
    if not series:
        raise ValueError("need at least one series")

    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:  # flat chart: pad the range so the line is visible
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    x_lo, x_hi = min(x_values), max(x_values)

    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(x_values, ys):
            col = _scale(x, x_lo, x_hi, width)
            row = height - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines = [title, "=" * len(title)]
    label = f"{y_label} " if y_label else ""
    top = f"{y_hi:8.3f} |"
    bottom = f"{y_lo:8.3f} |"
    margin = " " * len(top)
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top
        elif row_idx == height:
            prefix = bottom
        else:
            prefix = margin[:-1] + "|"
        lines.append(prefix + "".join(row))
    lines.append(margin[:-1] + "+" + "-" * (width + 1))
    lines.append(
        margin + f"{x_lo:<12g}{'':^{max(0, width - 24)}}{x_hi:>12g}"
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(margin + legend)
    if y_label:
        lines.insert(2, f"  y: {y_label}")
    return "\n".join(lines)


def sweep_chart(
    title: str,
    norm_cost: Mapping[tuple[str, float], float],
    y_label: str = "normalized total cost",
) -> str:
    """Chart a ``{(scheduler, x): cost}`` sweep result (Figures 4–8).

    The x-axis is the swept parameter; one series per scheduler, ordered
    by first appearance.
    """
    if not norm_cost:
        raise ValueError("empty sweep result")
    schedulers: list[str] = []
    xs: list[float] = []
    for scheduler, x in norm_cost:
        if scheduler not in schedulers:
            schedulers.append(scheduler)
        if x not in xs:
            xs.append(x)
    xs.sort()
    series = {
        scheduler: [norm_cost[(scheduler, x)] for x in xs]
        for scheduler in schedulers
        if all((scheduler, x) in norm_cost for x in xs)
    }
    return line_chart(title, xs, series, y_label=y_label)
