"""Shared single-pass AST visitor and the facts it extracts.

Every AST-based rule in :mod:`repro.analysis` consumes the output of ONE
walk over each source file — a :class:`ModuleFacts` record — instead of
re-traversing the tree per rule.  The walk collects:

* **Iteration events** — every spot whose behaviour depends on the
  iteration order of its iterable (``for`` statements, comprehension
  generators, order-sensitive consumer calls like ``max``/``min``/
  ``list``/``tuple``/``sum``), together with whether the iterable is
  *statically known to be set-typed* and whether the surrounding context
  is order-insensitive (``sorted``/``set``/``frozenset``/``any``/``all``
  consumers, set comprehensions).
* **Call events** — every call with a resolvable dotted name, for the
  banned-nondeterminism rule.
* **Class facts** — every class definition with its base names, declared
  ``action_types`` vocabulary, protocol-action constructions, and
  attribute reads, for the vocabulary/purity rules.

Set-typedness is deliberately syntactic (no type inference engine): set
displays and comprehensions, ``set``/``frozenset`` calls, set-operator
expressions, ``dict.keys()`` views, attributes/methods known to be
set-valued in this codebase (``task_ids``, ``assigned_task_ids()``,
``instance_ids()``), names assigned from any of those in the same
function scope, and names narrowed by an enclosing
``isinstance(x, (set, frozenset))`` guard.  False negatives are
possible; false positives are rare by construction, and that is the
right trade for a gate that must stay green.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import SuppressionIndex

__all__ = [
    "ATTR_SET_NAMES",
    "CallEvent",
    "ClassFacts",
    "IterationEvent",
    "METHOD_SET_NAMES",
    "ModuleFacts",
    "SourceFile",
    "collect_facts",
    "dotted_name",
]

#: Attributes that are set-typed wherever they appear in this codebase
#: (``InstanceState.task_ids`` / ``TargetInstance.task_ids`` are
#: ``frozenset[str]``).
ATTR_SET_NAMES = frozenset({"task_ids"})

#: Zero/low-arg methods whose return value is a set or set-like view.
METHOD_SET_NAMES = frozenset(
    {
        "keys",
        "assigned_task_ids",
        "instance_ids",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
    }
)

#: Builtins whose call is set-typed when applied to anything.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Consumers whose result does not depend on the argument's iteration
#: order (``sorted`` imposes one; ``set``/``frozenset`` discard it;
#: ``any``/``all``/``len`` reduce order-insensitively).
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "set", "frozenset", "any", "all", "len"}
)

#: Consumers whose result (or observable effect) depends on iteration
#: order: ``list``/``tuple`` preserve it, ``max``/``min`` break ties by
#: encounter order, float ``sum`` is non-associative.
ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "max", "min", "sum"})


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True, slots=True)
class SourceFile:
    """One parsed source file plus its suppression comments."""

    path: str
    text: str
    tree: ast.Module
    suppressions: SuppressionIndex

    @classmethod
    def from_text(cls, text: str, path: str) -> "SourceFile":
        return cls(
            path=path,
            text=text,
            tree=ast.parse(text),
            suppressions=SuppressionIndex.scan(text, path),
        )

    @classmethod
    def load(cls, file_path: Path, display_path: str) -> "SourceFile":
        return cls.from_text(file_path.read_text(encoding="utf-8"), display_path)


@dataclass(frozen=True, slots=True)
class IterationEvent:
    """One order-sensitive iteration over some iterable expression."""

    line: int
    #: ``"for"``, ``"comprehension"``, ``"dict-comprehension"`` or the
    #: consumer callable's name (``"max"``, ``"list"``, ...).
    context: str
    #: The iterable is statically known to be a set/frozenset/dict-view.
    set_typed: bool
    #: Human-readable description of why the iterable is set-typed.
    evidence: str


@dataclass(frozen=True, slots=True)
class CallEvent:
    """One call with a statically resolvable dotted callee name."""

    line: int
    name: str
    #: Name of the innermost enclosing function ("" at module level) —
    #: lets rules carve out idioms like ``hash()`` inside ``__hash__``.
    enclosing: str


@dataclass(slots=True)
class ClassFacts:
    """Facts about one class definition."""

    name: str
    line: int
    base_names: tuple[str, ...]
    #: Names inside a ``action_types = frozenset({...})`` declaration;
    #: None when the class either declares no vocabulary or explicitly
    #: declares ``action_types = None`` (unrestricted) — the two are
    #: told apart by :attr:`declares_action_types`.
    action_types: tuple[str, ...] | None
    #: True when the class body assigns ``action_types`` at all.
    declares_action_types: bool
    #: Protocol action constructions inside the class body:
    #: ``(line, action name)``.
    action_constructions: list[tuple[int, str]] = field(default_factory=list)
    #: Attribute reads inside the class body: ``(line, attr, root)``
    #: where root is the base variable name ("snapshot", "self", ...) or
    #: "" when the base is a non-trivial expression.
    attribute_reads: list[tuple[int, str, str]] = field(default_factory=list)


@dataclass(slots=True)
class ModuleFacts:
    """Everything the AST rules need, from one pass over one file."""

    source: SourceFile
    iterations: list[IterationEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)


#: The five protocol action type names (kept as plain strings so the
#: visitor never imports the scheduler stack).
ACTION_TYPE_NAMES = frozenset(
    {"LaunchInstance", "TerminateInstance", "AssignTask", "UnassignTask", "MigrateTask"}
)


class _FactsVisitor(ast.NodeVisitor):
    """The single shared pass (see module docstring)."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        #: Stack of per-function sets of set-typed local names.
        self._scopes: list[set[str]] = [set()]
        #: Comprehension/call argument nodes already consumed by an
        #: order-insensitive consumer; their generators are exempt.
        self._insensitive_args: set[int] = set()
        self._class_stack: list[ClassFacts] = []
        self._func_names: list[str] = []

    # -- set-typedness ---------------------------------------------------
    def _is_set_typed(self, node: ast.expr) -> tuple[bool, str]:
        if isinstance(node, ast.Set):
            return True, "set display"
        if isinstance(node, ast.SetComp):
            return True, "set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True, f"{func.id}() call"
            if isinstance(func, ast.Attribute) and func.attr in METHOD_SET_NAMES:
                return True, f".{func.attr}() call"
        if isinstance(node, ast.Attribute) and node.attr in ATTR_SET_NAMES:
            return True, f".{node.attr} attribute"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left, evidence = self._is_set_typed(node.left)
            if left:
                return True, f"set operator over {evidence}"
            right, evidence = self._is_set_typed(node.right)
            if right:
                return True, f"set operator over {evidence}"
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return True, f"local {node.id!r} holds a set"
        return False, ""

    def _record_iteration(self, iterable: ast.expr, context: str) -> None:
        set_typed, evidence = self._is_set_typed(iterable)
        self.facts.iterations.append(
            IterationEvent(
                line=iterable.lineno,
                context=context,
                set_typed=set_typed,
                evidence=evidence,
            )
        )

    def _mark_set_name(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            set_typed, _ = self._is_set_typed(value)
            if set_typed:
                self._scopes[-1].add(target.id)
            else:
                self._scopes[-1].discard(target.id)

    @staticmethod
    def _isinstance_set_guard(test: ast.expr) -> str | None:
        """The narrowed name for ``isinstance(x, (set, frozenset))``-style
        tests, else None."""
        if not (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
            and len(test.args) == 2
            and isinstance(test.args[0], ast.Name)
        ):
            return None
        kinds = test.args[1]
        names: list[ast.expr] = (
            list(kinds.elts) if isinstance(kinds, ast.Tuple) else [kinds]
        )
        for kind in names:
            if isinstance(kind, ast.Name) and kind.id in _SET_CONSTRUCTORS:
                return test.args[0].id
        return None

    # -- scope handling --------------------------------------------------
    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._scopes.append(set())
        self._func_names.append(node.name)
        self.generic_visit(node)
        self._func_names.pop()
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._mark_set_name(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._mark_set_name(node.target, node.value)

    def visit_If(self, node: ast.If) -> None:
        narrowed = self._isinstance_set_guard(node.test)
        self.visit(node.test)
        if narrowed is not None:
            self._scopes[-1].add(narrowed)
        for stmt in node.body:
            self.visit(stmt)
        if narrowed is not None:
            self._scopes[-1].discard(narrowed)
        for stmt in node.orelse:
            self.visit(stmt)

    # -- iteration sites -------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._record_iteration(node.iter, "for")
        self.generic_visit(node)

    def _visit_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
    ) -> None:
        order_insensitive = (
            isinstance(node, ast.SetComp) or id(node) in self._insensitive_args
        )
        for index, gen in enumerate(node.generators):
            # Nested generators reorder output even under an insensitive
            # consumer only via the first generator's order; deeper
            # generators matter too, so exempt all or none.
            if not order_insensitive:
                context = (
                    "dict-comprehension"
                    if isinstance(node, ast.DictComp)
                    else "comprehension"
                )
                self._record_iteration(gen.iter, context)
            # Comprehension targets live in their own scope; a set-typed
            # iterable does not make the loop variable set-typed.
            del index
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self.facts.calls.append(
                CallEvent(
                    line=node.lineno,
                    name=name,
                    enclosing=self._func_names[-1] if self._func_names else "",
                )
            )
            base = name.rsplit(".", maxsplit=1)[-1]
            if base in ORDER_INSENSITIVE_CONSUMERS and node.args:
                self._insensitive_args.add(id(node.args[0]))
            elif base in ORDER_SENSITIVE_CONSUMERS and node.args:
                first = node.args[0]
                if not isinstance(
                    first,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                ):
                    # Comprehension args are recorded by their own visit;
                    # a bare set-typed argument is recorded here.
                    set_typed, evidence = self._is_set_typed(first)
                    if set_typed:
                        self.facts.iterations.append(
                            IterationEvent(
                                line=node.lineno,
                                context=base,
                                set_typed=True,
                                evidence=evidence,
                            )
                        )
            if (
                base in ACTION_TYPE_NAMES
                and self._class_stack
                and "." not in name
            ):
                self._class_stack[-1].action_constructions.append(
                    (node.lineno, base)
                )
        self.generic_visit(node)

    # -- classes ---------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        declared, declares = _declared_action_types(node)
        facts = ClassFacts(
            name=node.name,
            line=node.lineno,
            base_names=tuple(
                name
                for name in (dotted_name(base) for base in node.bases)
                if name is not None
            ),
            action_types=declared,
            declares_action_types=declares,
        )
        self.facts.classes.append(facts)
        self._class_stack.append(facts)
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()
        self._class_stack.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._class_stack and isinstance(node.ctx, ast.Load):
            root = node.value.id if isinstance(node.value, ast.Name) else ""
            self._class_stack[-1].attribute_reads.append(
                (node.lineno, node.attr, root)
            )
        self.generic_visit(node)


def _declared_action_types(
    node: ast.ClassDef,
) -> tuple[tuple[str, ...] | None, bool]:
    """``(names, declared)`` for a class-level ``action_types`` binding.

    ``((...), True)`` for ``action_types = frozenset({...})``;
    ``(None, True)`` for an explicit ``action_types = None``
    (unrestricted); ``(None, False)`` when the class body never assigns
    the attribute.
    """
    for stmt in node.body:
        targets: list[ast.expr]
        value: ast.expr | None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if value is None or not any(
            isinstance(t, ast.Name) and t.id == "action_types" for t in targets
        ):
            continue
        if isinstance(value, ast.Constant) and value.value is None:
            return None, True
        names: list[str] = []
        for inner in ast.walk(value):
            if isinstance(inner, ast.Name) and inner.id not in (
                "frozenset",
                "set",
            ):
                names.append(inner.id)
        return tuple(names), True
    return None, False


def collect_facts(source: SourceFile) -> ModuleFacts:
    """Run the shared pass over one file."""
    facts = ModuleFacts(source=source)
    _FactsVisitor(facts).visit(source.tree)
    return facts
