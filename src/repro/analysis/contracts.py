"""Protocol-contract rules: action vocabulary and observation purity.

The typed action/observation protocol (:mod:`repro.core.protocol`, PR 4)
gives every scheduler a declared surface:

* **action-vocabulary**: a scheduler that declares
  ``action_types = frozenset({...})`` promises the environment it will
  only ever emit those action types — the simulator and runtime master
  use the declaration for conformance checks and capability routing.  A
  construction of an undeclared action type inside the class body is a
  contract violation the dynamic check would only catch when that code
  path executes.
* **observation-purity**: information the protocol delivers through the
  observation channel must not be sniffed off the cluster snapshot.
  Concretely: scheduler code must not read ``Job.deadline_hours``
  (deadline pressure arrives as
  :class:`~repro.core.protocol.DeadlineApproaching` observations with a
  ``deadline_s`` payload — see :mod:`repro.core.deadline`), and must not
  reach into underscore-private attributes of non-``self`` objects
  (snapshot internals, environment state).  Purity keeps schedulers
  replayable from the recorded observation stream alone.

Both rules work from the project-wide class index built by the shared
visitor pass, resolving inheritance by class name: a class is a
scheduler iff its base-name chain reaches ``Scheduler``, and its
effective vocabulary is the nearest ``action_types`` declaration up that
chain (``None`` anywhere means unrestricted).
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.visitor import ClassFacts, ModuleFacts

__all__ = [
    "ClassIndex",
    "check_action_vocabulary",
    "check_observation_purity",
]

#: The scheduler ABC; subclassing (transitively) makes a class subject
#: to both contract rules.
_SCHEDULER_ROOT = "Scheduler"

#: Snapshot attributes reserved for the observation channel, mapped to
#: the observation that carries the information.
_RESERVED_SNAPSHOT_ATTRS = {
    "deadline_hours": "DeadlineApproaching (field: deadline_s)",
}

#: Attribute-read roots that refer to the scheduler's own state.
_OWN_ROOTS = frozenset({"self", "cls"})


class ClassIndex:
    """Project-wide name → class-facts index for inheritance resolution.

    Class names are assumed unique across the scanned tree (true for
    this codebase; a collision would only blur inheritance resolution,
    never crash).
    """

    def __init__(self, modules: list[ModuleFacts]) -> None:
        self._by_name: dict[str, tuple[ClassFacts, str]] = {}
        for facts in modules:
            for cls in facts.classes:
                self._by_name.setdefault(cls.name, (cls, facts.source.path))

    def _base_chain(self, cls: ClassFacts) -> list[ClassFacts]:
        """BFS over the base-name chain, nearest bases first."""
        chain: list[ClassFacts] = []
        seen = {cls.name}
        queue = [cls]
        while queue:
            current = queue.pop(0)
            chain.append(current)
            for base in current.base_names:
                name = base.rsplit(".", maxsplit=1)[-1]
                if name in seen:
                    continue
                seen.add(name)
                entry = self._by_name.get(name)
                if entry is not None:
                    queue.append(entry[0])
        return chain

    def is_scheduler(self, cls: ClassFacts) -> bool:
        if cls.name == _SCHEDULER_ROOT:
            return False  # the ABC itself is protocol code, not a policy
        chain = self._base_chain(cls)
        names = {c.name for c in chain}
        if _SCHEDULER_ROOT in names:
            return True
        # The root may live outside the scanned tree; fall back to the
        # base *names* appearing anywhere in the chain.
        return any(
            base.rsplit(".", maxsplit=1)[-1] == _SCHEDULER_ROOT
            for c in chain
            for base in c.base_names
        )

    def vocabulary(self, cls: ClassFacts) -> tuple[str, ...] | None:
        """Nearest ``action_types`` declaration up the base chain.

        Returns ``None`` (unrestricted) when no class in the chain
        declares a vocabulary, or when the nearest declaration is an
        explicit ``action_types = None``.
        """
        for current in self._base_chain(cls):
            if current.declares_action_types:
                return current.action_types
        return None


# ---------------------------------------------------------------------------
# Rule: action-vocabulary
# ---------------------------------------------------------------------------


def check_action_vocabulary(
    facts: ModuleFacts, index: ClassIndex
) -> list[Finding]:
    """Flag action constructions outside the declared vocabulary."""
    findings: list[Finding] = []
    for cls in facts.classes:
        if not index.is_scheduler(cls):
            continue
        vocabulary = index.vocabulary(cls)
        if vocabulary is None:
            continue  # no declaration anywhere: unrestricted by design
        declared = set(vocabulary)
        for line, action in cls.action_constructions:
            if action in declared:
                continue
            findings.append(
                Finding(
                    rule="action-vocabulary",
                    path=facts.source.path,
                    line=line,
                    message=(
                        f"{cls.name} constructs {action} but declares "
                        f"action_types = {{{', '.join(sorted(declared))}}}; "
                        "extend the declaration or drop the action"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Rule: observation-purity
# ---------------------------------------------------------------------------


def check_observation_purity(
    facts: ModuleFacts, index: ClassIndex
) -> list[Finding]:
    """Flag scheduler reads of snapshot state reserved for observations."""
    findings: list[Finding] = []
    for cls in facts.classes:
        if not index.is_scheduler(cls):
            continue
        for line, attr, root in cls.attribute_reads:
            if root in _OWN_ROOTS:
                continue
            reserved = _RESERVED_SNAPSHOT_ATTRS.get(attr)
            if reserved is not None:
                findings.append(
                    Finding(
                        rule="observation-purity",
                        path=facts.source.path,
                        line=line,
                        message=(
                            f"{cls.name} reads .{attr} off the snapshot; "
                            f"that information arrives via {reserved} "
                            "observations"
                        ),
                    )
                )
            elif (
                root
                and attr.startswith("_")
                and not attr.startswith("__")
            ):
                findings.append(
                    Finding(
                        rule="observation-purity",
                        path=facts.source.path,
                        line=line,
                        message=(
                            f"{cls.name} reads private attribute "
                            f"{root}.{attr}; schedulers must use the "
                            "public snapshot/observation surface"
                        ),
                    )
                )
    return findings
