"""Runtime contract rules: fingerprint coverage and pickle omission.

Unlike the AST rules, these two execute the real config/result classes,
because the contracts they enforce are *semantic*:

**fingerprint-coverage** — every result-affecting knob must flow into
the :class:`~repro.sim.results.ResultStore` cache key.  The canonical
encoder serializes dataclass fields generically, but ``__fingerprint__``
hooks, explicit exclusions (``Scenario.fingerprint`` strips ``name``),
and underscore fields all bypass it, so field-name introspection alone
proves nothing.  Instead the rule *perturbs*: for each public,
non-excluded field of each registered config class it builds a valid
variant via ``dataclasses.replace`` and asserts the fingerprint changes.
A new knob that skips the fingerprint — or one with no registered
perturbation candidate — fails the gate, which is exactly the moment a
human must decide whether the knob is result-affecting.

**pickle-default-omission** — golden digests pin the pickled bytes of
legacy results, so result dataclasses must not grow fields that leak
into old pickles.  :class:`~repro.sim.metrics.SimulationResult` may grow
fields *only* through the ``_OMITTED_FIELD_DEFAULTS`` mechanism (dropped
from ``__getstate__`` at their legacy default); the frozen outcome
record classes pickle all fields unconditionally, so their field tuples
are pinned outright — extending one requires a deliberate pin update
plus an ``EVA_REGEN_GOLDEN=1`` decision.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.findings import Finding

__all__ = [
    "CoverageTarget",
    "check_fingerprint_coverage",
    "check_pickle_omission",
    "default_coverage_targets",
]


def _source_location(cls: type) -> tuple[str, int]:
    """Repo-relative path and definition line of ``cls`` (best effort)."""
    try:
        path = inspect.getsourcefile(cls) or ""
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return f"<{cls.__module__}>", 1
    marker = "src/repro/"
    index = path.replace("\\", "/").rfind(marker)
    if index >= 0:
        path = path.replace("\\", "/")[index:]
    return path, line


def _fingerprint_of(instance: Any) -> str:
    """The class's own fingerprint entry point, else the generic one."""
    method = getattr(instance, "fingerprint", None)
    if callable(method):
        result = method()
        if isinstance(result, str):
            return result
    from repro.sim.fingerprint import fingerprint

    return fingerprint(instance)


def _generic_candidates(value: Any) -> tuple[Any, ...]:
    """Type-driven perturbation candidates for unconstrained fields.

    Several are offered because frozen configs validate in
    ``__post_init__``; the checker keeps trying until one constructs.
    """
    if isinstance(value, bool):
        return (not value,)
    if isinstance(value, int):
        return (value + 1, max(0, value - 1) if value else 2)
    if isinstance(value, float):
        # +1.0 for unbounded knobs; halving / midpoint variants squeeze
        # inside [0, 1)-style validation windows.
        return (value + 1.0, value * 0.5, (value + 1.0) / 2.0)
    if isinstance(value, str):
        return (value + "x",)
    return ()


@dataclass(frozen=True)
class CoverageTarget:
    """One config class under the fingerprint-coverage contract.

    Attributes:
        cls: The dataclass to check.
        sample: Factory for a valid baseline instance.
        excluded: Public fields deliberately outside the fingerprint
            (cosmetic labels).  Underscore fields are excluded by the
            encoder's own convention and need no declaration.
        overrides: Per-field perturbation candidates, for fields whose
            valid values the generic rules cannot guess (nested configs,
            tuples, ``None``-defaulted optionals, tightly validated
            floats).
    """

    cls: type
    sample: Callable[[], Any]
    excluded: frozenset[str] = frozenset()
    overrides: Mapping[str, tuple[Any, ...]] = field(default_factory=dict)


def check_fingerprint_coverage(
    targets: Sequence[CoverageTarget],
) -> list[Finding]:
    """Perturb every field of every target; fingerprints must move."""
    findings: list[Finding] = []
    for target in targets:
        findings.extend(_check_one_target(target))
    return findings


def _check_one_target(target: CoverageTarget) -> list[Finding]:
    path, line = _source_location(target.cls)
    if not is_dataclass(target.cls):
        return [
            Finding(
                rule="fingerprint-coverage",
                path=path,
                line=line,
                message=f"{target.cls.__name__} is not a dataclass; the "
                "coverage contract only knows dataclass fields",
            )
        ]
    findings: list[Finding] = []
    declared = {f.name for f in fields(target.cls)}
    for name in sorted(target.excluded):
        if name not in declared:
            findings.append(
                Finding(
                    rule="fingerprint-coverage",
                    path=path,
                    line=line,
                    message=(
                        f"{target.cls.__name__} declares excluded field "
                        f"{name!r} which no longer exists; drop the stale "
                        "exclusion"
                    ),
                )
            )
    try:
        base = target.sample()
        base_fp = _fingerprint_of(base)
    except Exception as exc:
        return findings + [
            Finding(
                rule="fingerprint-coverage",
                path=path,
                line=line,
                message=(
                    f"cannot fingerprint a sample {target.cls.__name__}: "
                    f"{type(exc).__name__}: {exc}"
                ),
            )
        ]
    for f in fields(target.cls):
        if f.name.startswith("_") or f.name in target.excluded:
            continue
        current = getattr(base, f.name)
        candidates = tuple(target.overrides.get(f.name, ()))
        candidates += _generic_candidates(current)
        findings.extend(
            _check_one_field(target, base, base_fp, f.name, current, candidates, path, line)
        )
    return findings


def _check_one_field(
    target: CoverageTarget,
    base: Any,
    base_fp: str,
    name: str,
    current: Any,
    candidates: tuple[Any, ...],
    path: str,
    line: int,
) -> list[Finding]:
    constructed = False
    for candidate in candidates:
        if candidate == current:
            continue
        try:
            variant = replace(base, **{name: candidate})
            variant_fp = _fingerprint_of(variant)
        except Exception:
            continue  # validation rejected it; try the next candidate
        constructed = True
        if variant_fp != base_fp:
            return []
    if constructed:
        return [
            Finding(
                rule="fingerprint-coverage",
                path=path,
                line=line,
                message=(
                    f"{target.cls.__name__}.{name} does not affect the "
                    "fingerprint; the ResultStore would serve stale cached "
                    "results across values of this knob — route it into "
                    "the canonical encoding or declare it excluded"
                ),
            )
        ]
    return [
        Finding(
            rule="fingerprint-coverage",
            path=path,
            line=line,
            message=(
                f"no valid perturbation candidate for "
                f"{target.cls.__name__}.{name}; register one in the "
                "coverage target so the knob stays provably fingerprinted"
            ),
        )
    ]


def default_coverage_targets() -> list[CoverageTarget]:
    """The config classes under the cache-key contract (ROADMAP rule 2)."""
    from repro.cloud.catalog import paper_example_catalog
    from repro.cloud.delays import DelayModel
    from repro.cloud.market import CreditModel, MarketConfig, MarketPool
    from repro.interference.model import InterferenceModel
    from repro.sim.batch import Scenario, TraceSpec
    from repro.sim.simulator import FailureConfig, RetryPolicy, SpotConfig

    return [
        CoverageTarget(
            cls=Scenario,
            sample=lambda: Scenario(
                scheduler="eva", trace=TraceSpec.make("synthetic", num_jobs=3)
            ),
            excluded=frozenset({"name"}),
            overrides={
                "trace": (TraceSpec.make("synthetic", num_jobs=4),),
                "catalog": (tuple(paper_example_catalog()),),
                "interference": (InterferenceModel(uniform_value=0.9),),
                "delay_model": (DelayModel(migration_multiplier=2.0),),
                "spot": (SpotConfig(enabled=True),),
                "deadline_warning_s": (1234.5,),
                "failures": (
                    FailureConfig(enabled=True, crash_rate_per_hour=0.01),
                ),
                "market": (MarketConfig(enabled=True),),
            },
        ),
        CoverageTarget(
            cls=TraceSpec,
            sample=lambda: TraceSpec.make("synthetic", num_jobs=3),
            overrides={"kwargs": ((("num_jobs", 4),),)},
        ),
        CoverageTarget(cls=SpotConfig, sample=SpotConfig),
        CoverageTarget(cls=RetryPolicy, sample=RetryPolicy),
        CoverageTarget(
            cls=FailureConfig,
            sample=FailureConfig,
            overrides={
                "straggler_slowdown": ((0.2, 0.6),),
                "retry": (RetryPolicy(backoff_base_s=120.0),),
            },
        ),
        CoverageTarget(
            cls=MarketConfig,
            sample=MarketConfig,
            overrides={
                "pools": ((MarketPool(name="coverage-pool"),),),
                "credits": (CreditModel(),),
            },
        ),
        CoverageTarget(
            cls=MarketPool,
            sample=lambda: MarketPool(name="pool"),
            overrides={
                "families": (("m5",),),
                "trace": (((100.0, 1.5),),),
                "trace_csv": ("prices.csv",),
            },
        ),
        CoverageTarget(
            cls=CreditModel,
            sample=CreditModel,
            overrides={"families": (("t3",),)},
        ),
    ]


# ---------------------------------------------------------------------------
# Rule: pickle-default-omission
# ---------------------------------------------------------------------------

#: ``SimulationResult`` fields that existed when the first golden matrix
#: was pinned; everything added since must default-omit from pickles.
LEGACY_RESULT_FIELDS = frozenset(
    {
        "scheduler_name",
        "trace_name",
        "total_cost",
        "jobs",
        "instances_launched",
        "migrations",
        "placements",
        "uptimes_hours",
        "allocation",
        "tasks_per_instance",
        "makespan_hours",
        "full_adoption_fraction",
        "scheduling_rounds",
        "preemptions",
    }
)

#: Frozen outcome records pickle every field unconditionally, so their
#: shapes are pinned: growing one silently breaks golden byte-identity.
PINNED_RECORD_FIELDS: dict[str, tuple[str, ...]] = {
    "JobOutcome": (
        "job_id",
        "workload",
        "num_tasks",
        "arrival_s",
        "finish_s",
        "duration_hours",
        "idle_hours",
    ),
    "DeadlineOutcome": ("job_id", "deadline_s", "finish_s", "lateness_s"),
    "FailureOutcome": (
        "instance_index",
        "time_s",
        "failure_domain",
        "kind",
        "tasks_lost",
        "job_losses",
    ),
    "RepairOutcome": ("job_id", "failed_s", "recovered_s"),
}


def _sample_result() -> Any:
    from repro.sim.metrics import SimulationResult

    return SimulationResult(
        scheduler_name="probe",
        trace_name="probe",
        total_cost=1.0,
        jobs=[],
        instances_launched=0,
        migrations=0,
        placements=0,
        uptimes_hours=[],
        allocation={},
        tasks_per_instance=0.0,
        makespan_hours=0.0,
    )


def check_pickle_omission() -> list[Finding]:
    """Verify result classes honour the default-omission contract."""
    import repro.sim.metrics as metrics

    result_cls = metrics.SimulationResult
    path, line = _source_location(result_cls)
    findings: list[Finding] = []

    omitted: Mapping[str, Any] = result_cls._OMITTED_FIELD_DEFAULTS
    declared = {f.name: f for f in fields(result_cls)}
    for name in sorted(set(declared) - LEGACY_RESULT_FIELDS):
        if name in omitted:
            continue
        findings.append(
            Finding(
                rule="pickle-default-omission",
                path=path,
                line=line,
                message=(
                    f"SimulationResult.{name} is new since the golden "
                    "matrices were pinned but is missing from "
                    "_OMITTED_FIELD_DEFAULTS; legacy pickles would grow "
                    "the field and every golden digest would shift"
                ),
            )
        )
    for name in sorted(set(omitted) - set(declared)):
        findings.append(
            Finding(
                rule="pickle-default-omission",
                path=path,
                line=line,
                message=(
                    f"_OMITTED_FIELD_DEFAULTS lists {name!r} which is not "
                    "a SimulationResult field; drop the stale entry"
                ),
            )
        )

    # Functional check: a default-valued instance must actually omit the
    # omitted fields, and any non-default value must survive.
    probe = _sample_result()
    state = probe.__getstate__()
    for name, default in omitted.items():
        if name not in declared:
            continue
        if name in state:
            findings.append(
                Finding(
                    rule="pickle-default-omission",
                    path=path,
                    line=line,
                    message=(
                        f"SimulationResult.{name} at its legacy default "
                        f"({default!r}) still appears in __getstate__; "
                        "the omission contract is not applied"
                    ),
                )
            )
            continue
        marked = _sample_result()
        setattr(marked, name, _non_default(default))
        if name not in marked.__getstate__():
            findings.append(
                Finding(
                    rule="pickle-default-omission",
                    path=path,
                    line=line,
                    message=(
                        f"SimulationResult.{name} with a non-default value "
                        "is dropped by __getstate__; real data would be "
                        "lost on pickling"
                    ),
                )
            )

    for cls_name, pinned in PINNED_RECORD_FIELDS.items():
        record_cls = getattr(metrics, cls_name)
        record_path, record_line = _source_location(record_cls)
        actual = tuple(f.name for f in fields(record_cls))
        if actual != pinned:
            findings.append(
                Finding(
                    rule="pickle-default-omission",
                    path=record_path,
                    line=record_line,
                    message=(
                        f"{cls_name} fields changed from the pinned shape "
                        f"{pinned} to {actual}; pickled records leak into "
                        "golden digests — add a parallel record type, or "
                        "update the pin alongside a deliberate "
                        "EVA_REGEN_GOLDEN decision"
                    ),
                )
            )
    return findings


def _non_default(default: Any) -> Any:
    if isinstance(default, tuple):
        return ("probe",)
    if isinstance(default, bool):
        return not default
    if isinstance(default, int):
        return default + 1
    if isinstance(default, float):
        return default + 1.0
    return object()
