"""Findings, suppressions, and the checked-in baseline for the linter.

The determinism & invariant linter (``python -m repro.analysis``) reports
:class:`Finding` records.  Three mechanisms keep the gate workable while
the invariant it enforces stays sharp:

* **Suppressions** — a finding can be silenced at its source line with
  an ``# eva: allow[rule-name] -- reason`` comment (same line, or a
  standalone comment on the line directly above).  The reason string is
  mandatory: a suppression without one is itself reported
  (``suppression-syntax``), as is a suppression that no finding ever
  matched (``unused-suppression``) — stale escapes rot into blind spots.
* **Baseline** — a checked-in JSON file of grandfathered findings
  (``tests/data/analysis_baseline.json``; empty is the goal and the
  current state).  The gate fails only on findings *not* in the
  baseline, so adopting a new rule never blocks unrelated work.
* **Stable identity** — baseline matching keys on
  ``(rule, path, message)``, never on line numbers, so unrelated edits
  that shift lines do not resurrect grandfathered findings.
"""

from __future__ import annotations

import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

__all__ = [
    "Finding",
    "Suppression",
    "SuppressionIndex",
    "baseline_delta",
    "load_baseline",
    "save_baseline",
]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative (or fixture-relative in tests) with POSIX
    separators so baselines are portable across checkouts.
    """

    rule: str
    path: str
    line: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


#: Matches ``eva: allow[rule-name] -- reason`` comments (reason mandatory).
_SUPPRESSION_RE = re.compile(
    r"#\s*eva:\s*allow\[(?P<rule>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)
#: Anything that looks like an attempted suppression, well-formed or not.
_SUPPRESSION_HINT_RE = re.compile(r"#\s*eva:\s*allow")


@dataclass(slots=True)
class Suppression:
    """One parsed ``# eva: allow[rule] -- reason`` comment."""

    rule: str
    reason: str
    line: int
    used: bool = field(default=False)

    def matches(self, finding: Finding) -> bool:
        return self.rule == finding.rule


class SuppressionIndex:
    """Per-file suppression comments, plus their own syntax findings.

    A suppression covers findings on its own physical line and — when the
    comment stands alone — on the line directly below, so long
    expressions can carry the escape on the preceding line.
    """

    def __init__(
        self,
        suppressions: list[Suppression],
        errors: list[Finding],
        standalone: set[int] | None = None,
    ):
        self._by_line: dict[int, list[Suppression]] = {}
        self._standalone: set[int] = standalone or set()
        self.errors = errors
        self.all: list[Suppression] = suppressions
        for sup in suppressions:
            self._by_line.setdefault(sup.line, []).append(sup)

    @classmethod
    def scan(cls, source: str, path: str) -> "SuppressionIndex":
        """Extract suppression comments via the tokenizer (never regexes
        over string literals)."""
        suppressions: list[Suppression] = []
        errors: list[Finding] = []
        standalone: set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return cls([], [])
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            comment = tok.string
            if not _SUPPRESSION_HINT_RE.search(comment):
                continue
            line = tok.start[0]
            match = _SUPPRESSION_RE.search(comment)
            if match is None or not match.group("rule"):
                errors.append(
                    Finding(
                        rule="suppression-syntax",
                        path=path,
                        line=line,
                        message=(
                            "malformed suppression comment; expected "
                            "'# eva: allow[rule-name] -- reason'"
                        ),
                    )
                )
                continue
            reason = match.group("reason")
            if not reason:
                errors.append(
                    Finding(
                        rule="suppression-syntax",
                        path=path,
                        line=line,
                        message=(
                            f"suppression for [{match.group('rule')}] has no "
                            "reason; append ' -- <why this is safe>'"
                        ),
                    )
                )
                continue
            if comment.strip() == tok.line.strip():
                standalone.add(line)
            suppressions.append(
                Suppression(rule=match.group("rule"), reason=reason, line=line)
            )
        return cls(suppressions, errors, standalone)

    def suppresses(self, finding: Finding) -> bool:
        """Consume a matching suppression for ``finding``, if any."""
        standalone = self._standalone
        for line in (finding.line, finding.line - 1):
            for sup in self._by_line.get(line, ()):
                if line == finding.line - 1 and line not in standalone:
                    continue  # trailing comments cover their own line only
                if sup.matches(finding):
                    sup.used = True
                    return True
        return False

    def unused_findings(self, path: str) -> list[Finding]:
        return [
            Finding(
                rule="unused-suppression",
                path=path,
                line=sup.line,
                message=(
                    f"suppression for [{sup.rule}] matched no finding; "
                    "delete it (reason was: " + sup.reason + ")"
                ),
            )
            for sup in self.all
            if not sup.used
        ]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def load_baseline(path: Path | None) -> list[Finding]:
    """Load grandfathered findings; a missing file is an empty baseline."""
    if path is None or not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", data) if isinstance(data, dict) else data
    baseline: list[Finding] = []
    for entry in entries:
        baseline.append(
            Finding(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                line=int(entry.get("line", 0)),
                message=str(entry["message"]),
            )
        )
    return baseline


def save_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "comment": (
            "Grandfathered repro.analysis findings. Empty is the goal: "
            "fix the code instead of extending this file."
        ),
        "findings": [f.as_dict() for f in sorted(findings, key=lambda f: f.key)],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def baseline_delta(
    findings: list[Finding], baseline: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Split current findings against the baseline.

    Returns ``(new, stale)``: findings not covered by the baseline, and
    baseline entries no longer observed (candidates for deletion).
    Matching is by line-independent :attr:`Finding.key`, as a multiset —
    two identical findings need two baseline entries.
    """
    budget = Counter(entry.key for entry in baseline)
    new: list[Finding] = []
    for finding in findings:
        if budget.get(finding.key, 0) > 0:
            budget[finding.key] -= 1
        else:
            new.append(finding)
    stale: list[Finding] = []
    remaining = dict(budget)
    for entry in baseline:
        if remaining.get(entry.key, 0) > 0:
            remaining[entry.key] -= 1
            stale.append(entry)
    return new, stale
