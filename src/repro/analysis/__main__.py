"""CLI for the determinism & invariant linter.

Usage::

    PYTHONPATH=src python -m repro.analysis [--format text|json]
        [--baseline PATH] [--write-baseline] [--no-runtime-rules]

Exit status is 0 iff there are no findings outside the baseline and
every file parsed (the CI ``invariant-lint`` contract).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.findings import save_baseline
from repro.analysis.runner import (
    default_baseline_path,
    render_json,
    render_text,
    run_analysis,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & invariant linter for the Eva reproduction.",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON path (default: tests/data/analysis_baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit",
    )
    parser.add_argument(
        "--no-runtime-rules",
        action="store_true",
        help="skip fingerprint-coverage / pickle-omission (AST rules only)",
    )
    args = parser.parse_args(argv)

    baseline = args.baseline if args.baseline is not None else default_baseline_path()
    report = run_analysis(
        baseline_path=baseline,
        runtime_rules=not args.no_runtime_rules,
    )

    if args.write_baseline:
        save_baseline(baseline, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline}")
        return 0

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
