"""Orchestration for the determinism & invariant linter.

One :func:`run_analysis` call:

1. parses every ``.py`` file under ``src/repro`` (one shared visitor
   pass per file — see :mod:`repro.analysis.visitor`),
2. applies the AST rules (:mod:`repro.analysis.determinism`,
   :mod:`repro.analysis.contracts`) and the runtime rules
   (:mod:`repro.analysis.coverage`),
3. filters findings through per-line ``# eva: allow[rule] -- reason``
   suppressions (unused suppressions and malformed comments become
   findings themselves), and
4. splits the result against the checked-in baseline
   (``tests/data/analysis_baseline.json``; kept empty) into *new* and
   *stale* sets.

The gate (CI's ``invariant-lint`` job, ``tests/test_static_analysis.py``)
fails on any *new* finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.contracts import (
    ClassIndex,
    check_action_vocabulary,
    check_observation_purity,
)
from repro.analysis.coverage import (
    check_fingerprint_coverage,
    check_pickle_omission,
    default_coverage_targets,
)
from repro.analysis.determinism import (
    check_banned_calls,
    check_unordered_iteration,
)
from repro.analysis.findings import (
    Finding,
    SuppressionIndex,
    baseline_delta,
    load_baseline,
)
from repro.analysis.visitor import ModuleFacts, SourceFile, collect_facts

__all__ = [
    "AnalysisReport",
    "default_baseline_path",
    "default_source_root",
    "render_json",
    "render_text",
    "run_analysis",
]


def default_source_root() -> Path:
    """``src/repro`` of this checkout (the package's own location)."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path() -> Path:
    """``tests/data/analysis_baseline.json`` of this checkout."""
    repo_root = default_source_root().parent.parent
    return repo_root / "tests" / "data" / "analysis_baseline.json"


@dataclass
class AnalysisReport:
    """Everything one linter run produced."""

    #: All post-suppression findings, sorted by location.
    findings: list[Finding] = field(default_factory=list)
    #: Findings not covered by the baseline — these fail the gate.
    new: list[Finding] = field(default_factory=list)
    #: Baseline entries no longer observed — delete them.
    stale: list[Finding] = field(default_factory=list)
    #: Files that failed to parse (path → error).
    parse_errors: dict[str, str] = field(default_factory=dict)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.new and not self.parse_errors


def _iter_source_files(source_root: Path) -> list[tuple[Path, str]]:
    """(absolute path, repo-relative display path) for every package file."""
    pairs: list[tuple[Path, str]] = []
    for file_path in sorted(source_root.rglob("*.py")):
        relative = file_path.relative_to(source_root).as_posix()
        pairs.append((file_path, f"src/repro/{relative}"))
    return pairs


def run_analysis(
    source_root: Path | None = None,
    baseline_path: Path | None = None,
    runtime_rules: bool = True,
) -> AnalysisReport:
    """Run every rule over the tree; see module docstring.

    ``runtime_rules=False`` skips the import-and-execute rules
    (fingerprint coverage, pickle omission) — used by unit tests that
    exercise the AST rules against crafted fixtures.
    """
    root = source_root if source_root is not None else default_source_root()
    report = AnalysisReport()

    modules: list[ModuleFacts] = []
    suppressions: dict[str, SuppressionIndex] = {}
    for file_path, display in _iter_source_files(root):
        try:
            source = SourceFile.load(file_path, display)
        except SyntaxError as exc:
            report.parse_errors[display] = f"{type(exc).__name__}: {exc.msg}"
            continue
        modules.append(collect_facts(source))
        suppressions[display] = source.suppressions
    report.files_scanned = len(modules)

    raw: list[Finding] = []
    index = ClassIndex(modules)
    for facts in modules:
        raw.extend(check_unordered_iteration(facts))
        raw.extend(check_banned_calls(facts))
        raw.extend(check_action_vocabulary(facts, index))
        raw.extend(check_observation_purity(facts, index))
    if runtime_rules:
        raw.extend(check_fingerprint_coverage(default_coverage_targets()))
        raw.extend(check_pickle_omission())

    kept: list[Finding] = []
    for finding in raw:
        sup = suppressions.get(finding.path)
        if sup is not None and sup.suppresses(finding):
            continue
        kept.append(finding)
    for display, sup in suppressions.items():
        kept.extend(sup.errors)
        kept.extend(sup.unused_findings(display))

    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    report.findings = kept
    baseline = load_baseline(
        baseline_path if baseline_path is not None else default_baseline_path()
    )
    report.new, report.stale = baseline_delta(kept, baseline)
    return report


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def render_text(report: AnalysisReport) -> str:
    lines: list[str] = []
    for path, error in sorted(report.parse_errors.items()):
        lines.append(f"{path}: parse error: {error}")
    for finding in report.findings:
        marker = "NEW " if any(f is finding for f in report.new) else ""
        lines.append(f"{marker}{finding.render()}")
    for entry in report.stale:
        lines.append(f"stale baseline entry: [{entry.rule}] {entry.path}: {entry.message}")
    lines.append(
        f"{len(report.findings)} finding(s) "
        f"({len(report.new)} new, {len(report.stale)} stale baseline) "
        f"across {report.files_scanned} file(s)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload = {
        "files_scanned": report.files_scanned,
        "parse_errors": report.parse_errors,
        "findings": [f.as_dict() for f in report.findings],
        "new": [f.as_dict() for f in report.new],
        "stale": [f.as_dict() for f in report.stale],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
