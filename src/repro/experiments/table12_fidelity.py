"""Table 12 — simulator fidelity.

The paper compares each scheduler's cost on the 32-job trace measured on
AWS against the simulator's prediction, finding <5% differences.  Without
physical hardware we substitute a "physical proxy": the same simulator
with stochastic delays and throughput-measurement jitter (what a real run
adds on top of the deterministic model).  The comparison exercises the
identical code path — deterministic prediction vs noisy execution — and
the difference column plays the role of the paper's actual-vs-simulated
gap.  The substitution is documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.analysis.comparison import standard_scheduler_factories
from repro.cloud.catalog import ec2_catalog
from repro.cloud.delays import DelayModel
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    register,
    run_experiment,
)
from repro.sim.simulator import run_simulation
from repro.workloads.synthetic import small_physical_trace


@dataclass(frozen=True)
class Table12Result:
    table: ExperimentTable
    max_abs_difference: float


def _run(ctx: ExperimentContext) -> Table12Result:
    seed = ctx.seed
    catalog = ec2_catalog()
    trace = small_physical_trace(seed=seed)

    rows = []
    max_diff = 0.0
    for name, factory in standard_scheduler_factories(catalog).items():
        simulated = run_simulation(trace, factory())
        physical_proxy = run_simulation(
            trace,
            factory(),
            delay_model=DelayModel(
                stochastic=True, rng=np.random.default_rng(seed + 1)
            ),
        )
        diff = (simulated.total_cost - physical_proxy.total_cost) / (
            physical_proxy.total_cost
        )
        max_diff = max(max_diff, abs(diff))
        rows.append(
            (
                name,
                round(physical_proxy.total_cost, 2),
                round(simulated.total_cost, 2),
                f"{diff * 100:+.1f}%",
            )
        )
    table = ExperimentTable(
        title="Table 12: simulator fidelity (stochastic proxy vs deterministic)",
        headers=("Scheduler", "'Actual' Cost ($)", "Simulated Cost ($)", "Difference"),
        rows=tuple(rows),
        notes=(
            "'actual' = simulator with measured-delay jitter (no AWS access; "
            "substitution per DESIGN.md §2); paper reports <5% gaps",
        ),
    )
    return Table12Result(table=table, max_abs_difference=max_diff)


SPEC = register(
    ExperimentSpec(
        id="table12",
        title="Simulator fidelity: deterministic vs stochastic proxy",
        direct=_run,
    )
)


def run(seed: int = 0) -> Table12Result:
    return run_experiment(SPEC, ExperimentContext(seed=seed)).value
