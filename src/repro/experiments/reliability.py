"""Reliability — goodput vs. cost under stochastic failures.

Sweeps the *fault intensity* (the per-instance crash hazard, with
correlated domain shocks and stragglers scaled along) over a synthetic
trace and compares plain Eva against
:class:`~repro.core.failure.FailureAwareEvaScheduler`, the
protocol-native policy that consumes
:class:`~repro.core.protocol.InstanceFailed` /
:class:`~repro.core.protocol.StragglerReport` observations, maintains
per-domain empirical hazard estimates, and escalates a struck job's
reservation-price degradation charge so Algorithm 1 un-packs it (and
drains straggler-degraded instances like notice-doomed spot capacity).
No-Packing rides along as the cost-normalization baseline.

Expected shape: at low hazard the policies track each other (the
urgency machinery barely engages, and strikes are rare enough that the
escalation is noise); as hazard grows, Eva keeps paying full price for
straggler-degraded instances and keeps struck jobs packed — so they run
slower, stay exposed longer, and lose more work per crash — while
Eva-Failure drains degraded capacity and isolates repeat victims,
recovering goodput at a cost still well under No-Packing's.

Headline columns go beyond the standard cost/JCT set: **goodput**
(useful work over useful + lost work), **restarts** (task re-executions
forced by failures), **work lost** (hours rolled back to the last
checkpoint), and **MTTR** (mean seconds from a job's loss of progress
to its rate recovering above zero).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec, TrialSet
from repro.sim.simulator import FailureConfig, RetryPolicy

#: Per-instance crash hazard sweep points (events/hour), calmest first.
#: 0.1/h is background noise over hour-scale jobs; 0.3/h is hostile —
#: an instance alive for 3 hours more likely than not gets hit.
CRASH_RATES = (0.1, 0.3)

#: Correlated domain shocks arrive at this fraction of the crash rate
#: (each shock kills *every* instance in one failure domain, so even a
#: small rate dominates the work-lost tally at scale).
SHOCK_FRACTION = 1.0 / 3.0

#: Stragglers (degraded-throughput faults) arrive at the crash rate —
#: the CASH observation that slow-but-alive faults are at least as
#: common as crashes.
STRAGGLER_FRACTION = 1.0

#: Checkpoint cadence and cost: a 15-minute cadence bounds any single
#: rollback, for a 2% steady-state throughput tax on everyone.
RETRY = RetryPolicy(checkpoint_interval_s=900.0, checkpoint_overhead=0.02)

#: Mean inter-arrival time: denser than the §6.1 default so enough jobs
#: overlap for packing — and its interference — to matter on CI-sized
#: traces (the deadline-slo precedent).
MEAN_INTERARRIVAL_S = 600.0

#: Job durations: hour-scale, so the sweep's hazards translate into a
#: meaningful per-job failure probability without needing huge traces.
DURATION_RANGE_HOURS = (0.2, 1.0)

SCHEDULERS = {
    "No-Packing": "no-packing",
    "Eva": "eva",
    "Eva-Failure": "eva-failure",
}


def failure_config(crash_rate: float, seed: int = 0) -> FailureConfig:
    """The sweep's :class:`FailureConfig` at one crash-hazard point."""
    return FailureConfig(
        enabled=True,
        crash_rate_per_hour=crash_rate,
        domain_shock_rate_per_hour=crash_rate * SHOCK_FRACTION,
        straggler_rate_per_hour=crash_rate * STRAGGLER_FRACTION,
        retry=RETRY,
        seed=seed,
    )


@dataclass(frozen=True)
class ReliabilityResult:
    table: ExperimentTable
    #: (display name, crash rate) -> goodput fraction in (0, 1].
    goodput: dict[tuple[str, float], float]
    #: (display name, crash rate) -> task restarts forced by failures.
    restarts: dict[tuple[str, float], int]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(24, minimum=12, maximum=400))
    cells = grid_cells(
        CRASH_RATES,
        SCHEDULERS,
        lambda crash_rate, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "synthetic",
                num_jobs=num_jobs,
                seed=ctx.seed,
                mean_interarrival_s=MEAN_INTERARRIVAL_S,
                duration_range_hours=DURATION_RANGE_HOURS,
            ),
            failures=failure_config(crash_rate, seed=ctx.seed),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> ReliabilityResult:
    rows = []
    goodput: dict[tuple[str, float], float] = {}
    restarts: dict[tuple[str, float], int] = {}
    for crash_rate in CRASH_RATES:
        point_results = dict(results[crash_rate])
        baseline = point_results["No-Packing"]
        for name in SCHEDULERS:
            result = point_results[name]
            goodput[(name, crash_rate)] = result.goodput_fraction
            restarts[(name, crash_rate)] = result.task_restarts
            rows.append(
                (
                    f"{crash_rate:.2f}/h",
                    name,
                    round(result.total_cost, 2),
                    round(result.total_cost / baseline.total_cost, 3),
                    f"{result.goodput_fraction:.1%}",
                    result.task_restarts,
                    round(result.work_lost_h, 2),
                    round(result.mean_mttr_s(), 0),
                    round(result.mean_jct_hours(), 3),
                )
            )
    table = ExperimentTable(
        title=(
            f"Reliability: goodput vs cost across fault intensity "
            f"({grid.meta['num_jobs']} jobs, shocks at "
            f"{SHOCK_FRACTION:.2f}x and stragglers at "
            f"{STRAGGLER_FRACTION:.2f}x the crash rate)"
        ),
        headers=(
            "Crash Rate",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "Goodput",
            "Restarts",
            "Work Lost (h)",
            "MTTR (s)",
            "JCT (hours)",
        ),
        rows=tuple(rows),
        notes=(
            "goodput = useful work / (useful + lost) work",
            f"checkpoints every {RETRY.checkpoint_interval_s:.0f}s at "
            f"{RETRY.checkpoint_overhead:.0%} throughput overhead",
            "normalized to No-Packing at the same crash rate",
        ),
    )
    return ReliabilityResult(table=table, goodput=goodput, restarts=restarts)


def _present(result: ReliabilityResult) -> Presentation:
    return Presentation.of_tables(result.table)


def _trial_table(
    spec: ExperimentSpec, grid: ScenarioGrid, trials: TrialSet
) -> ExperimentTable:
    """Multi-seed summary keeping the goodput-vs-cost frontier visible."""
    if len(trials) != len(grid.cells):
        raise ValueError(
            f"{len(trials)} aggregates for {len(grid.cells)} grid cells"
        )
    by_cell = list(zip(grid.cells, trials.aggregates))
    baselines = {
        cell.point: aggregate
        for cell, aggregate in by_cell
        if cell.display == grid.baseline
    }
    rows = []
    for cell, aggregate in by_cell:
        baseline = baselines[cell.point]
        rows.append(
            (
                f"{cell.point:.2f}/h",
                cell.display,
                f"{aggregate.total_cost:.2f}",
                f"{aggregate.normalized_cost(baseline):.3f}",
                f"{aggregate.stat(lambda r: r.goodput_fraction):.3f}",
                f"{aggregate.stat(lambda r: float(r.task_restarts)):.1f}",
                f"{aggregate.stat(lambda r: r.work_lost_h):.2f}",
                f"{aggregate.stat(lambda r: r.mean_mttr_s()):.0f}",
            )
        )
    seeds_text = ", ".join(str(s) for s in trials.seeds)
    return ExperimentTable(
        title=(
            f"{spec.id}: goodput vs cost across fault intensity "
            f"({len(trials.seeds)} seeds)"
        ),
        headers=(
            "Crash Rate",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "Goodput",
            "Restarts",
            "Work Lost (h)",
            "MTTR (s)",
        ),
        rows=tuple(rows),
        notes=(
            f"mean ± std (population) over seeds [{seeds_text}]",
            "goodput = useful work / (useful + lost) work",
            "normalized to No-Packing at the same crash rate and seed",
        ),
    )


SPEC = register(
    ExperimentSpec(
        id="reliability",
        title="Extension: reliability — failure-aware Eva vs Eva vs No-Packing",
        build=_build,
        aggregate=_aggregate,
        present=_present,
        trial_table=_trial_table,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> ReliabilityResult:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
