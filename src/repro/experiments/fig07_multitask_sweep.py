"""Figure 7 — impact of multi-task jobs.

Duplicates a growing fraction of trace jobs into 2-/4-task jobs (1:1
mix, demands preserved) and compares No-Packing, Stratus, Eva-Single
(no §4.4 interdependency handling) and Eva.  Expected shape: Eva leads
throughout; Eva-Single costs up to ~13% more as multi-task jobs grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec

MULTI_TASK_FRACTIONS = (0.0, 0.2, 0.4, 0.6)

#: Display name → scheduler registry name for every sweep point.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Stratus": "stratus",
    "Eva-Single": "eva-single",
    "Eva": "eva",
}


@dataclass(frozen=True)
class Fig7Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(180, minimum=50, maximum=3000))
    cells = grid_cells(
        MULTI_TASK_FRACTIONS,
        SCHEDULERS,
        lambda fraction, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "alibaba-multi-task",
                num_jobs=num_jobs,
                multi_task_fraction=fraction,
                seed=ctx.seed,
            ),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> Fig7Result:
    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for fraction in MULTI_TASK_FRACTIONS:
        fraction_results = results[fraction]
        baseline = fraction_results["No-Packing"].total_cost
        for name, result in fraction_results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, fraction)] = norm
            rows.append((f"{fraction * 100:.0f}%", name, round(norm, 3)))

    table = ExperimentTable(
        title=f"Figure 7: impact of multi-task job proportion "
        f"({grid.meta['num_jobs']} jobs)",
        headers=("Multi-task Jobs", "Scheduler", "Norm. Total Cost"),
        rows=tuple(rows),
        notes=("2-task : 4-task duplication held at 1:1 (§6.7)",),
    )
    return Fig7Result(table=table, norm_cost=norm_cost)


def _present(result: Fig7Result) -> Presentation:
    from repro.analysis.charts import sweep_chart

    return Presentation.of_tables(
        result.table, extra=sweep_chart("Figure 7", result.norm_cost)
    )


SPEC = register(
    ExperimentSpec(
        id="fig07",
        title="Sweep: multi-task job proportion",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Fig7Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
