"""Figure 7 — impact of multi-task jobs.

Duplicates a growing fraction of trace jobs into 2-/4-task jobs (1:1
mix, demands preserved) and compares No-Packing, Stratus, Eva-Single
(no §4.4 interdependency handling) and Eva.  Expected shape: Eva leads
throughout; Eva-Single costs up to ~13% more as multi-task jobs grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.sim.batch import Scenario, run_grid
from repro.workloads.alibaba import remix_multi_task, synthesize_alibaba_trace

MULTI_TASK_FRACTIONS = (0.0, 0.2, 0.4, 0.6)

#: Display name → scheduler registry name for every sweep point.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Stratus": "stratus",
    "Eva-Single": "eva-single",
    "Eva": "eva",
}


@dataclass(frozen=True)
class Fig7Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]


def run(num_jobs: int | None = None, seed: int = 0) -> Fig7Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(180, minimum=50, maximum=3000)
    base_trace = synthesize_alibaba_trace(num_jobs, seed=seed)

    traces = {
        fraction: remix_multi_task(base_trace, fraction, seed=seed)
        for fraction in MULTI_TASK_FRACTIONS
    }
    grid = run_grid(
        MULTI_TASK_FRACTIONS,
        SCHEDULERS,
        lambda fraction, registry_name: Scenario(
            scheduler=registry_name, trace=traces[fraction], seed=seed
        ),
    )

    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for fraction in MULTI_TASK_FRACTIONS:
        results = grid[fraction]
        baseline = results["No-Packing"].total_cost
        for name, result in results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, fraction)] = norm
            rows.append((f"{fraction * 100:.0f}%", name, round(norm, 3)))

    table = ExperimentTable(
        title=f"Figure 7: impact of multi-task job proportion ({num_jobs} jobs)",
        headers=("Multi-task Jobs", "Scheduler", "Norm. Total Cost"),
        rows=tuple(rows),
        notes=("2-task : 4-task duplication held at 1:1 (§6.7)",),
    )
    return Fig7Result(table=table, norm_cost=norm_cost)
