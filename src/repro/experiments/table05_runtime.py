"""Table 5 — Full Reconfiguration runtime scaling.

Times Algorithm 1 over growing task-set sizes.  Two variants are
reported (DESIGN.md §4.2):

* **grouped** — the default implementation, evaluating one candidate per
  interchangeable task group (near-linear in |T|);
* **faithful** — the paper's per-task argmax scan (quadratic, the shape
  behind the paper's 0.40 s → 22 s growth from 1k to 8k tasks), run at
  smaller sizes.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.core.evaluation import RPEvaluator
from repro.core.full_reconfig import full_reconfiguration
from repro.core.reservation_price import ReservationPriceCalculator
from repro.experiments.common import bench_scale
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    register,
    run_experiment,
)
from repro.workloads.synthetic import microbench_task_pool

GROUPED_SIZES = (1000, 2000, 4000, 8000)
FAITHFUL_SIZES = (250, 500, 1000)


def time_full_reconfig(
    num_tasks: int, group_identical: bool, seed: int = 0
) -> float:
    """Wall-clock seconds of one Full Reconfiguration over ``num_tasks``."""
    catalog = ec2_catalog()
    evaluator = RPEvaluator(ReservationPriceCalculator(catalog))
    tasks = microbench_task_pool(num_tasks, seed=seed)
    start = time.perf_counter()
    full_reconfiguration(tasks, catalog, evaluator, group_identical=group_identical)
    return time.perf_counter() - start


def _run(ctx: ExperimentContext) -> ExperimentTable:
    scale = bench_scale()
    grouped_sizes = [n for n in GROUPED_SIZES if n <= 8000 * scale]
    faithful_sizes = [n for n in FAITHFUL_SIZES if n <= 1000 * scale]
    rows = []
    for n in grouped_sizes or [1000]:
        rows.append(("grouped", n, round(time_full_reconfig(n, True), 3)))
    for n in faithful_sizes or [250]:
        rows.append(("faithful (paper scan)", n, round(time_full_reconfig(n, False), 3)))
    return ExperimentTable(
        title="Table 5: Full Reconfiguration runtime",
        headers=("Variant", "Num. Tasks", "Runtime (sec)"),
        rows=tuple(rows),
        notes=(
            "paper reports 0.40 / 1.50 / 5.53 / 22.06 s at 1k/2k/4k/8k tasks "
            "(per-task scan, 8 cores)",
        ),
    )


SPEC = register(
    ExperimentSpec(
        id="table05",
        title="Full Reconfiguration runtime scaling (grouped vs faithful)",
        direct=_run,
    )
)


def run() -> ExperimentTable:
    return run_experiment(SPEC).value
