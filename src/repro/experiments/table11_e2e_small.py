"""Table 11 — end-to-end experiment with the 32-job trace, all five
schedulers (No-Packing, Stratus, Synergy, Owl, Eva)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, comparison_from_results
from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    ScenarioGrid,
    comparison_grid,
    register,
    run_experiment,
)
from repro.sim.batch import TraceSpec


@dataclass(frozen=True)
class Table11Result:
    table: ExperimentTable
    comparison: ComparisonResult


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    trace = TraceSpec.make("small-physical", seed=ctx.seed)
    return comparison_grid(trace, seed=ctx.seed, meta={"trace": trace})


def _aggregate(grid: ScenarioGrid, results) -> Table11Result:
    comparison = comparison_from_results(grid.meta["trace"], results[None])
    table = comparison.allocation_table(
        "Table 11: end-to-end experiment with 32 jobs"
    )
    return Table11Result(table=table, comparison=comparison)


SPEC = register(
    ExperimentSpec(
        id="table11",
        title="End-to-end, 32-job physical trace, all five schedulers",
        build=_build,
        aggregate=_aggregate,
    )
)


def run(seed: int = 0) -> Table11Result:
    return run_experiment(SPEC, ExperimentContext(seed=seed)).value
