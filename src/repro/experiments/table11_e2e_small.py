"""Table 11 — end-to-end experiment with the 32-job trace, all five
schedulers (No-Packing, Stratus, Synergy, Owl, Eva)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import (
    ComparisonResult,
    compare_schedulers,
    standard_scheduler_factories,
)
from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.workloads.synthetic import small_physical_trace


@dataclass(frozen=True)
class Table11Result:
    table: ExperimentTable
    comparison: ComparisonResult


def run(seed: int = 0) -> Table11Result:
    catalog = ec2_catalog()
    trace = small_physical_trace(seed=seed)
    comparison = compare_schedulers(
        trace, standard_scheduler_factories(catalog)
    )
    table = comparison.allocation_table(
        "Table 11: end-to-end experiment with 32 jobs"
    )
    return Table11Result(table=table, comparison=comparison)
