"""Table 11 — end-to-end experiment with the 32-job trace, all five
schedulers (No-Packing, Stratus, Synergy, Owl, Eva)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, compare_schedulers
from repro.analysis.reporting import ExperimentTable
from repro.sim.batch import TraceSpec


@dataclass(frozen=True)
class Table11Result:
    table: ExperimentTable
    comparison: ComparisonResult


def run(seed: int = 0) -> Table11Result:
    trace = TraceSpec.make("small-physical", seed=seed)
    comparison = compare_schedulers(trace)
    table = comparison.allocation_table(
        "Table 11: end-to-end experiment with 32 jobs"
    )
    return Table11Result(table=table, comparison=comparison)
