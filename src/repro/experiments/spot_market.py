"""Spot-market economics — cost vs volatility across bidding policies.

Sweeps the spot market's price *volatility* (the random-walk step of the
pool price processes in :mod:`repro.cloud.market`) and compares plain
Eva against :class:`~repro.core.market.MarketAwareEvaScheduler`, the
protocol-native policy that consumes
:class:`~repro.core.protocol.PriceChanged` /
:class:`~repro.core.protocol.PoolExhausted` /
:class:`~repro.core.protocol.SpotEvictionNotice` observations to track
live pool prices in its reservation-price calculator, refuse bids above
its ceiling, migrate across pools through the ordinary Algorithm-1
path, and fall back to on-demand during eviction storms.  No-Packing
rides along as the cost-normalization baseline.

The market couples eviction pressure to price
(``MarketConfig.eviction_coupling``): a pool trading above par is also
the pool reclaiming capacity fastest, exactly the regime where bidding
blindly is expensive.  Stock Eva keeps packing into whatever the static
catalog says is cheapest and eats both the inflated bill and the
eviction churn; the market-aware variant shifts load to the cheaper
pool while prices are split and stops bidding spot when evictions
cluster.

Expected shape: at near-zero volatility the two Eva variants track each
other (prices barely leave par, so market awareness has nothing to
exploit — a built-in sanity row); as volatility grows the gap opens —
Eva-Market's normalized cost drops below Eva's at equal or better
goodput, because every dollar of price spread is arbitrage the repriced
reservation prices harvest.  Deadline-bearing jobs keep the attainment
column honest: cost savings bought by stalling work would show up as
missed SLOs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.cloud.market import MarketConfig, MarketPool
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec, TrialSet
from repro.sim.simulator import DEFAULT_PERIOD_S, SpotConfig

#: Price-walk volatility per step (std-dev of the log-price increment).
#: 0.05 barely leaves par (the sanity row); 0.15 and 0.3 are regimes
#: where pool prices routinely split by 1.5-3x within a trace.
VOLATILITY = (0.05, 0.15, 0.3)

#: Price step cadence: slow enough that a price spread persists across
#: several scheduling rounds — migration only pays when the price it
#: chases outlives the move.
PRICE_STEP_S = 6 * DEFAULT_PERIOD_S

#: Baseline spot preemption rate; the market scales it by
#: ``multiplier ** EVICTION_COUPLING`` per launch, so expensive pools
#: also churn hardest.
PREEMPTION_RATE_PER_HOUR = 0.15
EVICTION_COUPLING = 2.0

#: Fraction of jobs carrying a deadline — keeps the attainment column
#: meaningful (cost savings bought by stalling work would miss SLOs).
DEADLINE_FRACTION = 0.4

#: Dense arrivals so pools stay populated and price moves matter.
MEAN_INTERARRIVAL_S = 600.0

SCHEDULERS = {
    "No-Packing": "no-packing",
    "Eva": "eva",
    "Eva-Market": "eva-market",
}


def market_config(volatility: float, seed: int) -> MarketConfig:
    """The two-pool CPU market every sweep cell trades in.

    c7i and r7i carry identical per-task demands in the synthetic
    workloads, so they are perfect substitutes — cross-pool migration
    is purely a price decision, which is exactly what the sweep
    measures.  GPU capacity (p3) stays unpooled at par: it has no
    substitute family, so a volatile GPU pool would only add noise the
    policy cannot arbitrage away.
    """
    return MarketConfig(
        enabled=True,
        seed=seed,
        eviction_coupling=EVICTION_COUPLING,
        pools=(
            MarketPool(
                name="cpu-c", families=("c7i",),
                volatility=volatility, step_s=PRICE_STEP_S,
            ),
            MarketPool(
                name="cpu-r", families=("r7i",),
                volatility=volatility, step_s=PRICE_STEP_S,
            ),
        ),
    )


@dataclass(frozen=True)
class SpotMarketResult:
    table: ExperimentTable
    #: (display name, volatility) -> total cost normalized to No-Packing.
    normalized_cost: dict[tuple[str, float], float]
    #: (display name, volatility) -> preemption count.
    preemptions: dict[tuple[str, float], int]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(32, minimum=12, maximum=400))
    cells = grid_cells(
        VOLATILITY,
        SCHEDULERS,
        lambda volatility, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "synthetic",
                num_jobs=num_jobs,
                seed=ctx.seed,
                mean_interarrival_s=MEAN_INTERARRIVAL_S,
                deadline_fraction=DEADLINE_FRACTION,
            ),
            spot=SpotConfig(
                enabled=True,
                preemption_rate_per_hour=PREEMPTION_RATE_PER_HOUR,
                seed=ctx.seed,
                notice_s=DEFAULT_PERIOD_S,
            ),
            market=market_config(volatility, seed=ctx.seed),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> SpotMarketResult:
    rows = []
    normalized: dict[tuple[str, float], float] = {}
    preemptions: dict[tuple[str, float], int] = {}
    for volatility in VOLATILITY:
        point_results = dict(results[volatility])
        baseline = point_results["No-Packing"]
        for name in SCHEDULERS:
            result = point_results[name]
            norm = result.total_cost / baseline.total_cost
            normalized[(name, volatility)] = norm
            preemptions[(name, volatility)] = result.preemptions
            rows.append(
                (
                    f"{volatility:.2f}",
                    name,
                    round(result.total_cost, 2),
                    round(norm, 3),
                    round(result.mean_jct_hours(), 3),
                    result.preemptions,
                    f"{result.deadline_attainment:.1%}",
                    result.price_changes,
                )
            )
    table = ExperimentTable(
        title=(
            f"Spot market: cost vs price volatility "
            f"({grid.meta['num_jobs']} jobs, "
            f"coupling {EVICTION_COUPLING:.0f})"
        ),
        headers=(
            "Volatility",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "JCT (hours)",
            "Preemptions",
            "Attainment",
            "Price Changes",
        ),
        rows=tuple(rows),
        notes=(
            "volatility = std-dev of the per-step log-price increment",
            "normalized to No-Packing at the same volatility",
            f"spot eviction rate scales with price^{EVICTION_COUPLING:.0f}",
        ),
    )
    return SpotMarketResult(
        table=table, normalized_cost=normalized, preemptions=preemptions
    )


def _present(result: SpotMarketResult) -> Presentation:
    return Presentation.of_tables(result.table)


def _trial_table(
    spec: ExperimentSpec, grid: ScenarioGrid, trials: TrialSet
) -> ExperimentTable:
    """Multi-seed summary keeping the cost-vs-goodput frontier visible."""
    if len(trials) != len(grid.cells):
        raise ValueError(
            f"{len(trials)} aggregates for {len(grid.cells)} grid cells"
        )
    by_cell = list(zip(grid.cells, trials.aggregates))
    baselines = {
        cell.point: aggregate
        for cell, aggregate in by_cell
        if cell.display == grid.baseline
    }
    rows = []
    for cell, aggregate in by_cell:
        baseline = baselines[cell.point]
        rows.append(
            (
                f"{cell.point:.2f}",
                cell.display,
                f"{aggregate.total_cost:.2f}",
                f"{aggregate.normalized_cost(baseline):.3f}",
                f"{aggregate.stat(lambda r: r.mean_jct_hours()):.3f}",
                f"{aggregate.stat(lambda r: float(r.preemptions)):.1f}",
                f"{aggregate.stat(lambda r: r.deadline_attainment):.3f}",
            )
        )
    seeds_text = ", ".join(str(s) for s in trials.seeds)
    return ExperimentTable(
        title=(
            f"{spec.id}: cost vs price volatility ({len(trials.seeds)} seeds)"
        ),
        headers=(
            "Volatility",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "JCT (hours)",
            "Preemptions",
            "Attainment",
        ),
        rows=tuple(rows),
        notes=(
            f"mean ± std (population) over seeds [{seeds_text}]",
            "normalized to No-Packing at the same volatility and seed",
        ),
    )


SPEC = register(
    ExperimentSpec(
        id="spot-market",
        title="Extension: spot-market economics — market-aware Eva vs Eva vs No-Packing",
        build=_build,
        aggregate=_aggregate,
        present=_present,
        trial_table=_trial_table,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> SpotMarketResult:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
