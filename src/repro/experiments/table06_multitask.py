"""Table 6 — multi-task job micro-benchmark: Eva-Single vs Eva-Multi.

Each trial schedules multi-task jobs (4 identical tasks, durations 0.5–16
hours, Table-7 workloads) through the full simulator and compares
No-Packing, Eva without the §4.4 interdependency extension (Eva-Single),
and Eva with it (Eva-Multi).  Costs are normalized to No-Packing per
trial; JCT is reported in hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.baselines import NoPackingScheduler
from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import make_eva_variant
from repro.experiments.common import scaled
from repro.sim.simulator import run_simulation
from repro.workloads.synthetic import multitask_microbench_trace


@dataclass(frozen=True)
class Table6Result:
    table: ExperimentTable
    norm_costs: dict[str, tuple[float, float]]  # name -> (mean, std)
    jcts: dict[str, tuple[float, float]]


def run(
    trials: int | None = None,
    jobs_per_trial: int | None = None,
    seed: int = 0,
) -> Table6Result:
    trials = trials if trials is not None else scaled(3, minimum=2, maximum=10)
    jobs = jobs_per_trial if jobs_per_trial is not None else scaled(40, minimum=20, maximum=100)
    catalog = ec2_catalog()
    variants = {
        "No-Packing": lambda: NoPackingScheduler(catalog),
        "Eva-Single": lambda: make_eva_variant(catalog, "eva-single"),
        "Eva-Multi": lambda: make_eva_variant(catalog, "eva"),
    }

    norm_costs: dict[str, list[float]] = {name: [] for name in variants}
    jcts: dict[str, list[float]] = {name: [] for name in variants}
    for trial in range(trials):
        trace = multitask_microbench_trace(
            num_jobs=jobs, tasks_per_job=4, seed=seed + trial
        )
        baseline_cost = None
        for name, factory in variants.items():
            result = run_simulation(trace, factory())
            if name == "No-Packing":
                baseline_cost = result.total_cost
            assert baseline_cost is not None
            norm_costs[name].append(result.total_cost / baseline_cost)
            jcts[name].append(result.mean_jct_hours())

    def mean_std(values: list[float]) -> tuple[float, float]:
        arr = np.array(values)
        return float(arr.mean()), float(arr.std())

    rows = []
    cost_stats: dict[str, tuple[float, float]] = {}
    jct_stats: dict[str, tuple[float, float]] = {}
    for name in variants:
        cm, cs = mean_std(norm_costs[name])
        jm, js = mean_std(jcts[name])
        cost_stats[name] = (cm, cs)
        jct_stats[name] = (jm, js)
        rows.append(
            (
                name,
                f"{cm * 100:.1f}% ± {cs * 100:.1f}%",
                f"{jm:.2f} ± {js:.2f}",
            )
        )
    table = ExperimentTable(
        title=f"Table 6: multi-task job micro-benchmark "
        f"({trials} trials x {jobs} four-task jobs)",
        headers=("Scheduler", "Norm. Total Cost", "JCT (hours)"),
        rows=tuple(rows),
        notes=("costs normalized to No-Packing per trial",),
    )
    return Table6Result(table=table, norm_costs=cost_stats, jcts=jct_stats)
