"""Table 6 — multi-task job micro-benchmark: Eva-Single vs Eva-Multi.

Each trial schedules multi-task jobs (4 identical tasks, durations 0.5–16
hours, Table-7 workloads) through the full simulator and compares
No-Packing, Eva without the §4.4 interdependency extension (Eva-Single),
and Eva with it (Eva-Multi).  Costs are normalized to No-Packing per
trial; JCT is reported in hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec

#: Display name → scheduler registry name for every trial.
VARIANTS = {
    "No-Packing": "no-packing",
    "Eva-Single": "eva-single",
    "Eva-Multi": "eva",
}


@dataclass(frozen=True)
class Table6Result:
    table: ExperimentTable
    norm_costs: dict[str, tuple[float, float]]  # name -> (mean, std)
    jcts: dict[str, tuple[float, float]]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    trials = ctx.param("trials", scaled(3, minimum=2, maximum=10))
    jobs = ctx.param("jobs_per_trial", scaled(40, minimum=20, maximum=100))
    # Workers rebuild each trial's trace from the spec (cheap to pickle).
    cells = grid_cells(
        range(trials),
        VARIANTS,
        lambda trial, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "multitask-microbench",
                num_jobs=jobs,
                tasks_per_job=4,
                seed=ctx.seed + trial,
            ),
            seed=ctx.seed + trial,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"trials": trials, "jobs": jobs})


def _aggregate(grid: ScenarioGrid, results) -> Table6Result:
    trials, jobs = grid.meta["trials"], grid.meta["jobs"]
    norm_costs: dict[str, list[float]] = {name: [] for name in VARIANTS}
    jcts: dict[str, list[float]] = {name: [] for name in VARIANTS}
    for trial in range(trials):
        trial_results = results[trial]
        baseline_cost = trial_results["No-Packing"].total_cost
        for name, result in trial_results.items():
            norm_costs[name].append(result.total_cost / baseline_cost)
            jcts[name].append(result.mean_jct_hours())

    def mean_std(values: list[float]) -> tuple[float, float]:
        arr = np.array(values)
        return float(arr.mean()), float(arr.std())

    rows = []
    cost_stats: dict[str, tuple[float, float]] = {}
    jct_stats: dict[str, tuple[float, float]] = {}
    for name in VARIANTS:
        cm, cs = mean_std(norm_costs[name])
        jm, js = mean_std(jcts[name])
        cost_stats[name] = (cm, cs)
        jct_stats[name] = (jm, js)
        rows.append(
            (
                name,
                f"{cm * 100:.1f}% ± {cs * 100:.1f}%",
                f"{jm:.2f} ± {js:.2f}",
            )
        )
    table = ExperimentTable(
        title=f"Table 6: multi-task job micro-benchmark "
        f"({trials} trials x {jobs} four-task jobs)",
        headers=("Scheduler", "Norm. Total Cost", "JCT (hours)"),
        rows=tuple(rows),
        notes=("costs normalized to No-Packing per trial",),
    )
    return Table6Result(table=table, norm_costs=cost_stats, jcts=jct_stats)


SPEC = register(
    ExperimentSpec(
        id="table06",
        title="Micro-benchmark: multi-task jobs (Eva-Single vs Eva-Multi)",
        build=_build,
        aggregate=_aggregate,
        # The grid's trial axis IS a seed sweep (seed + trial per cell);
        # generic --seeds reseeding would collapse it, so it's ignored.
        multi_seed=False,
    )
)


def run(
    trials: int | None = None,
    jobs_per_trial: int | None = None,
    seed: int = 0,
) -> Table6Result:
    return run_experiment(
        SPEC,
        ExperimentContext(
            seed=seed, params={"trials": trials, "jobs_per_trial": jobs_per_trial}
        ),
    ).value
