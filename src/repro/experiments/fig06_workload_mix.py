"""Figure 6 — impact of workload composition (multi-GPU job proportion).

Remixes the Alibaba-like trace so a growing fraction of jobs are
multi-GPU (2/4/8 GPUs at the paper's 5:4:1 ratio; non-GPU jobs
untouched) and compares No-Packing, Stratus, Synergy, Eva without Full
Reconfiguration, and Eva.  Expected shape: packing benefits shrink as
multi-GPU jobs grow, Eva stays ahead, and dropping Full Reconfiguration
costs up to ~8% extra at high multi-GPU fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec

MULTI_GPU_FRACTIONS = (0.0, 0.2, 0.4, 0.6)

#: Display name → scheduler registry name for every sweep point.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Stratus": "stratus",
    "Synergy": "synergy",
    "Eva w/o Full Reconfig": "eva-partial-only",
    "Eva": "eva",
}


@dataclass(frozen=True)
class Fig6Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(200, minimum=60, maximum=3000))
    # The remix is a named builder ("alibaba-multi-gpu"), so each cell is
    # a small picklable spec that caches by content and re-seeds across
    # trials; the built trace is byte-identical to the old inline remix.
    cells = grid_cells(
        MULTI_GPU_FRACTIONS,
        SCHEDULERS,
        lambda fraction, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "alibaba-multi-gpu",
                num_jobs=num_jobs,
                multi_gpu_fraction=fraction,
                seed=ctx.seed,
            ),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> Fig6Result:
    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for fraction in MULTI_GPU_FRACTIONS:
        fraction_results = results[fraction]
        baseline = fraction_results["No-Packing"].total_cost
        for name, result in fraction_results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, fraction)] = norm
            rows.append((f"{fraction * 100:.0f}%", name, round(norm, 3)))

    table = ExperimentTable(
        title=f"Figure 6: impact of multi-GPU job proportion "
        f"({grid.meta['num_jobs']} jobs)",
        headers=("Multi-GPU Jobs", "Scheduler", "Norm. Total Cost"),
        rows=tuple(rows),
        notes=("2:4:8-GPU mix held at 5:4:1; non-GPU fraction unchanged",),
    )
    return Fig6Result(table=table, norm_cost=norm_cost)


def _present(result: Fig6Result) -> Presentation:
    from repro.analysis.charts import sweep_chart

    return Presentation.of_tables(
        result.table, extra=sweep_chart("Figure 6", result.norm_cost)
    )


SPEC = register(
    ExperimentSpec(
        id="fig06",
        title="Sweep: multi-GPU job proportion",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Fig6Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
