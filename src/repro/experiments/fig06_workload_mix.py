"""Figure 6 — impact of workload composition (multi-GPU job proportion).

Remixes the Alibaba-like trace so a growing fraction of jobs are
multi-GPU (2/4/8 GPUs at the paper's 5:4:1 ratio; non-GPU jobs
untouched) and compares No-Packing, Stratus, Synergy, Eva without Full
Reconfiguration, and Eva.  Expected shape: packing benefits shrink as
multi-GPU jobs grow, Eva stays ahead, and dropping Full Reconfiguration
costs up to ~8% extra at high multi-GPU fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.sim.batch import Scenario, run_grid
from repro.workloads.alibaba import remix_multi_gpu, synthesize_alibaba_trace

MULTI_GPU_FRACTIONS = (0.0, 0.2, 0.4, 0.6)

#: Display name → scheduler registry name for every sweep point.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Stratus": "stratus",
    "Synergy": "synergy",
    "Eva w/o Full Reconfig": "eva-partial-only",
    "Eva": "eva",
}


@dataclass(frozen=True)
class Fig6Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]


def run(num_jobs: int | None = None, seed: int = 0) -> Fig6Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(200, minimum=60, maximum=3000)
    base_trace = synthesize_alibaba_trace(num_jobs, seed=seed)

    traces = {
        fraction: remix_multi_gpu(base_trace, fraction, seed=seed)
        for fraction in MULTI_GPU_FRACTIONS
    }
    grid = run_grid(
        MULTI_GPU_FRACTIONS,
        SCHEDULERS,
        lambda fraction, registry_name: Scenario(
            scheduler=registry_name, trace=traces[fraction], seed=seed
        ),
    )

    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for fraction in MULTI_GPU_FRACTIONS:
        results = grid[fraction]
        baseline = results["No-Packing"].total_cost
        for name, result in results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, fraction)] = norm
            rows.append((f"{fraction * 100:.0f}%", name, round(norm, 3)))

    table = ExperimentTable(
        title=f"Figure 6: impact of multi-GPU job proportion ({num_jobs} jobs)",
        headers=("Multi-GPU Jobs", "Scheduler", "Norm. Total Cost"),
        rows=tuple(rows),
        notes=("2:4:8-GPU mix held at 5:4:1; non-GPU fraction unchanged",),
    )
    return Fig6Result(table=table, norm_cost=norm_cost)
