"""Table 4 — provisioning-cost micro-benchmark: No-Packing vs Full
Reconfiguration vs ILP.

Independent trials each sample a bag of tasks from the Table-7 workloads
and minimize the instantaneous provisioning cost three ways.  Costs are
normalized to the ILP's (best-found) solution per trial; runtimes are
averaged.  The paper ran 30 trials × 200 tasks with a 30-minute Gurobi
limit; defaults here are scaled for laptop runs (``EVA_BENCH_SCALE``
restores larger sizes) with HiGHS as the solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.core.evaluation import RPEvaluator
from repro.core.full_reconfig import configuration_cost, full_reconfiguration
from repro.core.ilp import ilp_schedule
from repro.core.reservation_price import ReservationPriceCalculator
from repro.experiments.common import scaled
from repro.workloads.synthetic import microbench_task_pool


@dataclass(frozen=True)
class Table4Result:
    table: ExperimentTable
    no_packing_norm: tuple[float, float]  # mean, std
    full_reconfig_norm: tuple[float, float]
    ilp_proven_optimal: int
    trials: int


def run(
    trials: int | None = None,
    num_tasks: int | None = None,
    ilp_time_limit_s: float = 20.0,
    seed: int = 0,
) -> Table4Result:
    trials = trials if trials is not None else scaled(3, minimum=2, maximum=30)
    num_tasks = num_tasks if num_tasks is not None else scaled(50, minimum=20, maximum=200)
    catalog = ec2_catalog()
    calculator = ReservationPriceCalculator(catalog)
    evaluator = RPEvaluator(calculator)

    nopack_norms, full_norms = [], []
    full_runtimes, ilp_runtimes = [], []
    proven = 0
    for trial in range(trials):
        tasks = microbench_task_pool(num_tasks, seed=seed + trial)
        nopack_cost = calculator.rp_of_set(tasks)

        t0 = time.perf_counter()
        packed = full_reconfiguration(tasks, catalog, evaluator)
        full_runtimes.append(time.perf_counter() - t0)
        full_cost = configuration_cost(packed)

        ilp = ilp_schedule(tasks, catalog, time_limit_s=ilp_time_limit_s)
        ilp_runtimes.append(ilp.runtime_s)
        if ilp.proven_optimal:
            proven += 1
        reference = min(ilp.hourly_cost, full_cost)  # best-found, as in the paper
        nopack_norms.append(nopack_cost / reference)
        full_norms.append(full_cost / reference)

    def mean_std(values: list[float]) -> tuple[float, float]:
        arr = np.array(values)
        return float(arr.mean()), float(arr.std())

    np_m, np_s = mean_std(nopack_norms)
    fr_m, fr_s = mean_std(full_norms)
    table = ExperimentTable(
        title="Table 4: provisioning-cost micro-benchmark "
        f"({trials} trials x {num_tasks} tasks)",
        headers=("Scheduler", "Provisioning Cost (norm.)", "Runtime"),
        rows=(
            ("No-Packing", f"{np_m:.2f} ± {np_s:.2f}x", f"{0.0:.0f}ms"),
            (
                "Full Reconfig.",
                f"{fr_m:.2f} ± {fr_s:.2f}x",
                f"{np.mean(full_runtimes) * 1000:.0f}ms",
            ),
            (
                "ILP",
                "1x",
                f"{np.mean(ilp_runtimes):.1f}s"
                + ("" if proven == trials else f" (time limit, {proven}/{trials} proven)"),
            ),
        ),
        notes=(
            "costs normalized to the best solution found per trial",
            f"ILP solver: HiGHS, {ilp_time_limit_s:.0f}s limit "
            "(paper: Gurobi, 30min limit)",
        ),
    )
    return Table4Result(
        table=table,
        no_packing_norm=(np_m, np_s),
        full_reconfig_norm=(fr_m, fr_s),
        ilp_proven_optimal=proven,
        trials=trials,
    )
