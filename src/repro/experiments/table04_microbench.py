"""Table 4 — provisioning-cost micro-benchmark: No-Packing vs Full
Reconfiguration vs ILP.

Independent trials each sample a bag of tasks from the Table-7 workloads
and minimize the instantaneous provisioning cost three ways.  Costs are
normalized to the ILP's (best-found) solution per trial; runtimes are
averaged.  The paper ran 30 trials × 200 tasks with a 30-minute Gurobi
limit; defaults here are scaled for laptop runs (``EVA_BENCH_SCALE``
restores larger sizes) with HiGHS as the solver.

Trials fan out over ``EVA_BENCH_WORKERS`` processes.  Unlike the
simulation experiments, this table is only deterministic while the ILP
proves optimality within its limit: the limit is wall-clock, so when it
binds, CPU contention (e.g. more workers than cores) can change the
best-found incumbent and therefore the normalized costs.  Keep
``EVA_BENCH_WORKERS`` at or below the physical core count when records
need to be comparable; the reported runtimes are in-worker wall-clock
and inflate under contention either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.core.evaluation import RPEvaluator
from repro.core.full_reconfig import configuration_cost, full_reconfiguration
from repro.core.ilp import ilp_schedule
from repro.core.reservation_price import ReservationPriceCalculator
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    register,
    run_experiment,
)
from repro.sim.batch import parallel_map
from repro.workloads.synthetic import microbench_task_pool


@dataclass(frozen=True)
class Table4Result:
    table: ExperimentTable
    no_packing_norm: tuple[float, float]  # mean, std
    full_reconfig_norm: tuple[float, float]
    ilp_proven_optimal: int
    trials: int


@dataclass(frozen=True)
class _TrialSpec:
    """One micro-benchmark trial (picklable batch-layer work item)."""

    num_tasks: int
    seed: int
    ilp_time_limit_s: float


@dataclass(frozen=True)
class _TrialResult:
    nopack_norm: float
    full_norm: float
    full_runtime_s: float
    ilp_runtime_s: float
    ilp_proven_optimal: bool


def _run_trial(spec: _TrialSpec) -> _TrialResult:
    """Solve one trial's packing problem three ways (worker-side)."""
    catalog = ec2_catalog()
    calculator = ReservationPriceCalculator(catalog)
    evaluator = RPEvaluator(calculator)
    tasks = microbench_task_pool(spec.num_tasks, seed=spec.seed)
    nopack_cost = calculator.rp_of_set(tasks)

    t0 = time.perf_counter()
    packed = full_reconfiguration(tasks, catalog, evaluator)
    full_runtime = time.perf_counter() - t0
    full_cost = configuration_cost(packed)

    ilp = ilp_schedule(tasks, catalog, time_limit_s=spec.ilp_time_limit_s)
    reference = min(ilp.hourly_cost, full_cost)  # best-found, as in the paper
    return _TrialResult(
        nopack_norm=nopack_cost / reference,
        full_norm=full_cost / reference,
        full_runtime_s=full_runtime,
        ilp_runtime_s=ilp.runtime_s,
        ilp_proven_optimal=ilp.proven_optimal,
    )


def _run(ctx: ExperimentContext) -> Table4Result:
    trials = ctx.param("trials", scaled(3, minimum=2, maximum=30))
    num_tasks = ctx.param("num_tasks", scaled(50, minimum=20, maximum=200))
    ilp_time_limit_s = ctx.param("ilp_time_limit_s", 20.0)
    seed = ctx.seed

    specs = [
        _TrialSpec(
            num_tasks=num_tasks,
            seed=seed + trial,
            ilp_time_limit_s=ilp_time_limit_s,
        )
        for trial in range(trials)
    ]
    trial_results = parallel_map(_run_trial, specs, workers=ctx.workers)

    nopack_norms = [t.nopack_norm for t in trial_results]
    full_norms = [t.full_norm for t in trial_results]
    full_runtimes = [t.full_runtime_s for t in trial_results]
    ilp_runtimes = [t.ilp_runtime_s for t in trial_results]
    proven = sum(1 for t in trial_results if t.ilp_proven_optimal)

    def mean_std(values: list[float]) -> tuple[float, float]:
        arr = np.array(values)
        return float(arr.mean()), float(arr.std())

    np_m, np_s = mean_std(nopack_norms)
    fr_m, fr_s = mean_std(full_norms)
    table = ExperimentTable(
        title="Table 4: provisioning-cost micro-benchmark "
        f"({trials} trials x {num_tasks} tasks)",
        headers=("Scheduler", "Provisioning Cost (norm.)", "Runtime"),
        rows=(
            ("No-Packing", f"{np_m:.2f} ± {np_s:.2f}x", f"{0.0:.0f}ms"),
            (
                "Full Reconfig.",
                f"{fr_m:.2f} ± {fr_s:.2f}x",
                f"{np.mean(full_runtimes) * 1000:.0f}ms",
            ),
            (
                "ILP",
                "1x",
                f"{np.mean(ilp_runtimes):.1f}s"
                + ("" if proven == trials else f" (time limit, {proven}/{trials} proven)"),
            ),
        ),
        notes=(
            "costs normalized to the best solution found per trial",
            f"ILP solver: HiGHS, {ilp_time_limit_s:.0f}s limit "
            "(paper: Gurobi, 30min limit)",
        ),
    )
    return Table4Result(
        table=table,
        no_packing_norm=(np_m, np_s),
        full_reconfig_norm=(fr_m, fr_s),
        ilp_proven_optimal=proven,
        trials=trials,
    )


SPEC = register(
    ExperimentSpec(
        id="table04",
        title="Micro-benchmark: provisioning cost vs Full Reconfig vs ILP",
        direct=_run,
        present=lambda result: Presentation.of_tables(result.table),
    )
)


def run(
    trials: int | None = None,
    num_tasks: int | None = None,
    ilp_time_limit_s: float = 20.0,
    seed: int = 0,
) -> Table4Result:
    return run_experiment(
        SPEC,
        ExperimentContext(
            seed=seed,
            params={
                "trials": trials,
                "num_tasks": num_tasks,
                "ilp_time_limit_s": ilp_time_limit_s,
            },
        ),
    ).value
