"""Command-line runner for the experiment registry.

Usage::

    python -m repro.experiments list                      # all experiments
    python -m repro.experiments run table13               # run one
    python -m repro.experiments run all                   # run everything (slow)
    python -m repro.experiments run table11 --seeds 5     # mean ± std trials
    python -m repro.experiments run table11 --cache-dir .eva-cache
    python -m repro.experiments run all --dry-run --cache-dir .eva-cache
    python -m repro.experiments run table13 --format json --output out.json
    python -m repro.experiments report out.json           # re-render a run
    python -m repro.experiments table13                   # shorthand for run

Options (run):

* ``--seed N`` — base seed (default 0).
* ``--seeds N`` — run scenario-grid experiments across N seeds
  (``seed .. seed+N-1``) and report mean ± std; direct experiments
  (data tables, timing micro-benchmarks) ignore this.
* ``--cache-dir DIR`` — persistent result cache; re-runs with the same
  directory re-simulate nothing (content-addressed, code-token keyed).
* ``--dry-run`` — print the scenario grid (labels + fingerprints) and,
  with ``--cache-dir``, each cell's cache hit/miss status, without
  simulating anything.  Honours ``--seeds`` (shows the expanded
  scenario × seed product) and ``--param``; direct experiments have no
  grid and are reported as such.  Text-only: combining it with
  ``--format``/``--output`` is rejected.
* ``--format {text,json,csv}`` — stdout format.
* ``--output FILE`` — also write the JSON run record (any format).
* ``--workers N`` — process fan-out (default: ``EVA_BENCH_WORKERS``).
* ``--fabric URL`` — run scenario grids on a distributed sweep fabric
  (``python -m repro.sim.fabric serve`` + workers) instead of local
  processes; results come back byte-identical through the fabric's
  shared content-addressed store.  With ``--cache-dir`` the local
  directory becomes a read-through cache in front of the fabric.
* ``--fabric-timeout S`` — give up on an unresponsive fleet after S
  seconds (default: wait forever).
* ``--param k=v`` — experiment-specific size override (e.g.
  ``--param num_jobs=60``), repeatable.

``EVA_BENCH_SCALE`` scales default experiment sizes
(see :mod:`repro.experiments.common`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Sequence

from repro.experiments.registry import (
    ExperimentContext,
    ExperimentRun,
    all_specs,
    experiment_ids,
    get_experiment,
    run_experiment,
)

_COMMANDS = ("list", "run", "report")


def _parse_param(text: str) -> tuple[str, Any]:
    from repro.analysis.reporting import parse_cell

    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--param expects key=value, got {text!r}"
        )
    return key, parse_cell(raw)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's table/figure experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="show registered experiments")
    list_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "ids", nargs="+", help="experiment ids (or 'all')"
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="run grid experiments across N seeds and report mean ± std",
    )
    run_parser.add_argument("--cache-dir", default=None)
    run_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the scenario grid and cache status without simulating",
    )
    run_parser.add_argument(
        "--format", choices=("text", "json", "csv"), default="text"
    )
    run_parser.add_argument(
        "--output", default=None, help="write the JSON run record here"
    )
    run_parser.add_argument("--workers", type=int, default=None)
    run_parser.add_argument(
        "--fabric",
        default=None,
        metavar="URL",
        help="run scenario grids on a sweep-fabric fleet at this URL",
    )
    run_parser.add_argument(
        "--fabric-timeout",
        type=float,
        default=None,
        metavar="S",
        help="give up on an unresponsive fleet after S seconds",
    )
    run_parser.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        default=[],
        metavar="KEY=VALUE",
        help="experiment-specific override, repeatable",
    )

    report_parser = sub.add_parser(
        "report", help="re-render a saved JSON run record"
    )
    report_parser.add_argument("file", help="JSON file written by run --output")
    report_parser.add_argument(
        "--format", choices=("text", "json", "csv"), default="text"
    )
    report_parser.add_argument(
        "--id",
        action="append",
        default=None,
        help="only render these experiment ids",
    )
    return parser


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    specs = all_specs()
    if args.format == "json":
        print(
            json.dumps(
                [
                    {"id": s.id, "kind": s.kind, "title": s.title}
                    for s in specs
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(s.id) for s in specs)
    for spec in specs:
        print(f"{spec.id.ljust(width)}  [{spec.kind:>6}]  {spec.title}")
    return 0


def _resolve_ids(ids: Sequence[str]) -> list[str]:
    unknown = [n for n in ids if n != "all" and n not in experiment_ids()]
    if unknown:
        raise KeyError(unknown)
    if "all" in ids:
        return list(experiment_ids())
    return list(dict.fromkeys(ids))


def _csv_blocks(payload: dict) -> str:
    from repro.analysis.reporting import ExperimentTable

    lines: list[str] = []
    for table in payload["tables"]:
        title = table["title"]
        if not title.startswith(payload["id"]):
            title = f"{payload['id']}: {title}"
        lines.append(f"# {title}")
        lines.append(ExperimentTable.from_json(table).to_csv().rstrip("\n"))
        lines.append("")
    return "\n".join(lines)


def _print_run(payload: dict, fmt: str) -> None:
    if fmt == "csv":
        print(_csv_blocks(payload))
        return
    print(payload["text"])
    cache = payload.get("cache")
    if cache is not None:
        total = cache["hits"] + cache["misses"]
        print(
            f"[cache] hits={cache['hits']}/{total} misses={cache['misses']} "
            f"stores={cache['stores']} uncacheable={cache['uncacheable']}"
        )
    print(f"[{payload['id']} finished in {payload['elapsed_s']:.1f}s]\n")


def _dry_run_grid(
    spec: Any,
    ctx: "ExperimentContext",
    seeds: tuple[int, ...] | None,
    store: Any,
) -> None:
    """Print one grid experiment's planned scenarios and cache status."""
    from repro.sim.batch import reseed
    from repro.sim.fingerprint import FingerprintError

    grid = spec.build(ctx)
    scenarios = grid.scenarios
    if seeds is not None and spec.multi_seed:
        cells = [
            reseed(scenario, seed) for scenario in scenarios for seed in seeds
        ]
        shape = f"{len(scenarios)} scenario(s) x {len(seeds)} seed(s)"
    else:
        cells = scenarios
        shape = f"{len(scenarios)} scenario(s)"
    print(f"{spec.id}: {shape}")
    for scenario in cells:
        try:
            fp = scenario.fingerprint()[:16]
        except FingerprintError:
            fp = "-" * 16
        status = store.probe(scenario) if store is not None else "-"
        print(f"  {fp}  {status:<11}  {scenario.label}")


def _cmd_dry_run(
    names: Sequence[str],
    args: argparse.Namespace,
    store: Any,
    seeds: tuple[int, ...] | None,
    params: dict,
) -> int:
    for name in names:
        spec = get_experiment(name)
        if spec.kind != "grid":
            print(f"{name}: direct experiment — no scenario grid to plan")
            print()
            continue
        ctx = ExperimentContext(
            seed=args.seed,
            seeds=seeds,
            store=store,
            workers=args.workers,
            params=params,
        )
        _dry_run_grid(spec, ctx, seeds, store)
        print()
    if store is not None:
        stats = store.stats
        total = stats.hits + stats.misses
        print(
            f"[cache] hits={stats.hits}/{total} misses={stats.misses} "
            f"uncacheable={stats.uncacheable} "
            f"(code token {store.token[:16]})"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        names = _resolve_ids(args.ids)
    except KeyError as exc:
        print(f"unknown experiment(s): {exc.args[0]}; try 'list'", file=sys.stderr)
        return 2
    if args.seeds is not None and args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.dry_run and (args.format != "text" or args.output is not None):
        print(
            "--dry-run prints a text plan only; it cannot be combined "
            "with --format or --output",
            file=sys.stderr,
        )
        return 2

    store = None
    dispatcher = None
    if args.fabric is not None:
        from repro.sim.fabric.dispatch import FabricDispatcher

        dispatcher = FabricDispatcher(
            args.fabric, timeout_s=args.fabric_timeout
        )
        store = dispatcher.make_store(args.cache_dir)
    elif args.cache_dir is not None:
        from repro.sim.results import ResultStore

        store = ResultStore(args.cache_dir)
    seeds = (
        tuple(range(args.seed, args.seed + args.seeds))
        if args.seeds is not None
        else None
    )
    params = dict(args.param)

    if args.dry_run:
        return _cmd_dry_run(names, args, store, seeds, params)

    runs: list[ExperimentRun] = []
    for name in names:
        spec = get_experiment(name)
        ctx = ExperimentContext(
            seed=args.seed,
            seeds=seeds if spec.kind == "grid" else None,
            store=store if spec.kind == "grid" else None,
            workers=args.workers,
            params=params,
            dispatcher=dispatcher if spec.kind == "grid" else None,
        )
        runs.append(run_experiment(spec, ctx))

    record = {
        "command": "run",
        "ids": names,
        "seed": args.seed,
        "seeds": list(seeds) if seeds is not None else None,
        "cache_dir": args.cache_dir,
        "fabric": args.fabric,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "experiments": [run.to_jsonable() for run in runs],
    }
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")

    if args.format == "json":
        print(json.dumps(record, indent=2))
    else:
        for run in runs:
            _print_run(run.to_jsonable(), args.format)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read run record {args.file!r}: {exc}", file=sys.stderr)
        return 2
    payloads = record.get("experiments", [])
    if args.id:
        wanted = set(args.id)
        payloads = [p for p in payloads if p["id"] in wanted]
        missing = wanted - {p["id"] for p in payloads}
        if missing:
            print(f"not in record: {sorted(missing)}", file=sys.stderr)
            return 2
    if args.format == "json":
        print(json.dumps({**record, "experiments": payloads}, indent=2))
        return 0
    for payload in payloads:
        if args.format == "csv":
            print(_csv_blocks(payload))
        else:
            print(payload["text"])
            print(f"[{payload['id']} from {args.file}]\n")
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if not args:
        print(__doc__)
        return 0
    # Back-compat: `python -m repro.experiments table13` means `run table13`.
    if args[0] not in _COMMANDS and args[0] not in ("-h", "--help"):
        args = ["run", *args]
    parsed = _build_parser().parse_args(args)
    if parsed.command == "list":
        return _cmd_list(parsed)
    if parsed.command == "run":
        return _cmd_run(parsed)
    return _cmd_report(parsed)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
