"""Command-line runner for the experiment drivers.

Usage::

    python -m repro.experiments list            # show available experiments
    python -m repro.experiments table13         # run one and print its table
    python -m repro.experiments all             # run everything (slow)

``EVA_BENCH_SCALE`` scales experiment sizes (see repro.experiments.common).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    fig01_interference,
    fig04_interference_sweep,
    fig05_migration_sweep,
    fig06_workload_mix,
    fig07_multitask_sweep,
    fig08_arrival_rate,
    table01_delays,
    table04_microbench,
    table05_runtime,
    table06_multitask,
    table07_workloads,
    table10_e2e_large,
    table11_e2e_small,
    table12_fidelity,
    table13_alibaba,
    table14_gavel,
)

#: name -> callable returning something with a render()able table.
_RUNNERS = {
    "fig01": lambda: fig01_interference.run(),
    "fig04": lambda: _sweep(fig04_interference_sweep, "Figure 4"),
    "fig05": lambda: _fig05(),
    "fig06": lambda: _sweep(fig06_workload_mix, "Figure 6"),
    "fig07": lambda: _sweep(fig07_multitask_sweep, "Figure 7"),
    "fig08": lambda: _sweep(fig08_arrival_rate, "Figure 8"),
    "table01": lambda: table01_delays.run(),
    "table04": lambda: table04_microbench.run().table,
    "table05": lambda: table05_runtime.run(),
    "table06": lambda: table06_multitask.run().table,
    "table07": lambda: table07_workloads.run_table7(),
    "table08": lambda: table07_workloads.run_table8(),
    "table09": lambda: table07_workloads.run_table9(),
    "table10": lambda: _table10(),
    "table11": lambda: table11_e2e_small.run().table,
    "table12": lambda: table12_fidelity.run().table,
    "table13": lambda: table13_alibaba.run().table,
    "table14": lambda: table14_gavel.run().table,
}


class _TextResult:
    """Adapter for runners that emit pre-rendered text."""

    def __init__(self, text: str):
        self._text = text

    def render(self) -> str:
        return self._text


def _sweep(module, chart_title: str) -> _TextResult:
    """Run a sweep driver and render its table plus an ASCII chart."""
    from repro.analysis.charts import sweep_chart

    result = module.run()
    return _TextResult(
        result.table.render()
        + "\n\n"
        + sweep_chart(chart_title, result.norm_cost)
    )


def _fig05() -> _TextResult:
    result = fig05_migration_sweep.run()
    return _TextResult(
        result.adoption_table.render() + "\n\n" + result.cost_table.render()
    )


def _table10() -> _TextResult:
    result = table10_e2e_large.run()
    return _TextResult(result.table.render() + "\n\n" + result.uptime_cdf_text)


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0
    name = argv[1]
    if name == "list":
        for key in sorted(_RUNNERS):
            print(key)
        return 0
    names = sorted(_RUNNERS) if name == "all" else [name]
    unknown = [n for n in names if n not in _RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    for key in names:
        start = time.perf_counter()
        result = _RUNNERS[key]()
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{key} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
