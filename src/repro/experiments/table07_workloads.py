"""Tables 7, 8 and 9 — workload and trace statistics renders.

These are data tables rather than experiments; rendering them validates
the transcription (Table 7) and the trace generators' distributional
match (Tables 8 and 9).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentSpec,
    register,
)
from repro.workloads.alibaba import (
    TABLE8_GPU_COMPOSITION,
    synthesize_alibaba_trace,
)
from repro.workloads.gavel import sample_gavel_durations_hours
from repro.workloads.workloads import TABLE7_WORKLOADS


def run_table7() -> ExperimentTable:
    rows = tuple(
        (
            w.name,
            w.description,
            int(w.gpus),
            f"{w.cpus_p3:g}" + (f" ({w.cpus_other:g})" if w.cpus_other != w.cpus_p3 else ""),
            int(w.ram_gb),
            int(w.checkpoint_s),
            int(w.launch_s),
            w.tasks_per_job,
        )
        for w in TABLE7_WORKLOADS
    )
    return ExperimentTable(
        title="Table 7: evaluated workloads and per-task resource demands",
        headers=(
            "Workload",
            "Description",
            "GPU",
            "CPU (C7i/R7i)",
            "RAM (GB)",
            "Ckpt (s)",
            "Launch (s)",
            "Tasks/Job",
        ),
        rows=rows,
    )


def run_table8(num_jobs: int | None = None, seed: int = 0) -> ExperimentTable:
    num_jobs = num_jobs if num_jobs is not None else scaled(4000, minimum=1000)
    trace = synthesize_alibaba_trace(num_jobs, seed=seed)
    generated = trace.gpu_demand_composition()
    rows = tuple(
        (
            gpus,
            f"{target * 100:.2f}%",
            f"{generated.get(gpus, 0.0) * 100:.2f}%",
        )
        for gpus, target in TABLE8_GPU_COMPOSITION
    )
    return ExperimentTable(
        title=f"Table 8: job composition by GPU demand ({num_jobs} generated jobs)",
        headers=("GPU Demand", "Published", "Generated"),
        rows=rows,
    )


def run_table9(num_jobs: int | None = None, seed: int = 0) -> ExperimentTable:
    num_jobs = num_jobs if num_jobs is not None else scaled(4000, minimum=1000)
    trace = synthesize_alibaba_trace(num_jobs, seed=seed)
    ali = np.array([j.duration_hours for j in trace.jobs])
    gavel = sample_gavel_durations_hours(np.random.default_rng(seed), num_jobs)
    rows = (
        (
            "Alibaba",
            round(float(ali.mean()), 1),
            round(float(np.median(ali)), 1),
            round(float(np.quantile(ali, 0.8)), 1),
            round(float(np.quantile(ali, 0.95)), 1),
            "9.1 / 0.2 / 1.0 / 5.2",
        ),
        (
            "Gavel",
            round(float(gavel.mean()), 1),
            round(float(np.median(gavel)), 1),
            round(float(np.quantile(gavel, 0.8)), 1),
            round(float(np.quantile(gavel, 0.95)), 1),
            "16.7 / 4.5 / 16.4 / 96.6",
        ),
    )
    return ExperimentTable(
        title=f"Table 9: job duration statistics ({num_jobs} samples)",
        headers=(
            "Model",
            "Mean (hr)",
            "Median (hr)",
            "P80 (hr)",
            "P95 (hr)",
            "Published (mean/med/P80/P95)",
        ),
        rows=rows,
    )


SPEC_TABLE7 = register(
    ExperimentSpec(
        id="table07",
        title="Data table: evaluated workloads and per-task demands",
        direct=lambda ctx: run_table7(),
    )
)

SPEC_TABLE8 = register(
    ExperimentSpec(
        id="table08",
        title="Data table: generated GPU-demand composition vs published",
        direct=lambda ctx: run_table8(
            num_jobs=ctx.param("num_jobs"), seed=ctx.seed
        ),
    )
)

SPEC_TABLE9 = register(
    ExperimentSpec(
        id="table09",
        title="Data table: generated duration statistics vs published",
        direct=lambda ctx: run_table9(
            num_jobs=ctx.param("num_jobs"), seed=ctx.seed
        ),
    )
)
