"""Spot eviction notices — the protocol-native scenario family (§7).

Sweeps the spot market's advance-warning window (``SpotConfig.notice_s``)
and compares plain Eva against :class:`~repro.core.scheduler.EvictionAwareEvaScheduler`,
the protocol-native policy that consumes
:class:`~repro.core.protocol.SpotEvictionNotice` observations and drains
doomed instances before the market reclaims them.  No-Packing rides along
as the cost-normalization baseline.

Expected shape: at ``notice=0`` the two Eva variants are *identical*
(no notices are ever emitted — a built-in sanity row); with a notice
window of at least one scheduling period the eviction-aware variant
converts forced preemptions into planned drains — preemptions drop to
(near) zero, migrations rise, and JCT improves because tasks skip the
queued-until-next-round gap after each eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec
from repro.sim.simulator import DEFAULT_PERIOD_S, SpotConfig

#: Advance-warning windows, in scheduling periods (0 = classic spot
#: market with no warning; >= 1 guarantees a reacting round).
NOTICE_PERIODS = (0.0, 1.0, 2.0)

#: Preemption rate making evictions frequent enough to matter on the
#: trace sizes below (a few per simulated hour of fleet time).
PREEMPTION_RATE_PER_HOUR = 0.2

SCHEDULERS = {
    "No-Packing": "no-packing",
    "Eva": "eva",
    "Eva-Eviction-Aware": "eva-eviction-aware",
}


@dataclass(frozen=True)
class SpotEvictionResult:
    table: ExperimentTable
    #: (display name, notice periods) -> preemption count.
    preemptions: dict[tuple[str, float], int]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(40, minimum=12, maximum=400))
    trace = TraceSpec.make("synthetic", num_jobs=num_jobs, seed=ctx.seed)
    cells = grid_cells(
        NOTICE_PERIODS,
        SCHEDULERS,
        lambda periods, registry_name: Scenario(
            scheduler=registry_name,
            trace=trace,
            spot=SpotConfig(
                enabled=True,
                preemption_rate_per_hour=PREEMPTION_RATE_PER_HOUR,
                seed=ctx.seed,
                notice_s=periods * DEFAULT_PERIOD_S,
            ),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> SpotEvictionResult:
    rows = []
    preemptions: dict[tuple[str, float], int] = {}
    for periods in NOTICE_PERIODS:
        point_results = dict(results[periods])
        baseline = point_results["No-Packing"]
        for name in SCHEDULERS:
            result = point_results[name]
            preemptions[(name, periods)] = result.preemptions
            rows.append(
                (
                    f"{periods:.0f}p",
                    name,
                    round(result.total_cost, 2),
                    round(result.total_cost / baseline.total_cost, 3),
                    round(result.mean_jct_hours(), 3),
                    result.preemptions,
                    result.migrations,
                )
            )
    table = ExperimentTable(
        title=(
            f"Spot eviction notices: cost/JCT vs notice window "
            f"({grid.meta['num_jobs']} jobs, "
            f"rate {PREEMPTION_RATE_PER_HOUR}/h)"
        ),
        headers=(
            "Notice",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "JCT (hours)",
            "Preemptions",
            "Migrations",
        ),
        rows=tuple(rows),
        notes=(
            "notice window in scheduling periods (1p = 300s)",
            "normalized to No-Packing at the same notice window",
        ),
    )
    return SpotEvictionResult(table=table, preemptions=preemptions)


def _present(result: SpotEvictionResult) -> Presentation:
    return Presentation.of_tables(result.table)


SPEC = register(
    ExperimentSpec(
        id="spot-eviction",
        title="Extension: spot eviction notices vs eviction-aware Eva",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> SpotEvictionResult:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
