"""Table 13 — end-to-end simulation with Alibaba job durations.

The headline experiment: the Alibaba-like trace (Table 8 GPU mix, Table 9
Alibaba durations) under all five schedulers.  The paper's full trace has
6,274 jobs; the default here is scaled (``EVA_BENCH_SCALE=8`` restores
full size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, comparison_from_results
from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    ScenarioGrid,
    comparison_grid,
    register,
    run_experiment,
)
from repro.sim.batch import TraceSpec


@dataclass(frozen=True)
class Table13Result:
    table: ExperimentTable
    comparison: ComparisonResult


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param(
        "num_jobs", scaled(500, minimum=100, maximum=6274)
    )
    # A spec, not an inline trace: workers rebuild the (up to 6,274-job)
    # trace instead of unpickling one copy per scheduler.
    trace = TraceSpec.make("alibaba", num_jobs=num_jobs, seed=ctx.seed)
    return comparison_grid(
        trace, seed=ctx.seed, meta={"trace": trace, "num_jobs": num_jobs}
    )


def _aggregate(grid: ScenarioGrid, results) -> Table13Result:
    comparison = comparison_from_results(grid.meta["trace"], results[None])
    table = comparison.end_to_end_table(
        f"Table 13: end-to-end simulation, Alibaba durations "
        f"({grid.meta['num_jobs']} jobs)"
    )
    return Table13Result(table=table, comparison=comparison)


SPEC = register(
    ExperimentSpec(
        id="table13",
        title="End-to-end, Alibaba durations (headline experiment)",
        build=_build,
        aggregate=_aggregate,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Table13Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
