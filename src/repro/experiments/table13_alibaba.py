"""Table 13 — end-to-end simulation with Alibaba job durations.

The headline experiment: the Alibaba-like trace (Table 8 GPU mix, Table 9
Alibaba durations) under all five schedulers.  The paper's full trace has
6,274 jobs; the default here is scaled (``EVA_BENCH_SCALE=8`` restores
full size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, compare_schedulers
from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.sim.batch import TraceSpec


@dataclass(frozen=True)
class Table13Result:
    table: ExperimentTable
    comparison: ComparisonResult


def run(num_jobs: int | None = None, seed: int = 0) -> Table13Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(500, minimum=100, maximum=6274)
    # A spec, not an inline trace: workers rebuild the (up to 6,274-job)
    # trace instead of unpickling one copy per scheduler.
    trace = TraceSpec.make("alibaba", num_jobs=num_jobs, seed=seed)
    comparison = compare_schedulers(trace)
    table = comparison.end_to_end_table(
        f"Table 13: end-to-end simulation, Alibaba durations ({num_jobs} jobs)"
    )
    return Table13Result(table=table, comparison=comparison)
