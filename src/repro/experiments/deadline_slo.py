"""Deadline SLOs — cost vs. attainment across deadline tightness.

Sweeps the deadline *tightness* (the slack factor between a job's
standalone duration and its SLO) over a deadline-bearing synthetic trace
and compares plain Eva against
:class:`~repro.core.deadline.DeadlineAwareEvaScheduler`, the
protocol-native policy that consumes
:class:`~repro.core.protocol.DeadlineApproaching` observations and
escalates an at-risk job's reservation-price degradation charge so
Algorithm 1 un-packs it.  No-Packing rides along as the
cost-normalization baseline — and as the attainment ceiling, since it
never co-locates (every miss under No-Packing is due to queueing and
launch delays alone).

Expected shape: at generous slack all three schedulers attain (deadline
awareness costs nothing — the urgency machinery never engages); as
slack tightens toward the interference stretch, Eva starts missing the
deadlines of jobs it packed, while Eva-Deadline isolates exactly those
jobs and holds attainment at a cost between Eva's and No-Packing's; at
near-1 slack the SLO is unattainable for everyone (provisioning delays
alone exceed the budget) and the policies converge again.

The scenarios raise the simulator's ``deadline_warning_s`` far above
its two-period default so SLOs are announced essentially at arrival —
the policy's own risk estimate, not the warning horizon, then decides
*when* to escalate.  Tightness cells share the seed, so every cell sees
the identical underlying job stream (arrivals, workloads, durations)
with only the deadlines re-scaled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec, TrialSet

#: Deadline slack factors (deadline = slack × standalone duration),
#: tightest first.  1.25–1.4 is the regime where co-location
#: interference is exactly what breaks the SLO (queueing and launch
#: delays alone fit, a 20–30% throughput loss does not); 2.0 is
#: comfortable — the sanity anchor where deadline awareness must cost
#: nothing.
TIGHTNESS = (1.25, 1.4, 2.0)

#: Fraction of jobs carrying a deadline; the rest keep cost-packing
#: meaningful at every sweep point.
DEADLINE_FRACTION = 0.5

#: Mean inter-arrival time: denser than the §6.1 default (20 min) so
#: enough jobs overlap for packing — and its interference — to matter
#: on CI-sized traces.
MEAN_INTERARRIVAL_S = 600.0

#: Warning horizon: announce SLOs at arrival (escalation timing is the
#: policy's risk estimate, not the horizon).
WARNING_S = 7 * 24 * 3600.0

SCHEDULERS = {
    "No-Packing": "no-packing",
    "Eva": "eva",
    "Eva-Deadline": "eva-deadline",
}


@dataclass(frozen=True)
class DeadlineSloResult:
    table: ExperimentTable
    #: (display name, tightness) -> deadline attainment in [0, 1].
    attainment: dict[tuple[str, float], float]
    #: (display name, tightness) -> deadline miss count.
    misses: dict[tuple[str, float], int]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(32, minimum=12, maximum=400))
    cells = grid_cells(
        TIGHTNESS,
        SCHEDULERS,
        lambda slack, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "synthetic",
                num_jobs=num_jobs,
                seed=ctx.seed,
                mean_interarrival_s=MEAN_INTERARRIVAL_S,
                deadline_fraction=DEADLINE_FRACTION,
                deadline_slack_range=(slack, slack),
            ),
            deadline_warning_s=WARNING_S,
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> DeadlineSloResult:
    rows = []
    attainment: dict[tuple[str, float], float] = {}
    misses: dict[tuple[str, float], int] = {}
    for slack in TIGHTNESS:
        point_results = dict(results[slack])
        baseline = point_results["No-Packing"]
        for name in SCHEDULERS:
            result = point_results[name]
            attainment[(name, slack)] = result.deadline_attainment
            misses[(name, slack)] = result.deadline_miss_count
            rows.append(
                (
                    f"{slack:.2f}x",
                    name,
                    round(result.total_cost, 2),
                    round(result.total_cost / baseline.total_cost, 3),
                    f"{result.deadline_attainment:.1%}",
                    f"{result.deadline_miss_count}/{result.deadline_job_count}",
                    round(result.deadline_total_lateness_s / 60.0, 1),
                    round(result.mean_jct_hours(), 3),
                )
            )
    table = ExperimentTable(
        title=(
            f"Deadline SLOs: cost vs attainment across tightness "
            f"({grid.meta['num_jobs']} jobs, "
            f"{DEADLINE_FRACTION:.0%} deadline-bearing)"
        ),
        headers=(
            "Tightness",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "Attainment",
            "Missed",
            "Lateness (min)",
            "JCT (hours)",
        ),
        rows=tuple(rows),
        notes=(
            "tightness = deadline / standalone duration (clock starts at arrival)",
            "normalized to No-Packing at the same tightness",
        ),
    )
    return DeadlineSloResult(table=table, attainment=attainment, misses=misses)


def _present(result: DeadlineSloResult) -> Presentation:
    return Presentation.of_tables(result.table)


def _trial_table(
    spec: ExperimentSpec, grid: ScenarioGrid, trials: TrialSet
) -> ExperimentTable:
    """Multi-seed summary keeping the cost-vs-attainment frontier visible."""
    if len(trials) != len(grid.cells):
        raise ValueError(
            f"{len(trials)} aggregates for {len(grid.cells)} grid cells"
        )
    by_cell = list(zip(grid.cells, trials.aggregates))
    baselines = {
        cell.point: aggregate
        for cell, aggregate in by_cell
        if cell.display == grid.baseline
    }
    rows = []
    for cell, aggregate in by_cell:
        baseline = baselines[cell.point]
        rows.append(
            (
                f"{cell.point:.2f}x",
                cell.display,
                f"{aggregate.total_cost:.2f}",
                f"{aggregate.normalized_cost(baseline):.3f}",
                f"{aggregate.stat(lambda r: r.deadline_attainment):.3f}",
                f"{aggregate.stat(lambda r: float(r.deadline_miss_count)):.1f}",
                f"{aggregate.stat(lambda r: r.deadline_total_lateness_s / 60.0):.1f}",
            )
        )
    seeds_text = ", ".join(str(s) for s in trials.seeds)
    return ExperimentTable(
        title=(
            f"{spec.id}: cost vs attainment across tightness "
            f"({len(trials.seeds)} seeds)"
        ),
        headers=(
            "Tightness",
            "Scheduler",
            "Total Cost ($)",
            "Norm. Cost",
            "Attainment",
            "Missed",
            "Lateness (min)",
        ),
        rows=tuple(rows),
        notes=(
            f"mean ± std (population) over seeds [{seeds_text}]",
            "tightness = deadline / standalone duration (clock starts at arrival)",
            "normalized to No-Packing at the same tightness and seed",
        ),
    )


SPEC = register(
    ExperimentSpec(
        id="deadline-slo",
        title="Extension: deadline SLOs — deadline-aware Eva vs Eva vs No-Packing",
        build=_build,
        aggregate=_aggregate,
        present=_present,
        trial_table=_trial_table,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> DeadlineSloResult:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
