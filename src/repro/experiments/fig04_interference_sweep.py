"""Figure 4 — impact of co-location interference.

Sweeps a uniform pairwise co-location throughput over
{1, 0.95, 0.9, 0.85, 0.8} and compares No-Packing, Owl, Eva-RP
(interference-blind packing) and Eva-TNRP (the full scheduler).  The
paper's expected shape: Eva-RP's cost and JCT blow up as interference
grows, while Eva-TNRP holds throughput near Owl's level and stays the
cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.baselines import NoPackingScheduler, OwlScheduler
from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import make_eva_variant
from repro.experiments.common import scaled
from repro.interference.model import InterferenceModel
from repro.sim.simulator import run_simulation
from repro.workloads.alibaba import synthesize_alibaba_trace

INTERFERENCE_LEVELS = (1.0, 0.95, 0.9, 0.85, 0.8)


@dataclass(frozen=True)
class Fig4Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]  # (scheduler, level) -> cost


def run(num_jobs: int | None = None, seed: int = 0) -> Fig4Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(200, minimum=60, maximum=3000)
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(num_jobs, seed=seed)

    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for level in INTERFERENCE_LEVELS:
        interference = InterferenceModel(uniform_value=level)
        factories = {
            "No-Packing": lambda: NoPackingScheduler(catalog),
            "Owl": lambda: OwlScheduler(catalog, profile=interference),
            "Eva-RP": lambda: make_eva_variant(catalog, "eva-rp"),
            "Eva-TNRP": lambda: make_eva_variant(catalog, "eva-tnrp"),
        }
        results = {
            name: run_simulation(trace, factory(), interference=interference)
            for name, factory in factories.items()
        }
        baseline = results["No-Packing"].total_cost
        for name, result in results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, level)] = norm
            rows.append(
                (
                    level,
                    name,
                    round(norm, 3),
                    round(result.mean_normalized_tput(), 3),
                    round(result.mean_jct_hours(), 2),
                )
            )
    table = ExperimentTable(
        title=f"Figure 4: impact of co-location interference ({num_jobs} jobs)",
        headers=(
            "Co-location Tput",
            "Scheduler",
            "Norm. Total Cost",
            "Norm. Throughput",
            "JCT (hours)",
        ),
        rows=tuple(rows),
        notes=("uniform pairwise throughput applied to every workload pair",),
    )
    return Fig4Result(table=table, norm_cost=norm_cost)
