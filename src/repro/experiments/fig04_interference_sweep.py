"""Figure 4 — impact of co-location interference.

Sweeps a uniform pairwise co-location throughput over
{1, 0.95, 0.9, 0.85, 0.8} and compares No-Packing, Owl, Eva-RP
(interference-blind packing) and Eva-TNRP (the full scheduler).  The
paper's expected shape: Eva-RP's cost and JCT blow up as interference
grows, while Eva-TNRP holds throughput near Owl's level and stays the
cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.interference.model import InterferenceModel
from repro.sim.batch import Scenario, TraceSpec, run_grid

INTERFERENCE_LEVELS = (1.0, 0.95, 0.9, 0.85, 0.8)

#: Display name → scheduler registry name for every sweep point.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Owl": "owl",
    "Eva-RP": "eva-rp",
    "Eva-TNRP": "eva-tnrp",
}


@dataclass(frozen=True)
class Fig4Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]  # (scheduler, level) -> cost


def run(num_jobs: int | None = None, seed: int = 0) -> Fig4Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(200, minimum=60, maximum=3000)
    # A spec, not an inline trace: workers rebuild it instead of paying
    # the per-cell pickle cost of a multi-thousand-job trace.
    trace = TraceSpec.make("alibaba", num_jobs=num_jobs, seed=seed)

    grid = run_grid(
        INTERFERENCE_LEVELS,
        SCHEDULERS,
        lambda level, registry_name: Scenario(
            scheduler=registry_name,
            trace=trace,
            interference=InterferenceModel(uniform_value=level),
            seed=seed,
        ),
    )

    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for level in INTERFERENCE_LEVELS:
        results = grid[level]
        baseline = results["No-Packing"].total_cost
        for name, result in results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, level)] = norm
            rows.append(
                (
                    level,
                    name,
                    round(norm, 3),
                    round(result.mean_normalized_tput(), 3),
                    round(result.mean_jct_hours(), 2),
                )
            )
    table = ExperimentTable(
        title=f"Figure 4: impact of co-location interference ({num_jobs} jobs)",
        headers=(
            "Co-location Tput",
            "Scheduler",
            "Norm. Total Cost",
            "Norm. Throughput",
            "JCT (hours)",
        ),
        rows=tuple(rows),
        notes=("uniform pairwise throughput applied to every workload pair",),
    )
    return Fig4Result(table=table, norm_cost=norm_cost)
