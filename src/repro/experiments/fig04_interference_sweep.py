"""Figure 4 — impact of co-location interference.

Sweeps a uniform pairwise co-location throughput over
{1, 0.95, 0.9, 0.85, 0.8} and compares No-Packing, Owl, Eva-RP
(interference-blind packing) and Eva-TNRP (the full scheduler).  The
paper's expected shape: Eva-RP's cost and JCT blow up as interference
grows, while Eva-TNRP holds throughput near Owl's level and stays the
cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.interference.model import InterferenceModel
from repro.sim.batch import Scenario, TraceSpec

INTERFERENCE_LEVELS = (1.0, 0.95, 0.9, 0.85, 0.8)

#: Display name → scheduler registry name for every sweep point.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Owl": "owl",
    "Eva-RP": "eva-rp",
    "Eva-TNRP": "eva-tnrp",
}


@dataclass(frozen=True)
class Fig4Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]  # (scheduler, level) -> cost


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(200, minimum=60, maximum=3000))
    # A spec, not an inline trace: workers rebuild it instead of paying
    # the per-cell pickle cost of a multi-thousand-job trace.
    trace = TraceSpec.make("alibaba", num_jobs=num_jobs, seed=ctx.seed)
    cells = grid_cells(
        INTERFERENCE_LEVELS,
        SCHEDULERS,
        lambda level, registry_name: Scenario(
            scheduler=registry_name,
            trace=trace,
            interference=InterferenceModel(uniform_value=level),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> Fig4Result:
    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for level in INTERFERENCE_LEVELS:
        level_results = results[level]
        baseline = level_results["No-Packing"].total_cost
        for name, result in level_results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, level)] = norm
            rows.append(
                (
                    level,
                    name,
                    round(norm, 3),
                    round(result.mean_normalized_tput(), 3),
                    round(result.mean_jct_hours(), 2),
                )
            )
    table = ExperimentTable(
        title=f"Figure 4: impact of co-location interference "
        f"({grid.meta['num_jobs']} jobs)",
        headers=(
            "Co-location Tput",
            "Scheduler",
            "Norm. Total Cost",
            "Norm. Throughput",
            "JCT (hours)",
        ),
        rows=tuple(rows),
        notes=("uniform pairwise throughput applied to every workload pair",),
    )
    return Fig4Result(table=table, norm_cost=norm_cost)


def _present(result: Fig4Result) -> Presentation:
    from repro.analysis.charts import sweep_chart

    return Presentation.of_tables(
        result.table, extra=sweep_chart("Figure 4", result.norm_cost)
    )


SPEC = register(
    ExperimentSpec(
        id="fig04",
        title="Sweep: uniform co-location interference level",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Fig4Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
