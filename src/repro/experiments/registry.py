"""Declarative experiment API: specs, the registry, and the runner.

Every paper table/figure is described by an :class:`ExperimentSpec` —
an id, a *scenario grid builder*, an *aggregation*, and a *presentation*
— registered in a process-wide registry at import time of its module.
The CLI (``python -m repro.experiments``), the examples, and the tests
all drive experiments through :func:`run_experiment`, which owns the
shared mechanics the per-module scripts used to hand-roll:

* building the scenario grid from an :class:`ExperimentContext`
  (seed, scale overrides);
* executing it through :func:`repro.sim.batch.run_batch` — fanning out
  over ``EVA_BENCH_WORKERS`` processes and deduplicating against a
  persistent :class:`~repro.sim.results.ResultStore` when one is given;
* multi-seed trials: with ``ctx.seeds`` set, the grid runs across every
  seed via :func:`repro.sim.batch.run_trials` and is presented as a
  mean ± std summary table instead of the single-seed aggregation.

Experiments with no scenario grid (data tables, micro-benchmarks that
time code rather than simulate traces) register a ``direct`` callable
instead; they run in-process and ignore seeds/cache.

Single-seed runs through a grid spec execute the exact scenarios the
pre-redesign per-module scripts built, so their tables are
byte-identical (guarded by the equivalence tests in
``tests/test_experiment_registry.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.reporting import ExperimentTable
from repro.sim.batch import (
    Scenario,
    TrialSet,
    run_batch,
    run_trials,
)
from repro.sim.metrics import SimulationResult
from repro.sim.results import CacheStats, ResultStore

__all__ = [
    "ExperimentContext",
    "ExperimentRun",
    "ExperimentSpec",
    "GridCell",
    "Presentation",
    "ScenarioGrid",
    "all_specs",
    "comparison_grid",
    "experiment_ids",
    "get_experiment",
    "grid_cells",
    "register",
    "run_experiment",
    "trial_summary_table",
]


# ---------------------------------------------------------------------------
# Context: everything a spec may read while building/aggregating
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentContext:
    """Run-time inputs to an experiment.

    Attributes:
        seed: Base seed for single-seed runs (and for grid construction).
        seeds: When set, run the grid across these seeds and aggregate
            to mean ± std; ``None`` means the classic single-seed path.
        store: Optional persistent result cache.
        workers: Process fan-out override (``None`` → EVA_BENCH_WORKERS).
        params: Experiment-specific size overrides (e.g. ``num_jobs``);
            ``None`` values fall through to each experiment's default.
        dispatcher: Optional
            :class:`~repro.sim.fabric.dispatch.FabricDispatcher` — grid
            experiments then execute on a multi-host fleet instead of
            local processes (the CLI's ``--fabric URL``).
    """

    seed: int = 0
    seeds: tuple[int, ...] | None = None
    store: ResultStore | None = None
    workers: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    dispatcher: Any | None = None

    def param(self, name: str, default: Any = None) -> Any:
        value = self.params.get(name)
        return default if value is None else value


# ---------------------------------------------------------------------------
# Grids
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One cell of an experiment's scenario grid.

    ``point`` is the swept parameter value (``None`` for single-point
    comparisons); ``display`` is the scheduler's display name.
    """

    point: Any
    display: str
    scenario: Scenario


@dataclass(frozen=True)
class ScenarioGrid:
    """A spec's scenario grid plus grid-level metadata.

    ``meta`` carries values the aggregation needs that were resolved at
    build time (e.g. the scaled ``num_jobs``); ``baseline`` names the
    display used for normalized-cost columns in multi-seed summaries.
    """

    cells: tuple[GridCell, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)
    baseline: str | None = "No-Packing"

    @property
    def scenarios(self) -> list[Scenario]:
        return [cell.scenario for cell in self.cells]

    def points(self) -> list[Any]:
        seen: list[Any] = []
        for cell in self.cells:
            if cell.point not in seen:
                seen.append(cell.point)
        return seen

    def results_by_point(
        self, results: Sequence[SimulationResult]
    ) -> dict[Any, dict[str, SimulationResult]]:
        """Pair ordered batch results back onto ``{point: {display: r}}``."""
        if len(results) != len(self.cells):
            raise ValueError(
                f"{len(results)} results for {len(self.cells)} grid cells"
            )
        grid: dict[Any, dict[str, SimulationResult]] = {}
        for cell, result in zip(self.cells, results):
            grid.setdefault(cell.point, {})[cell.display] = result
        return grid


def grid_cells(
    points: Iterable[Any],
    schedulers: Mapping[str, str],
    make_scenario: Callable[[Any, str], Scenario],
) -> tuple[GridCell, ...]:
    """Build the standard (point × scheduler) cell list.

    Mirrors :func:`repro.sim.batch.run_grid`'s construction — including
    the ``"{display}@{point}"`` default label — so grids built here run
    the byte-identical scenarios the old per-module sweeps ran.
    """
    from dataclasses import replace

    cells: list[GridCell] = []
    for point in points:
        for display, registry_name in schedulers.items():
            scenario = make_scenario(point, registry_name)
            if scenario.name is None:
                scenario = replace(scenario, name=f"{display}@{point}")
            cells.append(GridCell(point=point, display=display, scenario=scenario))
    return tuple(cells)


def comparison_grid(
    trace: Any,
    schedulers: Mapping[str, str] | None = None,
    seed: int = 0,
    meta: Mapping[str, Any] | None = None,
    **kwargs: Any,
) -> ScenarioGrid:
    """A single-point comparison grid (the Table 10/11/13/14 shape).

    Wraps :func:`repro.analysis.comparison.comparison_scenarios`; the
    sweep point of every cell is ``None`` and displays follow the
    scheduler mapping's order.  Extra kwargs (interference, delay model,
    ...) pass through to the scenario builder.
    """
    from repro.analysis.comparison import comparison_scenarios

    cells = tuple(
        GridCell(point=None, display=scenario.name, scenario=scenario)
        for scenario in comparison_scenarios(
            trace, schedulers, seed=seed, **kwargs
        )
    )
    return ScenarioGrid(cells=cells, meta=dict(meta or {}))


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Presentation:
    """What an experiment shows: structured tables plus the full text.

    ``text`` is exactly what the CLI prints in ``--format text`` (tables
    plus any ASCII charts/CDFs); ``tables`` back the json/csv formats.
    """

    text: str
    tables: tuple[ExperimentTable, ...]

    @classmethod
    def of_tables(cls, *tables: ExperimentTable, extra: str = "") -> "Presentation":
        text = "\n\n".join(t.render() for t in tables)
        if extra:
            text = f"{text}\n\n{extra}" if text else extra
        return cls(text=text, tables=tuple(tables))


@dataclass(frozen=True)
class ExperimentSpec:
    """A declaratively described experiment.

    Exactly one of (``build`` + ``aggregate``) or ``direct`` must be
    set.  Grid specs get caching and multi-seed trials for free; direct
    specs run arbitrary in-process code (data tables, timing
    micro-benchmarks) and ignore seeds/cache.

    Attributes:
        id: CLI name, e.g. ``"table11"``.
        title: One-line human description (shown by ``list``).
        build: ``ctx -> ScenarioGrid`` — the scenario grid builder.
        aggregate: ``(grid, {point: {display: result}}) -> value`` —
            reduces raw results to the experiment's result object.
        present: ``value -> Presentation``; defaults to rendering
            ``value.table`` (or ``value`` itself when it *is* a table).
        direct: ``ctx -> value`` for non-grid experiments.
        multi_seed: Set False on grid specs whose grid already *is* a
            seed sweep (cells built from ``ctx.seed + trial``) —
            :func:`~repro.sim.batch.reseed` would collapse every trial
            onto one seed there, so ``ctx.seeds`` is ignored instead.
        trial_table: Optional override of the generic multi-seed summary
            (``(spec, grid, trials) -> ExperimentTable``) for grid specs
            whose headline metrics go beyond the standard cost/JCT/tput
            columns (e.g. ``deadline-slo``'s attainment columns).
    """

    id: str
    title: str
    build: Callable[[ExperimentContext], ScenarioGrid] | None = None
    aggregate: (
        Callable[[ScenarioGrid, dict[Any, dict[str, SimulationResult]]], Any] | None
    ) = None
    present: Callable[[Any], Presentation] | None = None
    direct: Callable[[ExperimentContext], Any] | None = None
    multi_seed: bool = True
    trial_table: (
        Callable[["ExperimentSpec", ScenarioGrid, TrialSet], ExperimentTable] | None
    ) = None

    def __post_init__(self) -> None:
        has_grid = self.build is not None and self.aggregate is not None
        if has_grid == (self.direct is not None):
            raise ValueError(
                f"experiment {self.id!r} must define either build+aggregate "
                "or direct (and not both)"
            )

    @property
    def kind(self) -> str:
        return "grid" if self.build is not None else "direct"

    def presentation(self, value: Any) -> Presentation:
        if self.present is not None:
            return self.present(value)
        table = value if isinstance(value, ExperimentTable) else value.table
        return Presentation.of_tables(table)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec`` under its id (idempotent for identical re-imports)."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing is not spec:
        raise ValueError(f"experiment id {spec.id!r} already registered")
    _REGISTRY[spec.id] = spec
    return spec


def get_experiment(experiment_id: str) -> ExperimentSpec:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"registered: {', '.join(experiment_ids())}"
        ) from None


def experiment_ids() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def all_specs() -> tuple[ExperimentSpec, ...]:
    return tuple(_REGISTRY[i] for i in experiment_ids())


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentRun:
    """One executed experiment: its value, presentation, and accounting."""

    spec: ExperimentSpec
    value: Any
    presentation: Presentation
    elapsed_s: float
    seeds: tuple[int, ...] | None = None
    cache: CacheStats | None = None

    def to_jsonable(self) -> dict:
        payload: dict[str, Any] = {
            "id": self.spec.id,
            "title": self.spec.title,
            "kind": self.spec.kind,
            "elapsed_s": round(self.elapsed_s, 3),
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "tables": [t.to_jsonable() for t in self.presentation.tables],
            "text": self.presentation.text,
        }
        if self.cache is not None:
            payload["cache"] = self.cache.as_dict()
        return payload


def run_experiment(
    spec: ExperimentSpec | str, ctx: ExperimentContext | None = None
) -> ExperimentRun:
    """Execute one experiment under ``ctx`` (see module docstring).

    Grid specs run through the batch layer (cache-aware, parallel);
    with ``ctx.seeds`` they run every seed and present a mean ± std
    summary (the value is then the :class:`~repro.sim.batch.TrialSet`).
    Direct specs call their runner in-process.
    """
    if isinstance(spec, str):
        spec = get_experiment(spec)
    if ctx is None:
        ctx = ExperimentContext()
    start = time.perf_counter()
    stats_before = ctx.store.stats.copy() if ctx.store is not None else None

    if spec.kind == "direct":
        value = spec.direct(ctx)
        presentation = spec.presentation(value)
        return ExperimentRun(
            spec=spec,
            value=value,
            presentation=presentation,
            elapsed_s=time.perf_counter() - start,
        )

    grid = spec.build(ctx)
    if ctx.seeds is not None and spec.multi_seed:
        trials = run_trials(
            grid.scenarios,
            ctx.seeds,
            workers=ctx.workers,
            store=ctx.store,
            dispatcher=ctx.dispatcher,
        )
        value: Any = trials
        make_table = spec.trial_table or trial_summary_table
        presentation = Presentation.of_tables(make_table(spec, grid, trials))
        seeds: tuple[int, ...] | None = trials.seeds
    else:
        outcomes = run_batch(
            grid.scenarios,
            workers=ctx.workers,
            store=ctx.store,
            dispatcher=ctx.dispatcher,
        )
        results = grid.results_by_point([o.result for o in outcomes])
        value = spec.aggregate(grid, results)
        presentation = spec.presentation(value)
        seeds = None

    cache = (
        ctx.store.stats - stats_before
        if ctx.store is not None and stats_before is not None
        else None
    )
    return ExperimentRun(
        spec=spec,
        value=value,
        presentation=presentation,
        elapsed_s=time.perf_counter() - start,
        seeds=seeds,
        cache=cache,
    )


def trial_summary_table(
    spec: ExperimentSpec, grid: ScenarioGrid, trials: TrialSet
) -> ExperimentTable:
    """The generic multi-seed summary: one row per cell, mean ± std cells.

    Normalized cost divides each trial by the grid's baseline display at
    the same sweep point and seed (omitted when the grid has no
    baseline).
    """
    if len(trials) != len(grid.cells):
        raise ValueError(
            f"{len(trials)} aggregates for {len(grid.cells)} grid cells"
        )
    by_cell = list(zip(grid.cells, trials.aggregates))
    baselines = {
        cell.point: aggregate
        for cell, aggregate in by_cell
        if grid.baseline is not None and cell.display == grid.baseline
    }
    with_norm = bool(baselines)
    multi_point = len(grid.points()) > 1
    rows = []
    for cell, aggregate in by_cell:
        label = (
            f"{cell.display}@{cell.point}" if multi_point else cell.display
        )
        row: list[Any] = [label, f"{aggregate.total_cost:.2f}"]
        if with_norm:
            baseline = baselines.get(cell.point)
            row.append(
                f"{aggregate.normalized_cost(baseline):.3f}"
                if baseline is not None
                else "-"
            )
        row.extend(
            (
                f"{aggregate.mean_jct_hours:.2f}",
                f"{aggregate.mean_normalized_tput:.3f}",
                f"{aggregate.instances_launched:.1f}",
            )
        )
        rows.append(tuple(row))
    headers = ["Scenario", "Total Cost ($)"]
    if with_norm:
        headers.append("Norm. Cost")
    headers.extend(("JCT (hours)", "Norm. Tput", "Instances"))
    seeds_text = ", ".join(str(s) for s in trials.seeds)
    return ExperimentTable(
        title=f"{spec.id}: multi-seed trials ({len(trials.seeds)} seeds)",
        headers=tuple(headers),
        rows=tuple(rows),
        notes=(
            f"mean ± std (population) over seeds [{seeds_text}]",
            *(
                (f"normalized to {grid.baseline} at the same sweep point and seed",)
                if with_norm
                else ()
            ),
        ),
    )
