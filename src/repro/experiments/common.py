"""Shared experiment configuration.

``EVA_BENCH_SCALE`` (float, default 1.0) scales trace sizes and trial
counts so the full harness finishes on a laptop while preserving result
shapes; set it above 1 (e.g. ``EVA_BENCH_SCALE=8``) to approach the
paper's full scale (6,274-job traces, 30-trial micro-benchmarks).

``EVA_BENCH_WORKERS`` (int, default 1) fans the experiment trial grids
out over that many worker processes via :mod:`repro.sim.batch`; the
parsing lives there (the batch layer owns the knob) and is re-exported
here so experiment code has one import site for both knobs.
"""

from __future__ import annotations

import math
import os

from repro.sim.batch import bench_workers

__all__ = ["bench_scale", "bench_workers", "scaled"]


def bench_scale() -> float:
    """The global experiment scale factor from ``EVA_BENCH_SCALE``."""
    raw = os.environ.get("EVA_BENCH_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"EVA_BENCH_SCALE must be a float, got {raw!r}") from exc
    if not math.isfinite(value):
        raise ValueError(f"EVA_BENCH_SCALE must be finite, got {value}")
    if value <= 0:
        raise ValueError(f"EVA_BENCH_SCALE must be positive, got {value}")
    return value


def scaled(base: int, minimum: int = 1, maximum: int | None = None) -> int:
    """Scale an experiment size by the global factor, with bounds."""
    value = max(minimum, int(round(base * bench_scale())))
    if maximum is not None:
        value = min(value, maximum)
    return value
