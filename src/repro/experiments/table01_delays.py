"""Table 1 — reconfiguration delays.

Samples the stochastic delay model (the "measured" mode used by the
fidelity experiment) and reports the observed range and average per delay
component next to the published numbers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentTable
from repro.cloud import delays as d
from repro.cloud.delays import DelayModel
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    register,
    run_experiment,
)


def _run(ctx: ExperimentContext) -> ExperimentTable:
    n = ctx.param("samples", scaled(500, minimum=100))
    model = DelayModel(stochastic=True, rng=np.random.default_rng(ctx.seed))
    columns = {
        "Instance Acquisition": (
            [model.acquisition_s() for _ in range(n)],
            d.ACQUISITION_RANGE_S,
            d.ACQUISITION_MEAN_S,
        ),
        "Instance Setup": (
            [model.setup_s() for _ in range(n)],
            d.SETUP_RANGE_S,
            d.SETUP_MEAN_S,
        ),
        "Job Checkpointing": (
            [model.checkpoint_s() for _ in range(n)],
            d.CHECKPOINT_RANGE_S,
            d.CHECKPOINT_MEAN_S,
        ),
        "Job Launching": (
            [model.launch_s() for _ in range(n)],
            d.LAUNCH_RANGE_S,
            d.LAUNCH_MEAN_S,
        ),
    }
    rows = []
    for name, (values, published_range, published_mean) in columns.items():
        arr = np.array(values)
        rows.append(
            (
                name,
                f"{arr.min():.0f} - {arr.max():.0f}",
                round(float(arr.mean()), 1),
                f"{published_range[0]:.0f} - {published_range[1]:.0f}",
                published_mean,
            )
        )
    return ExperimentTable(
        title="Table 1: reconfiguration delays (sampled vs published)",
        headers=(
            "Delay Type",
            "Sampled Range (s)",
            "Sampled Avg (s)",
            "Published Range (s)",
            "Published Avg (s)",
        ),
        rows=tuple(rows),
        notes=(f"{n} samples per component",),
    )


SPEC = register(
    ExperimentSpec(
        id="table01",
        title="Reconfiguration delays: sampled vs published Table 1",
        direct=_run,
    )
)


def run(samples: int | None = None, seed: int = 0) -> ExperimentTable:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"samples": samples})
    ).value
