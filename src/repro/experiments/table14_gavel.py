"""Table 14 — end-to-end simulation with Gavel job durations.

Same trace construction as Table 13 but durations drawn from the Gavel
model (10^x minutes; §6.1), emphasising long-running training jobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, comparison_from_results
from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    ScenarioGrid,
    comparison_grid,
    register,
    run_experiment,
)
from repro.sim.batch import TraceSpec


@dataclass(frozen=True)
class Table14Result:
    table: ExperimentTable
    comparison: ComparisonResult


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(250, minimum=80, maximum=6274))
    trace = TraceSpec.make("alibaba-gavel", num_jobs=num_jobs, seed=ctx.seed)
    return comparison_grid(
        trace, seed=ctx.seed, meta={"trace": trace, "num_jobs": num_jobs}
    )


def _aggregate(grid: ScenarioGrid, results) -> Table14Result:
    comparison = comparison_from_results(grid.meta["trace"], results[None])
    table = comparison.end_to_end_table(
        f"Table 14: end-to-end simulation, Gavel durations "
        f"({grid.meta['num_jobs']} jobs)"
    )
    return Table14Result(table=table, comparison=comparison)


SPEC = register(
    ExperimentSpec(
        id="table14",
        title="End-to-end, Gavel durations (long-running training jobs)",
        build=_build,
        aggregate=_aggregate,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Table14Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
