"""Table 14 — end-to-end simulation with Gavel job durations.

Same trace construction as Table 13 but durations drawn from the Gavel
model (10^x minutes; §6.1), emphasising long-running training jobs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.comparison import ComparisonResult, compare_schedulers
from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.workloads.alibaba import synthesize_alibaba_trace
from repro.workloads.gavel import sample_gavel_durations_hours


@dataclass(frozen=True)
class Table14Result:
    table: ExperimentTable
    comparison: ComparisonResult


def run(num_jobs: int | None = None, seed: int = 0) -> Table14Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(250, minimum=80, maximum=6274)
    rng = np.random.default_rng(seed + 7)
    durations = sample_gavel_durations_hours(rng, num_jobs)
    trace = synthesize_alibaba_trace(
        num_jobs,
        seed=seed,
        durations_hours=durations,
        name=f"alibaba-gavel-{num_jobs}",
    )
    comparison = compare_schedulers(trace)
    table = comparison.end_to_end_table(
        f"Table 14: end-to-end simulation, Gavel durations ({num_jobs} jobs)"
    )
    return Table14Result(table=table, comparison=comparison)
