"""Figure 8 — impact of job arrival rate.

Re-generates the Alibaba-like trace at arrival rates from 0.5 to 3
jobs/hour and compares all five schedulers.  Expected shape: packing
benefits shrink at low rates (fewer co-resident jobs) but Eva stays
10–16% below the other packing schedulers throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import compare_schedulers, standard_scheduler_factories
from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.experiments.common import scaled
from repro.workloads.alibaba import synthesize_alibaba_trace

ARRIVAL_RATES_PER_HOUR = (0.5, 1.0, 2.0, 3.0)


@dataclass(frozen=True)
class Fig8Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]


def run(num_jobs: int | None = None, seed: int = 0) -> Fig8Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(150, minimum=50, maximum=3000)
    catalog = ec2_catalog()

    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for rate in ARRIVAL_RATES_PER_HOUR:
        trace = synthesize_alibaba_trace(
            num_jobs, seed=seed, arrival_rate_per_hour=rate
        )
        comparison = compare_schedulers(
            trace, standard_scheduler_factories(catalog)
        )
        for name in comparison.results:
            norm = comparison.normalized_cost(name)
            norm_cost[(name, rate)] = norm
            rows.append((rate, name, round(norm, 3)))

    table = ExperimentTable(
        title=f"Figure 8: impact of job arrival rate ({num_jobs} jobs per point)",
        headers=("Arrival Rate (jobs/hr)", "Scheduler", "Norm. Total Cost"),
        rows=tuple(rows),
    )
    return Fig8Result(table=table, norm_cost=norm_cost)
