"""Figure 8 — impact of job arrival rate.

Re-generates the Alibaba-like trace at arrival rates from 0.5 to 3
jobs/hour and compares all five schedulers.  Expected shape: packing
benefits shrink at low rates (fewer co-resident jobs) but Eva stays
10–16% below the other packing schedulers throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import standard_scheduler_names
from repro.analysis.reporting import ExperimentTable
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec

ARRIVAL_RATES_PER_HOUR = (0.5, 1.0, 2.0, 3.0)


@dataclass(frozen=True)
class Fig8Result:
    table: ExperimentTable
    norm_cost: dict[tuple[str, float], float]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(150, minimum=50, maximum=3000))
    # One flat grid over (rate × scheduler) so the whole sweep fans out;
    # specs keep multi-thousand-job traces off the pickle wire.
    cells = grid_cells(
        ARRIVAL_RATES_PER_HOUR,
        standard_scheduler_names(),
        lambda rate, registry_name: Scenario(
            scheduler=registry_name,
            trace=TraceSpec.make(
                "alibaba",
                num_jobs=num_jobs,
                seed=ctx.seed,
                arrival_rate_per_hour=rate,
            ),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> Fig8Result:
    rows = []
    norm_cost: dict[tuple[str, float], float] = {}
    for rate in ARRIVAL_RATES_PER_HOUR:
        rate_results = results[rate]
        baseline = rate_results["No-Packing"].total_cost
        for name, result in rate_results.items():
            norm = result.total_cost / baseline
            norm_cost[(name, rate)] = norm
            rows.append((rate, name, round(norm, 3)))

    table = ExperimentTable(
        title=f"Figure 8: impact of job arrival rate "
        f"({grid.meta['num_jobs']} jobs per point)",
        headers=("Arrival Rate (jobs/hr)", "Scheduler", "Norm. Total Cost"),
        rows=tuple(rows),
    )
    return Fig8Result(table=table, norm_cost=norm_cost)


def _present(result: Fig8Result) -> Presentation:
    from repro.analysis.charts import sweep_chart

    return Presentation.of_tables(
        result.table, extra=sweep_chart("Figure 8", result.norm_cost)
    )


SPEC = register(
    ExperimentSpec(
        id="fig08",
        title="Sweep: job arrival rate",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Fig8Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
