"""Figure 1 — pairwise co-location throughput heatmap.

The paper measures each workload pair by co-locating the two jobs on one
instance for 10 minutes and normalizing by standalone throughput.  Our
measurement replays that protocol through the runtime substrate: both
tasks are hosted on one simulated worker, the worker advances for the
measurement window, and the reported throughput is normalized against a
standalone run — exercising the same reporting path the scheduler consumes.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    register,
    run_experiment,
)
from repro.cloud.catalog import ec2_catalog
from repro.cluster.instance import fresh_instance
from repro.interference.matrix import FIGURE1_WORKLOADS, figure1_matrix
from repro.interference.model import InterferenceModel
from repro.runtime.container import GlobalStorage
from repro.runtime.worker import Worker

#: Measurement window (the paper runs each pair for 10 minutes).
MEASUREMENT_WINDOW_S = 600.0


def measure_pair(w1: str, w2: str, interference: InterferenceModel) -> float:
    """Normalized throughput of ``w1`` co-located with ``w2``.

    Workload names here are Figure-1 profile names (e.g. ``"ResNet18"``),
    which key the interference lookups directly.
    """
    instance = fresh_instance(ec2_catalog()[2])  # p3.16xlarge: room for any pair
    worker = Worker(
        instance=instance, storage=GlobalStorage(), interference=interference
    )
    worker.launch_task(task_id=f"{w1}/a", workload=w1, image=w1, command="train")
    worker.launch_task(task_id=f"{w2}/b", workload=w2, image=w2, command="train")
    worker.advance(MEASUREMENT_WINDOW_S)
    co_located_iters = worker.iterations_of(f"{w1}/a")

    solo_instance = fresh_instance(ec2_catalog()[2])
    solo = Worker(
        instance=solo_instance, storage=GlobalStorage(), interference=interference
    )
    solo.launch_task(task_id=f"{w1}/solo", workload=w1, image=w1, command="train")
    solo.advance(MEASUREMENT_WINDOW_S)
    standalone_iters = solo.iterations_of(f"{w1}/solo")
    return co_located_iters / standalone_iters


def _run(ctx: "ExperimentContext") -> ExperimentTable:
    """Measure the full 8×8 matrix and verify it matches Figure 1."""
    interference = InterferenceModel()
    published = figure1_matrix()
    rows = []
    max_abs_error = 0.0
    for w1 in FIGURE1_WORKLOADS:
        measured = []
        for w2 in FIGURE1_WORKLOADS:
            value = measure_pair(w1, w2, interference)
            measured.append(round(value, 2))
            max_abs_error = max(max_abs_error, abs(value - published[w1][w2]))
        rows.append((w1, *measured))
    return ExperimentTable(
        title="Figure 1: normalized throughput of Workload 1 (rows) "
        "co-located with Workload 2 (columns)",
        headers=("Workload 1", *FIGURE1_WORKLOADS),
        rows=tuple(rows),
        notes=(
            f"max |measured - published| = {max_abs_error:.4f}",
            "10-minute co-location window, p3.16xlarge host (paper protocol)",
        ),
    )


SPEC = register(
    ExperimentSpec(
        id="fig01",
        title="Pairwise co-location throughput matrix vs published Figure 1",
        direct=_run,
    )
)


def run() -> ExperimentTable:
    return run_experiment(SPEC).value
