"""Table 10 + Figure 3 — end-to-end experiment with the 120-job trace.

The paper's large-scale physical experiment compares No-Packing, Stratus
and Eva on a 120-job synthetic trace; here the same trace runs on the
simulator (documented substitution, DESIGN.md §2).  Outputs the Table-10
summary and the Figure-3 instance-uptime CDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, comparison_from_results
from repro.analysis.reporting import ExperimentTable, render_cdf
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    comparison_grid,
    register,
    run_experiment,
)
from repro.sim.batch import TraceSpec

SCHEDULERS = {
    "No-Packing": "no-packing",
    "Stratus": "stratus",
    "Eva": "eva",
}


@dataclass(frozen=True)
class Table10Result:
    table: ExperimentTable
    uptime_cdf_text: str
    comparison: ComparisonResult


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(120, minimum=40, maximum=120))
    trace = TraceSpec.make(
        "synthetic", num_jobs=num_jobs, seed=ctx.seed, name=f"physical-{num_jobs}"
    )
    return comparison_grid(
        trace,
        SCHEDULERS,
        seed=ctx.seed,
        meta={"trace": trace, "num_jobs": num_jobs},
    )


def _aggregate(grid: ScenarioGrid, results) -> Table10Result:
    comparison = comparison_from_results(grid.meta["trace"], results[None])
    table = comparison.allocation_table(
        f"Table 10: end-to-end experiment with {grid.meta['num_jobs']} jobs"
    )
    cdf = render_cdf(
        "Figure 3: instance uptime CDF (hours at cumulative fraction)",
        {
            name: result.uptime_cdf()
            for name, result in comparison.results.items()
        },
    )
    return Table10Result(table=table, uptime_cdf_text=cdf, comparison=comparison)


def _present(result: Table10Result) -> Presentation:
    return Presentation.of_tables(result.table, extra=result.uptime_cdf_text)


SPEC = register(
    ExperimentSpec(
        id="table10",
        title="End-to-end, 120-job physical trace + Figure 3 uptime CDF",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Table10Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
