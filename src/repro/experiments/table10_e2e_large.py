"""Table 10 + Figure 3 — end-to-end experiment with the 120-job trace.

The paper's large-scale physical experiment compares No-Packing, Stratus
and Eva on a 120-job synthetic trace; here the same trace runs on the
simulator (documented substitution, DESIGN.md §2).  Outputs the Table-10
summary and the Figure-3 instance-uptime CDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonResult, compare_schedulers
from repro.analysis.reporting import ExperimentTable, render_cdf
from repro.experiments.common import scaled
from repro.sim.batch import TraceSpec


@dataclass(frozen=True)
class Table10Result:
    table: ExperimentTable
    uptime_cdf_text: str
    comparison: ComparisonResult


def run(num_jobs: int | None = None, seed: int = 0) -> Table10Result:
    num_jobs = num_jobs if num_jobs is not None else scaled(120, minimum=40, maximum=120)
    trace = TraceSpec.make(
        "synthetic", num_jobs=num_jobs, seed=seed, name=f"physical-{num_jobs}"
    )
    schedulers = {
        "No-Packing": "no-packing",
        "Stratus": "stratus",
        "Eva": "eva",
    }
    comparison = compare_schedulers(trace, schedulers)
    table = comparison.allocation_table(
        f"Table 10: end-to-end experiment with {num_jobs} jobs"
    )
    cdf = render_cdf(
        "Figure 3: instance uptime CDF (hours at cumulative fraction)",
        {
            name: result.uptime_cdf()
            for name, result in comparison.results.items()
        },
    )
    return Table10Result(table=table, uptime_cdf_text=cdf, comparison=comparison)
