"""Experiment drivers — one module per paper table/figure.

Every experiment is declared as an
:class:`~repro.experiments.registry.ExperimentSpec` (scenario grid
builder + aggregation + presentation) registered under its CLI id;
importing this package populates the registry.  Drive them with
``python -m repro.experiments {list,run,report}`` or
:func:`~repro.experiments.registry.run_experiment`; each module also
keeps a thin ``run(...)`` shim returning its result object.
``EVA_BENCH_SCALE`` scales sizes (see :mod:`repro.experiments.common`).
"""

from repro.experiments.registry import (
    ExperimentContext,
    ExperimentRun,
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.experiments import (
    deadline_slo,
    fig01_interference,
    fig04_interference_sweep,
    fig05_migration_sweep,
    fig06_workload_mix,
    fig07_multitask_sweep,
    fig08_arrival_rate,
    reliability,
    spot_eviction,
    spot_market,
    table01_delays,
    table04_microbench,
    table05_runtime,
    table06_multitask,
    table07_workloads,
    table10_e2e_large,
    table11_e2e_small,
    table12_fidelity,
    table13_alibaba,
    table14_gavel,
)

__all__ = [
    "ExperimentContext",
    "ExperimentRun",
    "ExperimentSpec",
    "all_specs",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "deadline_slo",
    "fig01_interference",
    "fig04_interference_sweep",
    "fig05_migration_sweep",
    "fig06_workload_mix",
    "fig07_multitask_sweep",
    "fig08_arrival_rate",
    "reliability",
    "spot_eviction",
    "spot_market",
    "table01_delays",
    "table04_microbench",
    "table05_runtime",
    "table06_multitask",
    "table07_workloads",
    "table10_e2e_large",
    "table11_e2e_small",
    "table12_fidelity",
    "table13_alibaba",
    "table14_gavel",
]
