"""Experiment drivers — one module per paper table/figure.

Every driver exposes ``run(...)`` returning a result object whose
``table`` (an :class:`~repro.analysis.reporting.ExperimentTable`) renders
the same rows/series the paper reports.  ``EVA_BENCH_SCALE`` scales sizes
(see :mod:`repro.experiments.common`).
"""

from repro.experiments import (
    fig01_interference,
    fig04_interference_sweep,
    fig05_migration_sweep,
    fig06_workload_mix,
    fig07_multitask_sweep,
    fig08_arrival_rate,
    table01_delays,
    table04_microbench,
    table05_runtime,
    table06_multitask,
    table07_workloads,
    table10_e2e_large,
    table11_e2e_small,
    table12_fidelity,
    table13_alibaba,
    table14_gavel,
)

__all__ = [
    "fig01_interference",
    "fig04_interference_sweep",
    "fig05_migration_sweep",
    "fig06_workload_mix",
    "fig07_multitask_sweep",
    "fig08_arrival_rate",
    "table01_delays",
    "table04_microbench",
    "table05_runtime",
    "table06_multitask",
    "table07_workloads",
    "table10_e2e_large",
    "table11_e2e_small",
    "table12_fidelity",
    "table13_alibaba",
    "table14_gavel",
]
