"""Figure 5 — impact of migration overhead.

Sweeps the job-migration delay multiplier (1×–8×) and reports:

* **(a)** the proportion of rounds where Eva's ensemble adopted Full
  Reconfiguration, and Eva's migration count per job — both should fall
  as migration gets more expensive;
* **(b)** normalized total cost for Eva, Eva without Partial
  Reconfiguration (Full-only), and Stratus — Full-only should degrade
  with the multiplier while Eva and Stratus stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.cloud.delays import DelayModel
from repro.experiments.common import scaled
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentSpec,
    Presentation,
    ScenarioGrid,
    grid_cells,
    register,
    run_experiment,
)
from repro.sim.batch import Scenario, TraceSpec

DELAY_MULTIPLIERS = (1.0, 2.0, 4.0, 8.0)

#: Display name → scheduler registry name for every sweep point; the
#: No-Packing entry is the per-multiplier normalization baseline.
SCHEDULERS = {
    "No-Packing": "no-packing",
    "Eva": "eva",
    "Eva Full-only": "eva-full-only",
    "Stratus": "stratus",
}


@dataclass(frozen=True)
class Fig5Result:
    adoption_table: ExperimentTable  # Figure 5a
    cost_table: ExperimentTable  # Figure 5b
    full_adoption: dict[float, float]
    norm_cost: dict[tuple[str, float], float]


def _build(ctx: ExperimentContext) -> ScenarioGrid:
    num_jobs = ctx.param("num_jobs", scaled(200, minimum=60, maximum=3000))
    trace = TraceSpec.make("alibaba", num_jobs=num_jobs, seed=ctx.seed)
    cells = grid_cells(
        DELAY_MULTIPLIERS,
        SCHEDULERS,
        lambda mult, registry_name: Scenario(
            scheduler=registry_name,
            trace=trace,
            delay_model=DelayModel(migration_multiplier=mult),
            seed=ctx.seed,
        ),
    )
    return ScenarioGrid(cells=cells, meta={"num_jobs": num_jobs})


def _aggregate(grid: ScenarioGrid, results) -> Fig5Result:
    adoption_rows = []
    cost_rows = []
    full_adoption: dict[float, float] = {}
    norm_cost: dict[tuple[str, float], float] = {}
    for mult in DELAY_MULTIPLIERS:
        mult_results = dict(results[mult])
        baseline = mult_results.pop("No-Packing")
        eva_result = mult_results["Eva"]
        adoption = eva_result.full_adoption_fraction or 0.0
        full_adoption[mult] = adoption
        adoption_rows.append(
            (
                f"{mult:.0f}x",
                f"{adoption * 100:.1f}%",
                round(eva_result.migrations / max(1, eva_result.num_jobs), 2),
            )
        )
        for name, result in mult_results.items():
            norm = result.total_cost / baseline.total_cost
            norm_cost[(name, mult)] = norm
            cost_rows.append((f"{mult:.0f}x", name, round(norm, 3)))

    adoption_table = ExperimentTable(
        title=f"Figure 5a: Full Reconfiguration adoption vs migration delay "
        f"({grid.meta['num_jobs']} jobs)",
        headers=("Delay Mult.", "Full Reconfig Adopted", "Migrations per Job"),
        rows=tuple(adoption_rows),
    )
    cost_table = ExperimentTable(
        title="Figure 5b: normalized total cost vs migration delay",
        headers=("Delay Mult.", "Scheduler", "Norm. Total Cost"),
        rows=tuple(cost_rows),
        notes=("normalized to No-Packing at the same delay multiplier",),
    )
    return Fig5Result(
        adoption_table=adoption_table,
        cost_table=cost_table,
        full_adoption=full_adoption,
        norm_cost=norm_cost,
    )


def _present(result: Fig5Result) -> Presentation:
    return Presentation.of_tables(result.adoption_table, result.cost_table)


SPEC = register(
    ExperimentSpec(
        id="fig05",
        title="Sweep: job-migration delay multiplier",
        build=_build,
        aggregate=_aggregate,
        present=_present,
    )
)


def run(num_jobs: int | None = None, seed: int = 0) -> Fig5Result:
    return run_experiment(
        SPEC, ExperimentContext(seed=seed, params={"num_jobs": num_jobs})
    ).value
