"""repro — a reproduction of *Eva: Cost-Efficient Cloud-Based Cluster
Scheduling* (Chang & Venkataraman, EuroSys 2025).

Quick tour of the public API:

>>> from repro import (
...     ec2_catalog, EvaScheduler, NoPackingScheduler,
...     synthetic_trace, run_simulation,
... )
>>> catalog = ec2_catalog()
>>> trace = synthetic_trace(num_jobs=8, seed=0)
>>> result = run_simulation(trace, EvaScheduler(catalog))
>>> result.total_cost > 0
True

Sub-packages:

* :mod:`repro.core` — Eva's scheduling algorithms (§4).
* :mod:`repro.cluster` — resource/task/instance substrate.
* :mod:`repro.cloud` — simulated EC2 (catalog, delays, billing).
* :mod:`repro.interference` — Figure-1 co-location model.
* :mod:`repro.workloads` — Table-7 workloads and trace generators.
* :mod:`repro.baselines` — No-Packing, Stratus, Synergy, Owl.
* :mod:`repro.sim` — discrete-event simulator and metrics.
* :mod:`repro.runtime` — master–worker deployment runtime.
* :mod:`repro.experiments` — drivers for every paper table/figure.
"""

from repro.baselines import (
    NoPackingScheduler,
    OwlScheduler,
    StratusScheduler,
    SynergyScheduler,
)
from repro.cloud import DelayModel, SimulatedCloud, ec2_catalog, paper_example_catalog
from repro.cluster import (
    Instance,
    InstanceType,
    Job,
    ResourceVector,
    Task,
    make_job,
)
from repro.core import (
    EvaConfig,
    EvaScheduler,
    ReservationPriceCalculator,
    Scheduler,
    full_reconfiguration,
    ilp_schedule,
    make_eva_variant,
    partial_reconfiguration,
)
from repro.interference import InterferenceModel
from repro.sim import ClusterSimulator, SimulationResult, run_simulation
from repro.workloads import (
    Trace,
    synthesize_alibaba_trace,
    synthetic_trace,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "NoPackingScheduler",
    "OwlScheduler",
    "StratusScheduler",
    "SynergyScheduler",
    "DelayModel",
    "SimulatedCloud",
    "ec2_catalog",
    "paper_example_catalog",
    "Instance",
    "InstanceType",
    "Job",
    "ResourceVector",
    "Task",
    "make_job",
    "EvaConfig",
    "EvaScheduler",
    "ReservationPriceCalculator",
    "Scheduler",
    "full_reconfiguration",
    "ilp_schedule",
    "make_eva_variant",
    "partial_reconfiguration",
    "InterferenceModel",
    "ClusterSimulator",
    "SimulationResult",
    "run_simulation",
    "Trace",
    "synthesize_alibaba_trace",
    "synthetic_trace",
    "workload",
    "__version__",
]
