"""In-process RPC bus standing in for gRPC (§5).

The real Eva deployment runs a master process that talks to one worker
per instance over gRPC.  The control-plane logic being transport-agnostic,
this module provides the same request/response surface as an in-process
message bus: services register named methods, clients issue unary calls,
and all payloads must be plain dictionaries (enforced, to keep the code
honest about what could actually cross a process boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

Payload = Mapping[str, Any]
Handler = Callable[..., dict]


class RpcError(RuntimeError):
    """Raised for unknown services/methods or handler failures."""


def _check_serializable(value: Any, context: str) -> None:
    """Reject payloads that could not cross a real RPC boundary."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_serializable(item, context)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise RpcError(f"{context}: dict keys must be str, got {key!r}")
            _check_serializable(item, context)
        return
    raise RpcError(
        f"{context}: value of type {type(value).__name__} is not RPC-serializable"
    )


@dataclass
class RpcChannel:
    """A bound (service, bus) pair mimicking a gRPC channel stub."""

    service: str
    bus: "RpcBus"

    def call(self, method: str, **kwargs: Any) -> dict:
        return self.bus.call(self.service, method, **kwargs)


@dataclass
class RpcBus:
    """Registry of services and their callable methods."""

    _services: dict[str, dict[str, Handler]] = field(default_factory=dict)
    calls_made: int = 0

    def register(self, service: str, methods: Mapping[str, Handler]) -> None:
        if service in self._services:
            raise RpcError(f"service {service!r} already registered")
        self._services[service] = dict(methods)

    def unregister(self, service: str) -> None:
        self._services.pop(service, None)

    def channel(self, service: str) -> RpcChannel:
        if service not in self._services:
            raise RpcError(f"no such service {service!r}")
        return RpcChannel(service=service, bus=self)

    def call(self, service: str, method: str, **kwargs: Any) -> dict:
        """Unary call: validates request and response payloads."""
        handlers = self._services.get(service)
        if handlers is None:
            raise RpcError(f"no such service {service!r}")
        handler = handlers.get(method)
        if handler is None:
            raise RpcError(f"service {service!r} has no method {method!r}")
        _check_serializable(dict(kwargs), f"{service}.{method} request")
        response = handler(**kwargs)
        if not isinstance(response, dict):
            raise RpcError(
                f"{service}.{method} must return a dict, got {type(response).__name__}"
            )
        _check_serializable(response, f"{service}.{method} response")
        self.calls_made += 1
        return response

    def services(self) -> list[str]:
        return sorted(self._services)
