"""Profiler component (§3).

Jobs may optionally declare their standalone throughput; when they do not,
the Profiler estimates it by running the task alone on its
reservation-price instance type for a short window and reading the
EvaIterator rate.  Estimates are cached per workload — profiling is a
one-time cost per task type, not per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.task import Task
from repro.core.reservation_price import ReservationPriceCalculator
from repro.runtime.iterator import EvaIterator

#: Default profiling window, seconds.
DEFAULT_PROFILE_WINDOW_S = 60.0


@dataclass
class Profiler:
    """Standalone-throughput estimation with per-workload caching."""

    catalog: Sequence[InstanceType]
    window_s: float = DEFAULT_PROFILE_WINDOW_S
    _cache: dict[str, float] = field(default_factory=dict)
    profiles_run: int = 0

    def __post_init__(self) -> None:
        self._rp = ReservationPriceCalculator(self.catalog)

    def standalone_throughput(
        self, task: Task, true_iters_per_s: float = 1.0
    ) -> float:
        """Profiled standalone iterations/sec for the task's workload.

        ``true_iters_per_s`` is the (simulated) ground-truth rate the
        profiling run would observe; the first call per workload "runs"
        the profile, subsequent calls hit the cache.
        """
        cached = self._cache.get(task.workload)
        if cached is not None:
            return cached
        rate = self._run_profile(true_iters_per_s)
        self._cache[task.workload] = rate
        self.profiles_run += 1
        return rate

    def profiling_instance_type(self, task: Task) -> InstanceType:
        """Where a profile run executes: the task's RP type (standalone)."""
        return self._rp.rp_type(task)

    def _run_profile(self, true_iters_per_s: float) -> float:
        """Emulate a profiling window through a real EvaIterator."""
        clock = _SteppingClock()
        iterator: EvaIterator = EvaIterator(inner=(), clock=clock.now)
        step = 1.0 / max(1e-9, true_iters_per_s)
        while clock.t < self.window_s:
            clock.advance(step)
            iterator.record_iteration()
        return iterator.throughput(window_s=self.window_s)

    def invalidate(self, workload: str) -> None:
        self._cache.pop(workload, None)


class _SteppingClock:
    """Deterministic logical clock for profile runs."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt
