"""Executor component (§3).

Executes task-level actions of the typed protocol
(:mod:`repro.core.protocol`) through worker RPCs: start tasks that got
their first placement, migrate tasks whose instance changed (checkpoint
on the source worker, restore on the destination), and unassign tasks
back to the queue (checkpoint, then tear down the container).  The
Executor is deliberately stateless between calls — the authoritative
assignment lives in the master's view of the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.task import Task
from repro.runtime.provisioner import Provisioner
from repro.runtime.rpc import RpcBus


@dataclass
class ExecutorStats:
    placements: int = 0
    migrations: int = 0
    unassignments: int = 0


@dataclass
class Executor:
    """Applies task placement/migration operations through worker RPCs."""

    bus: RpcBus
    provisioner: Provisioner
    stats: ExecutorStats = field(default_factory=ExecutorStats)

    def place_task(self, task: Task, instance_id: str) -> None:
        """First-time placement of a queued task."""
        self._launch_on(task, instance_id)
        self.stats.placements += 1

    def migrate_task(self, task: Task, src_instance_id: str, dst_instance_id: str) -> None:
        """Checkpoint on the source, restore on the destination."""
        src = self.provisioner.worker_of(src_instance_id)
        self.bus.call(src.service_name, "checkpoint_task", task_id=task.task_id)
        self._launch_on(task, dst_instance_id)
        self.stats.migrations += 1

    def unassign_task(self, task: Task, instance_id: str) -> None:
        """Checkpoint a task and return it to the queue (no new placement)."""
        worker = self.provisioner.worker_of(instance_id)
        self.bus.call(worker.service_name, "checkpoint_task", task_id=task.task_id)
        self.bus.call(worker.service_name, "remove_task", task_id=task.task_id)
        self.stats.unassignments += 1

    def remove_task(self, task_id: str, instance_id: str) -> None:
        """Tear down a completed task's container."""
        worker = self.provisioner.worker_of(instance_id)
        self.bus.call(worker.service_name, "remove_task", task_id=task_id)

    def _launch_on(self, task: Task, instance_id: str) -> None:
        worker = self.provisioner.worker_of(instance_id)
        self.bus.call(
            worker.service_name,
            "launch_task",
            task_id=task.task_id,
            workload=task.workload,
            image=f"{task.workload}:latest",
            command="python train.py",
        )
