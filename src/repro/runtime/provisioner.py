"""Provisioner component (§3).

Executes instance-level actions of the typed protocol
(:mod:`repro.core.protocol`): launch instances the decision adds,
terminate instances it releases.  Each launched instance gets a worker
registered on the RPC bus (in the real system, instance setup installs
and starts the worker binary — the Table 1 "instance setup" delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.provider import LaunchReceipt, SimulatedCloud
from repro.cluster.instance import Instance
from repro.interference.model import InterferenceModel
from repro.runtime.container import GlobalStorage
from repro.runtime.rpc import RpcBus
from repro.runtime.worker import Worker


@dataclass
class Provisioner:
    """Owns the instance fleet and per-instance workers."""

    cloud: SimulatedCloud
    bus: RpcBus
    storage: GlobalStorage
    interference: InterferenceModel = field(default_factory=InterferenceModel)
    workers: dict[str, Worker] = field(default_factory=dict)
    ready_times: dict[str, float] = field(default_factory=dict)

    def launch(self, instance: Instance, now_s: float) -> LaunchReceipt:
        """Launch one instance and bring up its worker."""
        receipt = self.cloud.launch(
            instance.instance_type, now_s, instance=instance
        )
        worker = Worker(
            instance=receipt.instance,
            storage=self.storage,
            interference=self.interference,
        )
        worker.register(self.bus)
        self.workers[receipt.instance.instance_id] = worker
        self.ready_times[receipt.instance.instance_id] = receipt.ready_time_s
        return receipt

    def terminate(self, instance_id: str, now_s: float) -> None:
        worker = self.workers.pop(instance_id, None)
        if worker is None:
            raise KeyError(f"no worker for instance {instance_id}")
        if worker.hosted_task_ids():
            raise RuntimeError(
                f"terminating {instance_id} with live tasks {worker.hosted_task_ids()}"
            )
        worker.unregister(self.bus)
        self.ready_times.pop(instance_id, None)
        self.cloud.terminate(instance_id, now_s)

    def worker_of(self, instance_id: str) -> Worker:
        return self.workers[instance_id]

    def active_instance_ids(self) -> list[str]:
        return sorted(self.workers)

    def total_cost(self, now_s: float) -> float:
        return self.cloud.total_cost(now_s)
