"""Master–worker deployment runtime (§3, §5): RPC, containers, workers,
Provisioner, Executor, Profiler, EvaIterator, and the Eva master."""

from repro.runtime.container import (
    ContainerSpec,
    ContainerState,
    GlobalStorage,
    SimContainer,
)
from repro.runtime.executor import Executor, ExecutorStats
from repro.runtime.iterator import DEFAULT_WINDOW_S, EvaIterator
from repro.runtime.master import CompletedJob, EvaMaster
from repro.runtime.profiler import Profiler
from repro.runtime.provisioner import Provisioner
from repro.runtime.rpc import RpcBus, RpcChannel, RpcError
from repro.runtime.worker import Worker

__all__ = [
    "ContainerSpec",
    "ContainerState",
    "GlobalStorage",
    "SimContainer",
    "Executor",
    "ExecutorStats",
    "DEFAULT_WINDOW_S",
    "EvaIterator",
    "CompletedJob",
    "EvaMaster",
    "Profiler",
    "Provisioner",
    "RpcBus",
    "RpcChannel",
    "RpcError",
    "Worker",
]
