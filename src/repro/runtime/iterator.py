"""EvaIterator — the lightweight throughput-reporting API (§5).

Users wrap their training/data iterator in :class:`EvaIterator`; the
worker then queries the throughput achieved over a sliding window (e.g.
the last 10 minutes) at the start of every scheduling round, requiring
minimal code changes on the user side:

>>> it = EvaIterator(range(1000))
>>> for batch in it:                      # doctest: +SKIP
...     train_step(batch)

Timestamps come from an injectable clock so the simulator (and the tests)
can drive logical time.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TypeVar

T = TypeVar("T")

#: Default sliding window for throughput queries, seconds.
DEFAULT_WINDOW_S = 600.0


@dataclass
class EvaIterator(Iterable[T]):
    """Iterator wrapper that records per-iteration timestamps.

    Attributes:
        inner: The wrapped iterable.
        clock: Returns current time in seconds (defaults to wall clock;
            inject a logical clock in simulations/tests).
        max_samples: Bound on retained timestamps (ring buffer).
    """

    inner: Iterable[T]
    clock: Callable[[], float] = _time.monotonic
    max_samples: int = 100_000
    _timestamps: deque = field(default_factory=deque, repr=False)
    _total_iterations: int = 0

    def __iter__(self) -> Iterator[T]:
        for item in self.inner:
            self.record_iteration()
            yield item

    def record_iteration(self, count: int = 1) -> None:
        """Record ``count`` completed iterations at the current time."""
        now = self.clock()
        for _ in range(count):
            self._timestamps.append(now)
            if len(self._timestamps) > self.max_samples:
                self._timestamps.popleft()
        self._total_iterations += count

    @property
    def total_iterations(self) -> int:
        return self._total_iterations

    def throughput(self, window_s: float = DEFAULT_WINDOW_S) -> float:
        """Iterations per second over the trailing ``window_s`` seconds."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        now = self.clock()
        cutoff = now - window_s
        while self._timestamps and self._timestamps[0] < cutoff:
            self._timestamps.popleft()
        return len(self._timestamps) / window_s

    def normalized_throughput(
        self, standalone_iters_per_s: float, window_s: float = DEFAULT_WINDOW_S
    ) -> float:
        """Throughput normalized by the profiled standalone rate."""
        if standalone_iters_per_s <= 0:
            raise ValueError("standalone rate must be positive")
        return min(1.0, self.throughput(window_s) / standalone_iters_per_s)
