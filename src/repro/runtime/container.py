"""Container abstraction (§5).

Tasks execute as containers for portability and environment isolation.
:class:`ContainerSpec` carries what a user submits — a Dockerfile
reference, a command, and the per-family resource demand vectors —
and :class:`SimContainer` emulates the container lifecycle
(create → run → checkpoint → restore → stop) with iteration progress
driven by the hosting worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.cluster.resources import ResourceVector


class ContainerState(Enum):
    CREATED = "created"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    STOPPED = "stopped"


@dataclass(frozen=True)
class ContainerSpec:
    """User-provided execution artifact description.

    Attributes:
        image: Dockerfile/image reference.
        command: Entry command inside the container.
        demands: Per-instance-family resource demand vectors (§5: users
            may specify multiple vectors to exploit heterogeneity).
        mounts: Paths mounted from the shared global storage (datasets,
            checkpoints).
    """

    image: str
    command: str
    demands: Mapping[str, ResourceVector]
    mounts: tuple[str, ...] = ("/mnt/global",)


class ContainerError(RuntimeError):
    """Raised on invalid lifecycle transitions."""


@dataclass
class SimContainer:
    """A container instance with simulated iteration progress."""

    container_id: str
    spec: ContainerSpec
    state: ContainerState = ContainerState.CREATED
    iterations_done: float = 0.0
    checkpoint_iterations: float = 0.0
    restore_count: int = 0

    def start(self) -> None:
        if self.state not in (ContainerState.CREATED, ContainerState.CHECKPOINTED):
            raise ContainerError(f"cannot start container in state {self.state}")
        if self.state is ContainerState.CHECKPOINTED:
            # Restoring from the shared storage: resume from checkpoint.
            self.iterations_done = self.checkpoint_iterations
            self.restore_count += 1
        self.state = ContainerState.RUNNING

    def progress(self, iterations: float) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"cannot progress container in state {self.state}")
        if iterations < 0:
            raise ContainerError("progress must be >= 0")
        self.iterations_done += iterations

    def checkpoint(self) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"cannot checkpoint container in state {self.state}")
        self.checkpoint_iterations = self.iterations_done
        self.state = ContainerState.CHECKPOINTED

    def stop(self) -> None:
        if self.state is ContainerState.STOPPED:
            raise ContainerError("container already stopped")
        self.state = ContainerState.STOPPED

    def snapshot(self) -> dict:
        """RPC-friendly view of the container."""
        return {
            "container_id": self.container_id,
            "state": self.state.value,
            "iterations_done": self.iterations_done,
            "restore_count": self.restore_count,
        }


@dataclass
class GlobalStorage:
    """Shared storage (the S3 bucket of §6.1) holding checkpoints.

    A flat key → payload map; workers read/write task checkpoints so a
    migrated container can restore on any instance.
    """

    _blobs: dict[str, dict] = field(default_factory=dict)
    writes: int = 0

    def put(self, key: str, payload: dict) -> None:
        self._blobs[key] = dict(payload)
        self.writes += 1

    def get(self, key: str) -> dict | None:
        blob = self._blobs.get(key)
        return dict(blob) if blob is not None else None

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._blobs)
