"""Eva master (§3, §5).

The master is the deployment's control plane: it accepts job submissions,
runs the Scheduler every period, and drives the Provisioner and Executor
to realize the chosen configuration.  This in-process implementation uses
logical time (callers alternate :meth:`advance` and :meth:`run_round`),
which keeps it deterministic and directly testable; the discrete-event
simulator (:mod:`repro.sim`) is the tool for delay-accurate evaluation,
while this runtime demonstrates the deployment architecture end to end —
RPC surfaces, checkpoint/restore through global storage, throughput
reporting via EvaIterator-style queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cloud.provider import SimulatedCloud
from repro.cluster.instance import InstanceType
from repro.cluster.state import (
    ClusterSnapshot,
    InstanceState,
    diff_configuration,
)
from repro.cluster.task import Job
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.throughput_table import TaskPlacementObservation
from repro.interference.model import InterferenceModel
from repro.runtime.container import GlobalStorage
from repro.runtime.executor import Executor
from repro.runtime.provisioner import Provisioner
from repro.runtime.rpc import RpcBus


@dataclass
class CompletedJob:
    job_id: str
    submitted_s: float
    completed_s: float

    @property
    def jct_hours(self) -> float:
        return (self.completed_s - self.submitted_s) / 3600.0


@dataclass
class EvaMaster:
    """Centralized master orchestrating a cloud-based cluster."""

    catalog: Sequence[InstanceType]
    scheduler: Scheduler
    interference: InterferenceModel = field(default_factory=InterferenceModel)
    period_s: float = 300.0
    now_s: float = 0.0

    def __post_init__(self) -> None:
        self.bus = RpcBus()
        self.storage = GlobalStorage()
        self.cloud = SimulatedCloud()
        self.provisioner = Provisioner(
            cloud=self.cloud,
            bus=self.bus,
            storage=self.storage,
            interference=self.interference,
        )
        self.executor = Executor(bus=self.bus, provisioner=self.provisioner)
        self._jobs: dict[str, Job] = {}
        self._submit_times: dict[str, float] = {}
        self._assignment: dict[str, str] = {}  # task_id -> instance_id
        self.completed: list[CompletedJob] = []
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit_job(self, job: Job) -> None:
        """Accept a job (the user supplied a Dockerfile + demand vectors)."""
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id} already submitted")
        self._jobs[job.job_id] = job
        self._submit_times[job.job_id] = self.now_s

    def live_jobs(self) -> list[Job]:
        return [self._jobs[jid] for jid in sorted(self._jobs)]

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def advance(self, dt_s: float) -> None:
        """Advance logical time: workers make progress, jobs may finish."""
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        for worker in self.provisioner.workers.values():
            worker.advance(dt_s)
        self.now_s += dt_s
        self._collect_completions()

    def run_round(self) -> None:
        """One scheduling round: report throughputs, schedule, apply."""
        snapshot = self._snapshot()
        self.scheduler.on_throughput_reports(self._reports())
        target = self.scheduler.schedule(snapshot)
        target.validate(snapshot)
        self._apply(snapshot, target)
        self.rounds_run += 1

    def run_for(self, hours: float) -> None:
        """Convenience loop: alternate rounds and progress for ``hours``."""
        remaining_s = hours * 3600.0
        while remaining_s > 0:
            self.run_round()
            step = min(self.period_s, remaining_s)
            self.advance(step)
            remaining_s -= step

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot(self) -> ClusterSnapshot:
        tasks = {
            t.task_id: t for job in self._jobs.values() for t in job.tasks
        }
        instances = []
        for iid in self.provisioner.active_instance_ids():
            worker = self.provisioner.worker_of(iid)
            assigned = frozenset(
                tid for tid, inst in self._assignment.items() if inst == iid
            )
            instances.append(
                InstanceState(instance=worker.instance, task_ids=assigned)
            )
        return ClusterSnapshot(
            time_s=self.now_s, tasks=tasks, jobs=dict(self._jobs), instances=instances
        )

    def _reports(self) -> tuple[JobThroughputReport, ...]:
        """Query every worker's throughput and fold into per-job reports."""
        tputs: dict[str, float] = {}
        for iid in self.provisioner.active_instance_ids():
            worker = self.provisioner.worker_of(iid)
            response = self.bus.call(worker.service_name, "report_throughput")
            tputs.update(response["throughputs"])
        reports = []
        for job in self.live_jobs():
            task_tputs = [tputs.get(t.task_id) for t in job.tasks]
            if any(tp is None for tp in task_tputs):
                continue  # not all tasks running yet
            placements = tuple(
                TaskPlacementObservation(
                    workload=t.workload,
                    neighbours=tuple(self._neighbours(t.task_id)),
                )
                for t in job.tasks
            )
            reports.append(
                JobThroughputReport(
                    job_id=job.job_id,
                    normalized_tput=min(task_tputs),  # type: ignore[type-var]
                    placements=placements,
                )
            )
        return tuple(reports)

    def _neighbours(self, task_id: str) -> list[str]:
        iid = self._assignment.get(task_id)
        if iid is None:
            return []
        worker = self.provisioner.worker_of(iid)
        task_index = {
            t.task_id: t for job in self._jobs.values() for t in job.tasks
        }
        return sorted(
            task_index[tid].workload
            for tid in worker.hosted_task_ids()
            if tid != task_id and tid in task_index
        )

    def _apply(self, snapshot: ClusterSnapshot, target) -> None:
        diff = diff_configuration(snapshot, target)
        for ti in diff.launches:
            self.provisioner.launch(ti, self.now_s)
        task_index = snapshot.tasks
        for task_id, src, dst in diff.migrations:
            task = task_index[task_id]
            if src is None:
                self.executor.place_task(task, dst)
            else:
                self.executor.migrate_task(task, src, dst)
            self._assignment[task_id] = dst
        for iid in diff.terminations:
            self.provisioner.terminate(iid, self.now_s)

    def _collect_completions(self) -> None:
        for job in list(self.live_jobs()):
            done = True
            for task in job.tasks:
                iid = self._assignment.get(task.task_id)
                if iid is None:
                    done = False
                    break
                worker = self.provisioner.worker_of(iid)
                needed = job.duration_hours * 3600.0  # 1 iter/s standalone
                if worker.iterations_of(task.task_id) < needed:
                    done = False
                    break
            if not done:
                continue
            for task in job.tasks:
                iid = self._assignment.pop(task.task_id)
                self.executor.remove_task(task.task_id, iid)
                worker = self.provisioner.worker_of(iid)
                if not worker.hosted_task_ids():
                    self.provisioner.terminate(iid, self.now_s)
            self.completed.append(
                CompletedJob(
                    job_id=job.job_id,
                    submitted_s=self._submit_times.pop(job.job_id),
                    completed_s=self.now_s,
                )
            )
            del self._jobs[job.job_id]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_cost(self) -> float:
        return self.provisioner.total_cost(self.now_s)

    def stats(self) -> dict:
        return {
            "now_hours": self.now_s / 3600.0,
            "total_cost": self.total_cost(),
            "live_jobs": len(self._jobs),
            "completed_jobs": len(self.completed),
            "active_instances": len(self.provisioner.active_instance_ids()),
            "placements": self.executor.stats.placements,
            "migrations": self.executor.stats.migrations,
            "rpc_calls": self.bus.calls_made,
            "rounds": self.rounds_run,
        }
