"""Eva master (§3, §5).

The master is the deployment's control plane: it accepts job submissions,
runs the Scheduler every period through the typed action/observation
protocol (:mod:`repro.core.protocol`), and executes the resulting action
stream through the Provisioner and Executor via the same
:class:`~repro.core.protocol.ClusterEnvironment` interpreter the
simulator uses.  This in-process implementation uses
logical time (callers alternate :meth:`advance` and :meth:`run_round`),
which keeps it deterministic and directly testable; the discrete-event
simulator (:mod:`repro.sim`) is the tool for delay-accurate evaluation,
while this runtime demonstrates the deployment architecture end to end —
RPC surfaces, checkpoint/restore through global storage, throughput
reporting via EvaIterator-style queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cloud.provider import SimulatedCloud
from repro.cluster.instance import InstanceType
from repro.cluster.state import ClusterSnapshot, InstanceState
from repro.cluster.task import Job, Task
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.protocol import (
    AssignTask,
    ClusterEnvironment,
    DeadlineApproaching,
    JobArrived,
    JobFinished,
    LaunchInstance,
    MigrateTask,
    Observation,
    TerminateInstance,
    ThroughputReport,
    UnassignTask,
)
from repro.core.throughput_table import TaskPlacementObservation
from repro.interference.model import InterferenceModel
from repro.runtime.container import GlobalStorage
from repro.runtime.executor import Executor
from repro.runtime.provisioner import Provisioner
from repro.runtime.rpc import RpcBus


class _RuntimeEnvironment(ClusterEnvironment):
    """RPC-backed backend of the action protocol.

    Implements the five primitives against the live deployment —
    Provisioner launches/terminations, Executor worker RPCs — and
    inherits the shared action interpreter from
    :class:`~repro.core.protocol.ClusterEnvironment`, so the master and
    the simulator execute the *same* canonical action streams with no
    duplicated apply logic.
    """

    def __init__(self, master: "EvaMaster"):
        self._master = master

    def launch_instance(self, action: LaunchInstance) -> None:
        master = self._master
        master.provisioner.launch(action.instance, master.now_s)

    def assign_task(self, action: AssignTask) -> None:
        master = self._master
        task = master.task_of(action.task_id)
        master.executor.place_task(task, action.instance_id)
        master._assignment[action.task_id] = action.instance_id

    def migrate_task(self, action: MigrateTask) -> None:
        master = self._master
        task = master.task_of(action.task_id)
        master.executor.migrate_task(
            task, action.src_instance_id, action.dst_instance_id
        )
        master._assignment[action.task_id] = action.dst_instance_id

    def unassign_task(self, action: UnassignTask) -> None:
        master = self._master
        task = master.task_of(action.task_id)
        master.executor.unassign_task(task, action.instance_id)
        master._assignment.pop(action.task_id, None)

    def terminate_instance(self, action: TerminateInstance) -> None:
        master = self._master
        master.provisioner.terminate(action.instance_id, master.now_s)


@dataclass
class CompletedJob:
    job_id: str
    submitted_s: float
    completed_s: float

    @property
    def jct_hours(self) -> float:
        return (self.completed_s - self.submitted_s) / 3600.0


@dataclass
class EvaMaster:
    """Centralized master orchestrating a cloud-based cluster."""

    catalog: Sequence[InstanceType]
    scheduler: Scheduler
    interference: InterferenceModel = field(default_factory=InterferenceModel)
    period_s: float = 300.0
    now_s: float = 0.0
    #: Horizon of :class:`~repro.core.protocol.DeadlineApproaching`
    #: warnings (``None`` = two periods), matching the simulator's knob:
    #: a deadline-bearing job's warning is emitted at the first round
    #: within this many seconds of its deadline, once per job.
    deadline_warning_s: float | None = None

    def __post_init__(self) -> None:
        self.bus = RpcBus()
        self.storage = GlobalStorage()
        self.cloud = SimulatedCloud()
        self.provisioner = Provisioner(
            cloud=self.cloud,
            bus=self.bus,
            storage=self.storage,
            interference=self.interference,
        )
        self.executor = Executor(bus=self.bus, provisioner=self.provisioner)
        self._jobs: dict[str, Job] = {}
        self._task_index: dict[str, Task] = {}
        self._submit_times: dict[str, float] = {}
        self._assignment: dict[str, str] = {}  # task_id -> instance_id
        self.completed: list[CompletedJob] = []
        self.rounds_run = 0
        self._env = _RuntimeEnvironment(self)
        #: Typed observations accumulated since the last scheduling round.
        self._pending_obs: list[Observation] = []
        if self.deadline_warning_s is not None and self.deadline_warning_s < 0:
            raise ValueError("deadline_warning_s must be >= 0")
        if self.deadline_warning_s is None:
            self.deadline_warning_s = 2.0 * self.period_s
        #: Jobs whose deadline warning was already emitted (once per job).
        self._deadline_warned: set[str] = set()

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit_job(self, job: Job) -> None:
        """Accept a job (the user supplied a Dockerfile + demand vectors)."""
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id} already submitted")
        self._jobs[job.job_id] = job
        for task in job.tasks:
            self._task_index[task.task_id] = task
        self._submit_times[job.job_id] = self.now_s
        self._pending_obs.append(JobArrived(job_id=job.job_id, time_s=self.now_s))

    def live_jobs(self) -> list[Job]:
        return [self._jobs[jid] for jid in sorted(self._jobs)]

    def task_of(self, task_id: str) -> Task:
        """The live task with ``task_id`` (actions resolve ids through this)."""
        return self._task_index[task_id]

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def advance(self, dt_s: float) -> None:
        """Advance logical time: workers make progress, jobs may finish."""
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        for worker in self.provisioner.workers.values():
            worker.advance(dt_s)
        self.now_s += dt_s
        self._collect_completions()

    def run_round(self) -> None:
        """One scheduling round: observations in, decision out, execute.

        The scheduler is driven exclusively through the typed protocol
        (:meth:`~repro.core.interfaces.Scheduler.decide`); the returned
        action stream is validated and executed by the same
        :class:`~repro.core.protocol.ClusterEnvironment` interpreter the
        simulator uses.
        """
        snapshot = self._snapshot()
        decision = self.scheduler.decide(snapshot, self._observations())
        decision.validate(snapshot, allowed_actions=self.scheduler.action_types)
        self._env.execute(decision)
        self.rounds_run += 1

    def run_for(self, hours: float) -> None:
        """Convenience loop: alternate rounds and progress for ``hours``."""
        remaining_s = hours * 3600.0
        while remaining_s > 0:
            self.run_round()
            step = min(self.period_s, remaining_s)
            self.advance(step)
            remaining_s -= step

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _observations(self) -> tuple[Observation, ...]:
        """Drain pending job events, then deadline warnings, then reports.

        Same deterministic order and same once-per-job deadline-warning
        semantics as the simulator's observation stream (the deadline
        clock starts at submission).
        """
        observations = self._pending_obs
        self._pending_obs = []
        for job in self.live_jobs():
            if job.deadline_hours is None or job.job_id in self._deadline_warned:
                continue
            deadline_s = (
                self._submit_times[job.job_id] + job.deadline_hours * 3600.0
            )
            if self.now_s + self.deadline_warning_s >= deadline_s:
                self._deadline_warned.add(job.job_id)
                observations.append(
                    DeadlineApproaching(job_id=job.job_id, deadline_s=deadline_s)
                )
        observations.extend(ThroughputReport(r) for r in self._reports())
        return tuple(observations)

    def _snapshot(self) -> ClusterSnapshot:
        tasks = dict(self._task_index)
        instances = []
        for iid in self.provisioner.active_instance_ids():
            worker = self.provisioner.worker_of(iid)
            assigned = frozenset(
                tid for tid, inst in self._assignment.items() if inst == iid
            )
            instances.append(
                InstanceState(instance=worker.instance, task_ids=assigned)
            )
        return ClusterSnapshot(
            time_s=self.now_s, tasks=tasks, jobs=dict(self._jobs), instances=instances
        )

    def _reports(self) -> tuple[JobThroughputReport, ...]:
        """Query every worker's throughput and fold into per-job reports."""
        tputs: dict[str, float] = {}
        for iid in self.provisioner.active_instance_ids():
            worker = self.provisioner.worker_of(iid)
            response = self.bus.call(worker.service_name, "report_throughput")
            tputs.update(response["throughputs"])
        reports = []
        for job in self.live_jobs():
            task_tputs = [tputs.get(t.task_id) for t in job.tasks]
            if any(tp is None for tp in task_tputs):
                continue  # not all tasks running yet
            placements = tuple(
                TaskPlacementObservation(
                    workload=t.workload,
                    neighbours=tuple(self._neighbours(t.task_id)),
                )
                for t in job.tasks
            )
            reports.append(
                JobThroughputReport(
                    job_id=job.job_id,
                    normalized_tput=min(task_tputs),  # type: ignore[type-var]
                    placements=placements,
                )
            )
        return tuple(reports)

    def _neighbours(self, task_id: str) -> list[str]:
        iid = self._assignment.get(task_id)
        if iid is None:
            return []
        worker = self.provisioner.worker_of(iid)
        return sorted(
            self._task_index[tid].workload
            for tid in worker.hosted_task_ids()
            if tid != task_id and tid in self._task_index
        )

    def _collect_completions(self) -> None:
        for job in list(self.live_jobs()):
            done = True
            for task in job.tasks:
                iid = self._assignment.get(task.task_id)
                if iid is None:
                    done = False
                    break
                worker = self.provisioner.worker_of(iid)
                needed = job.duration_hours * 3600.0  # 1 iter/s standalone
                if worker.iterations_of(task.task_id) < needed:
                    done = False
                    break
            if not done:
                continue
            for task in job.tasks:
                iid = self._assignment.pop(task.task_id)
                self.executor.remove_task(task.task_id, iid)
                del self._task_index[task.task_id]
                worker = self.provisioner.worker_of(iid)
                if not worker.hosted_task_ids():
                    self.provisioner.terminate(iid, self.now_s)
            self.completed.append(
                CompletedJob(
                    job_id=job.job_id,
                    submitted_s=self._submit_times.pop(job.job_id),
                    completed_s=self.now_s,
                )
            )
            del self._jobs[job.job_id]
            self._deadline_warned.discard(job.job_id)
            self._pending_obs.append(
                JobFinished(job_id=job.job_id, time_s=self.now_s)
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_cost(self) -> float:
        return self.provisioner.total_cost(self.now_s)

    def stats(self) -> dict:
        return {
            "now_hours": self.now_s / 3600.0,
            "total_cost": self.total_cost(),
            "live_jobs": len(self._jobs),
            "completed_jobs": len(self.completed),
            "active_instances": len(self.provisioner.active_instance_ids()),
            "placements": self.executor.stats.placements,
            "migrations": self.executor.stats.migrations,
            "rpc_calls": self.bus.calls_made,
            "rounds": self.rounds_run,
        }
