"""Worker agent (§5).

One worker runs on every provisioned instance.  It hosts task containers,
advances their progress (degraded by co-location interference), serves
throughput queries from the master, and performs checkpoint/restore
against the shared global storage during migrations.

Workers expose their API over the in-process RPC bus
(:mod:`repro.runtime.rpc`) exactly as the real deployment does over gRPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.instance import Instance
from repro.interference.model import InterferenceModel
from repro.runtime.container import (
    ContainerSpec,
    ContainerState,
    GlobalStorage,
    SimContainer,
)
from repro.runtime.rpc import RpcBus


@dataclass
class _HostedTask:
    task_id: str
    workload: str
    container: SimContainer
    standalone_iters_per_s: float


@dataclass
class Worker:
    """Per-instance agent hosting task containers.

    Attributes:
        instance: The instance this worker runs on.
        storage: Shared global storage for checkpoints.
        interference: Ground-truth co-location model degrading progress
            (stands in for real hardware contention).
    """

    instance: Instance
    storage: GlobalStorage
    interference: InterferenceModel = field(default_factory=InterferenceModel)
    _tasks: dict[str, _HostedTask] = field(default_factory=dict)

    @property
    def service_name(self) -> str:
        return f"worker/{self.instance.instance_id}"

    def register(self, bus: RpcBus) -> None:
        bus.register(
            self.service_name,
            {
                "launch_task": self.launch_task,
                "checkpoint_task": self.checkpoint_task,
                "remove_task": self.remove_task,
                "report_throughput": self.report_throughput,
                "list_tasks": self.list_tasks,
            },
        )

    def unregister(self, bus: RpcBus) -> None:
        bus.unregister(self.service_name)

    # ------------------------------------------------------------------
    # RPC methods (dict in / dict out)
    # ------------------------------------------------------------------
    def launch_task(
        self,
        task_id: str,
        workload: str,
        image: str,
        command: str,
        standalone_iters_per_s: float = 1.0,
    ) -> dict:
        """Start a task container, restoring from checkpoint if one exists."""
        if task_id in self._tasks:
            raise ValueError(f"task {task_id} already on {self.instance.instance_id}")
        container = SimContainer(
            container_id=f"{self.instance.instance_id}/{task_id}",
            spec=ContainerSpec(image=image, command=command, demands={}),
        )
        checkpoint = self.storage.get(f"ckpt/{task_id}")
        if checkpoint is not None:
            container.checkpoint_iterations = float(checkpoint["iterations"])
            container.state = ContainerState.CHECKPOINTED
        container.start()
        self._tasks[task_id] = _HostedTask(
            task_id=task_id,
            workload=workload,
            container=container,
            standalone_iters_per_s=standalone_iters_per_s,
        )
        return {"restored": checkpoint is not None}

    def checkpoint_task(self, task_id: str) -> dict:
        """Checkpoint a task to global storage and remove it locally."""
        hosted = self._tasks.pop(task_id, None)
        if hosted is None:
            raise ValueError(f"task {task_id} not on {self.instance.instance_id}")
        hosted.container.checkpoint()
        self.storage.put(
            f"ckpt/{task_id}",
            {"iterations": hosted.container.iterations_done},
        )
        return {"iterations": hosted.container.iterations_done}

    def remove_task(self, task_id: str) -> dict:
        """Stop and discard a task (job completed)."""
        hosted = self._tasks.pop(task_id, None)
        if hosted is None:
            return {"removed": False}
        hosted.container.stop()
        self.storage.delete(f"ckpt/{task_id}")
        return {"removed": True}

    def report_throughput(self) -> dict:
        """Normalized throughput per hosted task (the EvaIterator query)."""
        return {
            "throughputs": {
                tid: self._task_tput(hosted) for tid, hosted in self._tasks.items()
            }
        }

    def list_tasks(self) -> dict:
        return {"task_ids": sorted(self._tasks)}

    # ------------------------------------------------------------------
    # Simulation hooks (not RPC)
    # ------------------------------------------------------------------
    def _task_tput(self, hosted: _HostedTask) -> float:
        neighbours = [
            other.workload
            for tid, other in self._tasks.items()
            if tid != hosted.task_id
        ]
        return self.interference.task_throughput(hosted.workload, neighbours)

    def advance(self, dt_s: float) -> None:
        """Advance all hosted containers by ``dt_s`` of wall time."""
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        for hosted in self._tasks.values():
            rate = self._task_tput(hosted) * hosted.standalone_iters_per_s
            hosted.container.progress(rate * dt_s)

    def iterations_of(self, task_id: str) -> float:
        return self._tasks[task_id].container.iterations_done

    def hosted_task_ids(self) -> list[str]:
        return sorted(self._tasks)
