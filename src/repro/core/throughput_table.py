"""Co-location throughput table (§4.3) with interference attribution (§4.4).

The ThroughputMonitor maintains this table online instead of profiling all
co-location combinations up front (profiling cost grows exponentially with
the number of task types).  The table is keyed by *workload names*: all
tasks of the same workload share interference behaviour.

Lookups (``tput``):

* exact match — if the observed co-location set was recorded, return it;
* otherwise estimate as the product of pairwise throughputs
  ``Π_{τ'} tput(τ, τ')``, initializing unknown pairs with the tunable
  default ``t`` (0.95 in all the paper's experiments): smaller ``t`` makes
  packing more conservative.

Updates (``observe_single_task_job`` / ``observe_multi_task_job``): for a
single-task job any throughput drop is attributable to its own co-located
tasks.  For a multi-task job, a drop may come from local interference or
from a straggler task elsewhere; the §4.4 rules pick a single entry to
update so that the recorded value is always a *lower bound* of the true
co-location throughput, converging upward as observations accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: Default initial pairwise throughput — Eva's ``t`` parameter (§4.3).
DEFAULT_PAIRWISE_TPUT = 0.95


def _set_key(neighbours: Iterable[str]) -> tuple[str, ...]:
    """Canonical key for a co-location multiset of workload names."""
    return tuple(sorted(neighbours))


@dataclass(frozen=True, slots=True)
class TaskPlacementObservation:
    """One task's placement context at observation time.

    Attributes:
        workload: The observed task's workload name.
        neighbours: Workload names of tasks sharing its instance.
    """

    workload: str
    neighbours: tuple[str, ...]

    @property
    def key(self) -> tuple[str, tuple[str, ...]]:
        return (self.workload, _set_key(self.neighbours))

    @property
    def num_neighbours(self) -> int:
        return len(self.neighbours)


@dataclass
class CoLocationThroughputTable:
    """Online-learned co-location throughput estimates (§4.3–§4.4)."""

    default_tput: float = DEFAULT_PAIRWISE_TPUT
    _pairwise: dict[tuple[str, str], float] = field(default_factory=dict, repr=False)
    _exact: dict[tuple[str, tuple[str, ...]], float] = field(
        default_factory=dict, repr=False
    )
    _num_large_exact: int = field(default=0, repr=False)
    #: Memoized ``tput`` results keyed by the *given-order* neighbour
    #: tuple (so repeated lookups skip the sort and the pairwise product
    #: without changing per-ordering float behaviour); cleared whenever a
    #: recorded entry actually changes value.
    _tput_cache: dict[tuple[str, tuple[str, ...]], float] = field(
        default_factory=dict, repr=False
    )
    #: Bumped whenever a recorded entry actually changes value; lets
    #: downstream caches (e.g. the TNRP evaluator's set-value memo)
    #: invalidate without subscribing to individual updates.
    _version: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.default_tput <= 1.0:
            raise ValueError(f"default_tput must be in (0, 1], got {self.default_tput}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def pairwise(self, workload: str, other: str) -> float:
        """Recorded (or default) throughput of ``workload`` next to ``other``."""
        return self._pairwise.get((workload, other), self.default_tput)

    def has_pairwise(self, workload: str, other: str) -> bool:
        return (workload, other) in self._pairwise

    def tput(self, workload: str, neighbours: Sequence[str]) -> float:
        """Estimated throughput of a task given its co-located workloads.

        Exact recorded sets win; otherwise the pairwise-product estimate
        (§4.3) is used.
        """
        if not neighbours:
            return 1.0
        key = (workload, tuple(neighbours))
        cached = self._tput_cache.get(key)
        if cached is not None:
            return cached
        exact = self._exact.get((workload, _set_key(neighbours)))
        if exact is not None:
            estimate = exact
        else:
            estimate = 1.0
            for other in neighbours:
                estimate *= self.pairwise(workload, other)
        self._tput_cache[key] = estimate
        return estimate

    def is_recorded(self, observation: TaskPlacementObservation) -> bool:
        """Whether this exact placement has an entry in the table."""
        return observation.key in self._exact

    def recorded_tput(self, observation: TaskPlacementObservation) -> float | None:
        return self._exact.get(observation.key)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _record(self, observation: TaskPlacementObservation, tput: float) -> None:
        tput = min(1.0, max(0.0, tput))
        previous = self._exact.get(observation.key)
        if observation.num_neighbours > 1 and previous is None:
            self._num_large_exact += 1
        if previous != tput:
            # Pairwise entries mirror the pair exacts, so any value change
            # here can shift arbitrary product estimates: drop the memo.
            self._tput_cache.clear()
            self._version += 1
        self._exact[observation.key] = tput
        if observation.num_neighbours == 1:
            self._pairwise[(observation.workload, observation.neighbours[0])] = tput

    def observe_single_task_job(
        self, observation: TaskPlacementObservation, tput: float
    ) -> None:
        """Record a single-task job's throughput.

        Any decrease is directly attributable to the task's co-located
        neighbours (§4.4), so the entry is simply overwritten.
        """
        if observation.num_neighbours == 0:
            return  # standalone: nothing to learn about co-location
        self._record(observation, tput)

    def observe_multi_task_job(
        self, observations: Sequence[TaskPlacementObservation], tput: float
    ) -> TaskPlacementObservation | None:
        """Attribute a multi-task job's observed throughput to one entry.

        Implements the three §4.4 rules; returns the observation whose
        entry was updated (None when no task is co-located with anyone,
        i.e. there is no interference to attribute).
        """
        co_located = [obs for obs in observations if obs.num_neighbours > 0]
        if not co_located:
            return None

        recorded = [obs for obs in co_located if self.is_recorded(obs)]
        unrecorded = [obs for obs in co_located if not self.is_recorded(obs)]

        if not recorded:
            # Rule 1 — no previous observations: blame the task co-located
            # with the most tasks (most likely straggler).
            target = max(co_located, key=lambda o: (o.num_neighbours, o.key))
            self._record(target, tput)
            return target

        lowest = min(recorded, key=lambda o: (self.recorded_tput(o), o.key))
        lowest_tput = self.recorded_tput(lowest)
        assert lowest_tput is not None

        if lowest_tput < tput:
            # Rule 2 — some recorded entry is lower than the observation:
            # that entry was too pessimistic; raise it to the observation.
            self._record(lowest, tput)
            return lowest

        if unrecorded:
            # Rule 3 — all recorded entries exceed the observation: the
            # straggler must be an unrecorded task; blame the unrecorded
            # one with the most co-located tasks.
            target = max(unrecorded, key=lambda o: (o.num_neighbours, o.key))
            self._record(target, tput)
            return target

        # All placements recorded and none is below the observation: the
        # observation is consistent with the table; refresh the lowest
        # entry (idempotent when equal).
        if tput < lowest_tput:
            self._record(lowest, tput)
            return lowest
        return None

    def sync(
        self,
        entries: Mapping[tuple[str, Sequence[str]], float]
        | "CoLocationThroughputTable",
    ) -> int:
        """Bulk-merge exact entries from a snapshot or another table.

        Every entry is routed through :meth:`_record`, so the pairwise
        mirror, the lookup memo, and the :attr:`version` epoch behave
        exactly as if each value had been observed online — a direct dict
        merge here would silently skip the epoch bump and let downstream
        caches (``TNRPCaches``, ``PackMemo``) serve stale throughputs.

        Returns the number of value-changing entries merged.
        """
        if isinstance(entries, CoLocationThroughputTable):
            items: Iterable[tuple[tuple[str, Sequence[str]], float]] = (
                entries._exact.items()
            )
        else:
            items = entries.items()
        before = self._version
        for (workload, neighbours), tput in sorted(items):
            self._record(
                TaskPlacementObservation(
                    workload=workload, neighbours=tuple(neighbours)
                ),
                tput,
            )
        return self._version - before

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def num_exact_entries(self) -> int:
        return len(self._exact)

    def has_large_exact_entries(self) -> bool:
        """True if any exact entry covers a set of more than two tasks.

        Pair entries mirror into the pairwise store, so pairwise-product
        increments remain exact as long as this is False.
        """
        return self._num_large_exact > 0

    @property
    def version(self) -> int:
        """Monotonic counter of value-changing updates (cache epoch)."""
        return self._version

    def num_pairwise_entries(self) -> int:
        return len(self._pairwise)

    def pairwise_snapshot(self) -> Mapping[tuple[str, str], float]:
        return dict(self._pairwise)
