"""Eva's scheduler (§3, §4): ties RP/TNRP packing, the throughput monitor,
and the migration-aware ensemble into the common :class:`Scheduler`
contract.

Variants used throughout the evaluation are expressed as configuration
toggles:

==================  =============================================
Variant             Configuration
==================  =============================================
Eva (default)       TNRP + multi-task aware + Full & Partial
Eva-RP              ``interference_aware=False`` (Figure 4)
Eva-TNRP            alias of the default (Figure 4)
Eva-Single          ``multi_task_aware=False`` (Table 6, Figure 7)
Eva w/o Full        ``enable_full=False`` (Figure 6)
Eva Full-only       ``enable_partial=False`` (Figure 5b)
==================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType
from repro.cluster.state import (
    ClusterSnapshot,
    TargetConfiguration,
)
from repro.core.ensemble import EnsemblePolicy, ReconfigDecision
from repro.core.evaluation import (
    AssignmentEvaluator,
    RPEvaluator,
    TNRPCaches,
    TNRPEvaluator,
)
from repro.core.full_reconfig import (
    PackedInstance,
    PackMemo,
    full_reconfiguration,
    match_existing_instances,
)
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.monitor import ThroughputMonitor
from repro.core.partial_reconfig import partial_reconfiguration
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import CoLocationThroughputTable


@dataclass(frozen=True)
class EvaConfig:
    """Feature toggles for Eva variants (see module docstring).

    Attributes:
        interference_aware: Use TNRP (True) or plain RP (False).
        multi_task_aware: Apply the §4.4 multi-task extension.
        enable_full: Compute the Full Reconfiguration candidate.
        enable_partial: Compute the Partial Reconfiguration candidate.
        default_tput: The table's default pairwise throughput ``t``
            (0.95 in all paper experiments; smaller packs more
            conservatively, §4.3).
        group_identical: Algorithm 1 candidate grouping (DESIGN.md §4.2).
        efficiency_margin: JCT-aware packing margin (§6.3 future work):
            co-locations must beat instance cost by this fraction.  0.0
            reproduces the paper; higher values trade savings for JCT.
    """

    interference_aware: bool = True
    multi_task_aware: bool = True
    enable_full: bool = True
    enable_partial: bool = True
    default_tput: float = 0.95
    group_identical: bool = True
    efficiency_margin: float = 0.0

    def __post_init__(self) -> None:
        if not (self.enable_full or self.enable_partial):
            raise ValueError("at least one of Full/Partial must be enabled")
        if self.efficiency_margin < 0:
            raise ValueError("efficiency_margin must be >= 0")


def _to_target(packed: Sequence[PackedInstance]) -> TargetConfiguration:
    return TargetConfiguration.from_pairs(
        (p.instance, (t.task_id for t in p.tasks)) for p in packed
    )


class EvaScheduler(Scheduler):
    """The Eva cluster scheduler."""

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
    ):
        self.catalog = list(catalog)
        self.config = config or EvaConfig()
        self.delay_model = delay_model or DelayModel()
        self.rp_calculator = ReservationPriceCalculator(self.catalog)
        self.monitor = ThroughputMonitor(
            table=CoLocationThroughputTable(default_tput=self.config.default_tput)
        )
        self.policy = EnsemblePolicy(delay_model=self.delay_model)
        self._tnrp_caches = TNRPCaches()
        self._pack_memo = PackMemo()
        self.name = name or self._default_name()
        self._known_job_ids: set[str] = set()
        self.last_decision: ReconfigDecision | None = None

    def _default_name(self) -> str:
        if not self.config.interference_aware:
            return "Eva-RP"
        if not self.config.multi_task_aware:
            return "Eva-Single"
        if not self.config.enable_partial:
            return "Eva-Full-only"
        if not self.config.enable_full:
            return "Eva-Partial-only"
        return "Eva"

    # ------------------------------------------------------------------
    # Scheduler contract
    # ------------------------------------------------------------------
    def on_throughput_reports(self, reports: tuple[JobThroughputReport, ...]) -> None:
        self.monitor.ingest(reports)

    def make_evaluator(self, snapshot: ClusterSnapshot) -> AssignmentEvaluator:
        if not self.config.interference_aware:
            return RPEvaluator(self.rp_calculator)
        return TNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=self.config.multi_task_aware,
            caches=self._tnrp_caches,
        )

    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        self._track_events(snapshot)
        evaluator = self.make_evaluator(snapshot)

        full_cfg = (
            self._full_candidate(snapshot, evaluator)
            if self.config.enable_full
            else None
        )
        partial_cfg = (
            self._partial_candidate(snapshot, evaluator)
            if self.config.enable_partial
            else None
        )

        if full_cfg is not None and partial_cfg is not None:
            chosen, decision = self.policy.decide(
                full_cfg, partial_cfg, snapshot, evaluator
            )
            self.last_decision = decision
            return chosen
        chosen = full_cfg if full_cfg is not None else partial_cfg
        assert chosen is not None
        self.last_decision = None
        return chosen

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def _full_candidate(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        packed = full_reconfiguration(
            list(snapshot.tasks.values()),
            self.catalog,
            evaluator,
            group_identical=self.config.group_identical,
            cost_margin=self.config.efficiency_margin,
            memo=self._pack_memo,
        )
        packed = match_existing_instances(
            packed,
            [(st.instance, frozenset(st.task_ids)) for st in snapshot.instances],
        )
        return _to_target(packed)

    def _partial_candidate(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        current = [
            # Sorted: greedy repacking must not depend on hash-randomized
            # frozenset order, or results change per process.
            (st.instance, [snapshot.tasks[tid] for tid in sorted(st.task_ids)])
            for st in snapshot.instances
        ]
        result = partial_reconfiguration(
            current,
            snapshot.unassigned_tasks(),
            self.catalog,
            evaluator,
            group_identical=self.config.group_identical,
            cost_margin=self.config.efficiency_margin,
            memo=self._pack_memo,
        )
        return _to_target(result.configuration)

    # ------------------------------------------------------------------
    # Event tracking for the D̂ estimator
    # ------------------------------------------------------------------
    def _track_events(self, snapshot: ClusterSnapshot) -> None:
        job_ids = set(snapshot.jobs)
        arrivals = len(job_ids - self._known_job_ids)
        completions = len(self._known_job_ids - job_ids)
        self.policy.record_events(arrivals + completions, snapshot.time_s)
        self._known_job_ids = job_ids

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def full_adoption_fraction(self) -> float:
        """Fraction of ensemble decisions adopting Full Reconfig (Fig. 5a)."""
        return self.policy.full_adoption_fraction()

    def with_config(self, **overrides) -> "EvaScheduler":
        """A fresh scheduler with configuration overrides (for sweeps)."""
        return EvaScheduler(
            catalog=self.catalog,
            config=replace(self.config, **overrides),
            delay_model=self.delay_model,
        )


def make_eva_variant(
    catalog: Sequence[InstanceType],
    variant: str = "eva",
    delay_model: DelayModel | None = None,
) -> EvaScheduler:
    """Factory for the named Eva variants used in the evaluation."""
    variants = {
        "eva": EvaConfig(),
        "eva-tnrp": EvaConfig(),
        "eva-rp": EvaConfig(interference_aware=False),
        "eva-single": EvaConfig(multi_task_aware=False),
        "eva-full-only": EvaConfig(enable_partial=False),
        "eva-partial-only": EvaConfig(enable_full=False),
    }
    key = variant.lower()
    if key not in variants:
        raise KeyError(f"unknown Eva variant {variant!r}; known: {sorted(variants)}")
    name_map = {
        "eva": "Eva",
        "eva-tnrp": "Eva-TNRP",
        "eva-rp": "Eva-RP",
        "eva-single": "Eva-Single",
        "eva-full-only": "Eva-Full-only",
        "eva-partial-only": "Eva-Partial-only",
    }
    return EvaScheduler(
        catalog, config=variants[key], delay_model=delay_model, name=name_map[key]
    )
