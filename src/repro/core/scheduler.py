"""Eva's scheduler (§3, §4): ties RP/TNRP packing, the throughput monitor,
and the migration-aware ensemble into the common :class:`Scheduler`
contract.

Variants used throughout the evaluation are expressed as configuration
toggles:

==================  =============================================
Variant             Configuration
==================  =============================================
Eva (default)       TNRP + multi-task aware + Full & Partial
Eva-RP              ``interference_aware=False`` (Figure 4)
Eva-TNRP            alias of the default (Figure 4)
Eva-Single          ``multi_task_aware=False`` (Table 6, Figure 7)
Eva w/o Full        ``enable_full=False`` (Figure 6)
Eva Full-only       ``enable_partial=False`` (Figure 5b)
==================  =============================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType, _instance_counter
from repro.cluster.state import (
    ClusterSnapshot,
    TargetConfiguration,
)
from repro.core.ensemble import EnsemblePolicy, ReconfigDecision
from repro.core.evaluation import (
    AssignmentEvaluator,
    RPEvaluator,
    TNRPCaches,
    TNRPEvaluator,
)
from repro.core.full_reconfig import (
    PackedInstance,
    PackMemo,
    full_reconfiguration,
    match_existing_instances,
)
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.monitor import ThroughputMonitor
from repro.core.partial_reconfig import partial_reconfiguration
from repro.core.protocol import (
    AssignTask,
    Decision,
    LaunchInstance,
    MigrateTask,
    Observation,
    SpotEvictionNotice,
    TerminateInstance,
    count_job_events,
    diff_target,
    throughput_reports,
)
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import CoLocationThroughputTable


@dataclass(frozen=True)
class EvaConfig:
    """Feature toggles for Eva variants (see module docstring).

    Attributes:
        interference_aware: Use TNRP (True) or plain RP (False).
        multi_task_aware: Apply the §4.4 multi-task extension.
        enable_full: Compute the Full Reconfiguration candidate.
        enable_partial: Compute the Partial Reconfiguration candidate.
        default_tput: The table's default pairwise throughput ``t``
            (0.95 in all paper experiments; smaller packs more
            conservatively, §4.3).
        group_identical: Algorithm 1 candidate grouping (DESIGN.md §4.2).
        efficiency_margin: JCT-aware packing margin (§6.3 future work):
            co-locations must beat instance cost by this fraction.  0.0
            reproduces the paper; higher values trade savings for JCT.
    """

    interference_aware: bool = True
    multi_task_aware: bool = True
    enable_full: bool = True
    enable_partial: bool = True
    default_tput: float = 0.95
    group_identical: bool = True
    efficiency_margin: float = 0.0

    def __post_init__(self) -> None:
        if not (self.enable_full or self.enable_partial):
            raise ValueError("at least one of Full/Partial must be enabled")
        if self.efficiency_margin < 0:
            raise ValueError("efficiency_margin must be >= 0")


def _to_target(packed: Sequence[PackedInstance]) -> TargetConfiguration:
    return TargetConfiguration.from_pairs(
        (p.instance, (t.task_id for t in p.tasks)) for p in packed
    )


#: Cap on retained round-memo entries; cleared wholesale like PackMemo so
#: long phase-changing workloads cannot grow the memo without bound.
_ROUND_MEMO_CAP = 256


@dataclass(frozen=True, slots=True)
class _RoundMemoEntry:
    """One memoized no-op round (see :meth:`EvaScheduler.decide`).

    Replaying a round must leave every piece of scheduler-external state
    exactly as the real computation would: ``mint_count`` advances the
    global instance-id counter by the number of ids the packing would
    have consumed (downstream tie-breaks sort on ids), and the stored
    Equation-1 inputs let the hit path re-run the ensemble choice under
    the *current* D̂ — which changes every round — before trusting the
    cached decision.
    """

    decision: Decision
    mint_count: int
    has_ensemble: bool
    saving_full: float
    saving_partial: float
    migration_full: float
    migration_partial: float
    adopted_full: bool


class EvaScheduler(Scheduler):
    """The Eva cluster scheduler."""

    #: Eva launches, places, migrates, and terminates — it never returns
    #: a task to the queue without a new placement.
    action_types = frozenset(
        {LaunchInstance, AssignTask, MigrateTask, TerminateInstance}
    )

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
    ):
        self.catalog = list(catalog)
        self.config = config or EvaConfig()
        self.delay_model = delay_model or DelayModel()
        self.rp_calculator = ReservationPriceCalculator(self.catalog)
        self.monitor = ThroughputMonitor(
            table=CoLocationThroughputTable(default_tput=self.config.default_tput)
        )
        self.policy = EnsemblePolicy(delay_model=self.delay_model)
        self._tnrp_caches = TNRPCaches()
        self._pack_memo = PackMemo()
        self.name = name or self._default_name()
        self._known_job_ids: set[str] = set()
        #: Arrival/completion count accumulated from the observation
        #: channel; ``None`` until the first :meth:`observe` call, after
        #: which the channel (not snapshot diffing) drives the D̂
        #: estimator.
        self._pending_job_events: int | None = None
        self.last_decision: ReconfigDecision | None = None
        #: Round-decision memo (no-op steady-state rounds short-circuit
        #: the whole packing pipeline).  ``None`` when disabled: by the
        #: ``EVA_ROUND_MEMO=0`` knob (equivalence testing), under a
        #: stochastic delay model (migration costing draws the RNG, so a
        #: replay would desynchronize the stream), or when a subclass
        #: overrides :meth:`schedule` wholesale (its extra logic would be
        #: skipped on hits).
        self._round_memo: dict[tuple, _RoundMemoEntry] | None = None
        if (
            os.environ.get("EVA_ROUND_MEMO", "1") != "0"
            and not self.delay_model.stochastic
            and type(self).schedule is EvaScheduler.schedule
        ):
            self._round_memo = {}
        #: Last computed round key, keyed by the identity of the snapshot
        #: collections it was derived from (see :meth:`_round_key`).
        self._round_key_cache: tuple | None = None

    def _default_name(self) -> str:
        if not self.config.interference_aware:
            return "Eva-RP"
        if not self.config.multi_task_aware:
            return "Eva-Single"
        if not self.config.enable_partial:
            return "Eva-Full-only"
        if not self.config.enable_full:
            return "Eva-Partial-only"
        return "Eva"

    # ------------------------------------------------------------------
    # Scheduler contract
    # ------------------------------------------------------------------
    def on_throughput_reports(self, reports: tuple[JobThroughputReport, ...]) -> None:
        self.monitor.ingest(reports)

    def observe(self, observations: tuple[Observation, ...]) -> None:
        """Count arrival/completion events for the §4.5 D̂ estimator.

        Once the environment speaks the observation channel, the typed
        :class:`~repro.core.protocol.JobArrived`/:class:`~repro.core.protocol.JobFinished`
        events drive ``record_events`` directly; the legacy fallback in
        :meth:`_track_events` (diffing job-id sets between snapshots)
        only remains for direct ``schedule()`` callers.
        """
        count = count_job_events(observations)
        if self._pending_job_events is None:
            self._pending_job_events = count
        else:
            self._pending_job_events += count

    def make_evaluator(self, snapshot: ClusterSnapshot) -> AssignmentEvaluator:
        if not self.config.interference_aware:
            return RPEvaluator(self.rp_calculator)
        return TNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=self.config.multi_task_aware,
            caches=self._tnrp_caches,
        )

    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        self._pre_schedule(snapshot)
        packing_snapshot = self._packing_snapshot(snapshot)
        return self._schedule_core(
            packing_snapshot, self.make_evaluator(packing_snapshot)
        )

    def _pre_schedule(self, snapshot: ClusterSnapshot) -> None:
        """Per-round bookkeeping that must run even on memoized rounds.

        Subclasses extend this (progress integration, notice pruning)
        instead of overriding :meth:`schedule`, so the round memo can
        short-circuit the packing pipeline without skipping their state
        updates.
        """
        self._track_events(snapshot)

    def _packing_snapshot(self, snapshot: ClusterSnapshot) -> ClusterSnapshot:
        """The snapshot Algorithm 1 packs against (hook; default: as-is).

        :meth:`decide` always diffs the chosen target against the
        *original* snapshot, so a subclass hiding instances here still
        emits the migrations/terminations that drain them.
        """
        return snapshot

    def _schedule_core(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        full_cfg = (
            self._full_candidate(snapshot, evaluator)
            if self.config.enable_full
            else None
        )
        partial_cfg = (
            self._partial_candidate(snapshot, evaluator)
            if self.config.enable_partial
            else None
        )

        if full_cfg is not None and partial_cfg is not None:
            chosen, decision = self.policy.decide(
                full_cfg, partial_cfg, snapshot, evaluator
            )
            self.last_decision = decision
            return chosen
        chosen = full_cfg if full_cfg is not None else partial_cfg
        assert chosen is not None
        self.last_decision = None
        return chosen

    # ------------------------------------------------------------------
    # Round-decision memo
    # ------------------------------------------------------------------
    def _round_key_extra(self) -> tuple:
        """Subclass hook: extra state the round outcome depends on."""
        return ()

    def _round_key(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> tuple | None:
        token = evaluator.cache_token()
        if token is None:
            return None
        extra = self._round_key_extra()
        # Identity fast path: the simulator reuses the snapshot's task
        # mapping and instance tuple (treated as immutable by contract)
        # while its placement epoch stands still, so the same objects
        # plus an equal token/extra mean an equal key.
        cached = self._round_key_cache
        if (
            cached is not None
            and cached[0] is snapshot.tasks
            and cached[1] is snapshot.instances
            and cached[2] == token
            and cached[3] == extra
        ):
            return cached[4]
        key = (
            token,
            tuple(sorted(snapshot.tasks)),
            tuple(
                (st.instance_id, st.instance_type.name, tuple(sorted(st.task_ids)))
                for st in snapshot.instances
            ),
            extra,
        )
        self._round_key_cache = (
            snapshot.tasks,
            snapshot.instances,
            token,
            extra,
            key,
        )
        return key

    def decide(
        self,
        snapshot: ClusterSnapshot,
        observations: tuple[Observation, ...] = (),
    ) -> Decision:
        """One round, with no-op steady-state rounds memoized.

        Between job events the cluster state the packing depends on —
        task pool, placements, throughput-table epoch — is typically
        unchanged round over round, and the resulting decision is "do
        nothing".  Recomputing both reconfiguration candidates every
        round just to rediscover that dominates simulated wall time, so
        decisions with **no actions** are memoized on the exact state
        they were computed from.  A hit replays the round's observable
        side effects precisely: the instance-id counter advances by the
        number of ids the packing would have minted, and Equation 1 is
        re-evaluated under the current D̂ — if the adoption choice would
        flip, the hit is abandoned and the round recomputed for real.
        Decisions *with* actions are never cached (their launch actions
        embed freshly minted instance ids).
        """
        self.on_throughput_reports(throughput_reports(observations))
        self.observe(observations)
        memo = self._round_memo
        if memo is None:
            return diff_target(snapshot, self.schedule(snapshot))

        self._pre_schedule(snapshot)
        packing_snapshot = self._packing_snapshot(snapshot)
        evaluator = self.make_evaluator(packing_snapshot)
        key = self._round_key(packing_snapshot, evaluator)

        entry = memo.get(key) if key is not None else None
        if entry is not None:
            replayed = self._replay_round(entry)
            if replayed is not None:
                return replayed

        before = _instance_counter.value
        target = self._schedule_core(packing_snapshot, evaluator)
        mint_count = _instance_counter.value - before
        decision = diff_target(snapshot, target)
        if key is not None and not decision.actions:
            if len(memo) >= _ROUND_MEMO_CAP:
                memo.clear()
            rd = self.last_decision
            memo[key] = _RoundMemoEntry(
                decision=decision,
                mint_count=mint_count,
                has_ensemble=rd is not None,
                saving_full=rd.saving_full if rd is not None else 0.0,
                saving_partial=rd.saving_partial if rd is not None else 0.0,
                migration_full=rd.migration_full if rd is not None else 0.0,
                migration_partial=rd.migration_partial if rd is not None else 0.0,
                adopted_full=rd.adopted_full if rd is not None else False,
            )
        return decision

    def _replay_round(self, entry: _RoundMemoEntry) -> Decision | None:
        """Replay a memoized no-op round, or None to force a recompute.

        D̂ moves every round (the estimator's observation window grows),
        so the Equation-1 comparison is re-run with the stored savings
        and migration costs; only when it lands on the same branch is
        the cached decision trusted — the ensemble bookkeeping (history,
        adoption counts) is then replayed with the fresh D̂ exactly as
        :meth:`EnsemblePolicy.decide` would have recorded it.
        """
        if not entry.has_ensemble:
            _instance_counter.advance(entry.mint_count)
            self.last_decision = None
            return entry.decision
        d_hat = self.policy.estimator.estimated_duration_hours()
        adopted_full = (
            entry.saving_full * d_hat - entry.migration_full
            > entry.saving_partial * d_hat - entry.migration_partial
        )
        if adopted_full != entry.adopted_full:
            return None
        _instance_counter.advance(entry.mint_count)
        decision = ReconfigDecision(
            adopted_full=adopted_full,
            saving_full=entry.saving_full,
            saving_partial=entry.saving_partial,
            migration_full=entry.migration_full,
            migration_partial=entry.migration_partial,
            duration_estimate_hours=d_hat,
        )
        self.policy.history.append(decision)
        self.policy.estimator.record_decision(adopted_full)
        self.last_decision = decision
        return entry.decision

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def _full_candidate(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        packed = full_reconfiguration(
            list(snapshot.tasks.values()),
            self.catalog,
            evaluator,
            group_identical=self.config.group_identical,
            cost_margin=self.config.efficiency_margin,
            memo=self._pack_memo,
        )
        packed = match_existing_instances(
            packed,
            [(st.instance, frozenset(st.task_ids)) for st in snapshot.instances],
        )
        return _to_target(packed)

    def _partial_candidate(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        current = [
            # Sorted: greedy repacking must not depend on hash-randomized
            # frozenset order, or results change per process.
            (st.instance, [snapshot.tasks[tid] for tid in sorted(st.task_ids)])
            for st in snapshot.instances
        ]
        result = partial_reconfiguration(
            current,
            snapshot.unassigned_tasks(),
            self.catalog,
            evaluator,
            group_identical=self.config.group_identical,
            cost_margin=self.config.efficiency_margin,
            memo=self._pack_memo,
        )
        return _to_target(result.configuration)

    # ------------------------------------------------------------------
    # Event tracking for the D̂ estimator
    # ------------------------------------------------------------------
    def _track_events(self, snapshot: ClusterSnapshot) -> None:
        """Feed arrivals + completions into the Poisson event estimator.

        Preferred source is the typed observation channel (see
        :meth:`observe`); both sources count identically — every job
        arrival/completion is observed exactly once by the scheduler —
        which the byte-identical golden-digest matrix pins down.
        """
        if self._pending_job_events is not None:
            count = self._pending_job_events
            self._pending_job_events = 0
        else:
            # Legacy fallback for direct schedule() callers that bypass
            # decide(): infer events by diffing live job ids.
            job_ids = set(snapshot.jobs)
            count = len(job_ids - self._known_job_ids) + len(
                self._known_job_ids - job_ids
            )
            self._known_job_ids = job_ids
        self.policy.record_events(count, snapshot.time_s)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def full_adoption_fraction(self) -> float:
        """Fraction of ensemble decisions adopting Full Reconfig (Fig. 5a)."""
        return self.policy.full_adoption_fraction()

    def with_config(self, **overrides) -> "EvaScheduler":
        """A fresh scheduler with configuration overrides (for sweeps)."""
        return EvaScheduler(
            catalog=self.catalog,
            config=replace(self.config, **overrides),
            delay_model=self.delay_model,
        )


class EvictionAwareEvaScheduler(EvaScheduler):
    """Eva extended to react to spot eviction notices (§7 extension).

    A protocol-native policy: it consumes
    :class:`~repro.core.protocol.SpotEvictionNotice` observations through
    the :meth:`observe` hook and treats noticed instances as *doomed* —
    they are hidden from the packing snapshot, so their tasks are
    re-placed (migrated with their checkpointed progress intact, while
    the instance is still up) and the doomed instances are terminated
    ahead of the market reclaiming them.  Compared to riding out the
    preemption, tasks skip the queued-until-next-round gap and the
    cluster stops paying for capacity it is about to lose.

    Without notices (``SpotConfig.notice_s == 0``, or on-demand runs)
    no :meth:`observe` call ever records one, and the policy is
    behaviourally identical to :class:`EvaScheduler`.
    """

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
    ):
        super().__init__(
            catalog,
            config=config,
            delay_model=delay_model,
            name=name or "Eva-Eviction-Aware",
        )
        #: instance id -> promised eviction time, pruned against each
        #: snapshot (a notice may outlive its instance).
        self._eviction_notices: dict[str, float] = {}

    def observe(self, observations: tuple[Observation, ...]) -> None:
        super().observe(observations)
        for obs in observations:
            if isinstance(obs, SpotEvictionNotice):
                self._eviction_notices[obs.instance_id] = obs.eviction_time_s

    def _pre_schedule(self, snapshot: ClusterSnapshot) -> None:
        live_ids = {state.instance_id for state in snapshot.instances}
        self._eviction_notices = {
            iid: t for iid, t in self._eviction_notices.items() if iid in live_ids
        }
        super()._pre_schedule(snapshot)

    def _packing_snapshot(self, snapshot: ClusterSnapshot) -> ClusterSnapshot:
        if self._eviction_notices:
            return self._without_doomed(snapshot)
        return snapshot

    def _round_key_extra(self) -> tuple:
        # A doomed instance changes the decision (drain + terminate)
        # even though the packing snapshot hides it, so pending notices
        # must partition the memo.
        return tuple(sorted(self._eviction_notices.items()))

    def _without_doomed(self, snapshot: ClusterSnapshot) -> ClusterSnapshot:
        """The snapshot with doomed instances hidden from packing.

        Their tasks become unassigned (re-placed by partial reconfig,
        repacked from scratch by full reconfig) and
        ``match_existing_instances`` cannot keep a doomed id, so the
        planned decision migrates the tasks off and terminates the
        instance — the drain emerges from the ordinary packing path.
        """
        doomed = self._eviction_notices
        return ClusterSnapshot(
            time_s=snapshot.time_s,
            tasks=snapshot.tasks,
            jobs=snapshot.jobs,
            instances=tuple(
                state
                for state in snapshot.instances
                if state.instance_id not in doomed
            ),
        )


def make_eva_variant(
    catalog: Sequence[InstanceType],
    variant: str = "eva",
    delay_model: DelayModel | None = None,
) -> EvaScheduler:
    """Factory for the named Eva variants used in the evaluation."""
    variants = {
        "eva": EvaConfig(),
        "eva-tnrp": EvaConfig(),
        "eva-rp": EvaConfig(interference_aware=False),
        "eva-single": EvaConfig(multi_task_aware=False),
        "eva-full-only": EvaConfig(enable_partial=False),
        "eva-partial-only": EvaConfig(enable_full=False),
    }
    key = variant.lower()
    if key not in variants:
        raise KeyError(f"unknown Eva variant {variant!r}; known: {sorted(variants)}")
    name_map = {
        "eva": "Eva",
        "eva-tnrp": "Eva-TNRP",
        "eva-rp": "Eva-RP",
        "eva-single": "Eva-Single",
        "eva-full-only": "Eva-Full-only",
        "eva-partial-only": "Eva-Partial-only",
    }
    return EvaScheduler(
        catalog, config=variants[key], delay_model=delay_model, name=name_map[key]
    )
