"""Eva's scheduler (§3, §4): ties RP/TNRP packing, the throughput monitor,
and the migration-aware ensemble into the common :class:`Scheduler`
contract.

Variants used throughout the evaluation are expressed as configuration
toggles:

==================  =============================================
Variant             Configuration
==================  =============================================
Eva (default)       TNRP + multi-task aware + Full & Partial
Eva-RP              ``interference_aware=False`` (Figure 4)
Eva-TNRP            alias of the default (Figure 4)
Eva-Single          ``multi_task_aware=False`` (Table 6, Figure 7)
Eva w/o Full        ``enable_full=False`` (Figure 6)
Eva Full-only       ``enable_partial=False`` (Figure 5b)
==================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType
from repro.cluster.state import (
    ClusterSnapshot,
    TargetConfiguration,
)
from repro.core.ensemble import EnsemblePolicy, ReconfigDecision
from repro.core.evaluation import (
    AssignmentEvaluator,
    RPEvaluator,
    TNRPCaches,
    TNRPEvaluator,
)
from repro.core.full_reconfig import (
    PackedInstance,
    PackMemo,
    full_reconfiguration,
    match_existing_instances,
)
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.monitor import ThroughputMonitor
from repro.core.partial_reconfig import partial_reconfiguration
from repro.core.protocol import (
    AssignTask,
    LaunchInstance,
    MigrateTask,
    Observation,
    SpotEvictionNotice,
    TerminateInstance,
    count_job_events,
)
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import CoLocationThroughputTable


@dataclass(frozen=True)
class EvaConfig:
    """Feature toggles for Eva variants (see module docstring).

    Attributes:
        interference_aware: Use TNRP (True) or plain RP (False).
        multi_task_aware: Apply the §4.4 multi-task extension.
        enable_full: Compute the Full Reconfiguration candidate.
        enable_partial: Compute the Partial Reconfiguration candidate.
        default_tput: The table's default pairwise throughput ``t``
            (0.95 in all paper experiments; smaller packs more
            conservatively, §4.3).
        group_identical: Algorithm 1 candidate grouping (DESIGN.md §4.2).
        efficiency_margin: JCT-aware packing margin (§6.3 future work):
            co-locations must beat instance cost by this fraction.  0.0
            reproduces the paper; higher values trade savings for JCT.
    """

    interference_aware: bool = True
    multi_task_aware: bool = True
    enable_full: bool = True
    enable_partial: bool = True
    default_tput: float = 0.95
    group_identical: bool = True
    efficiency_margin: float = 0.0

    def __post_init__(self) -> None:
        if not (self.enable_full or self.enable_partial):
            raise ValueError("at least one of Full/Partial must be enabled")
        if self.efficiency_margin < 0:
            raise ValueError("efficiency_margin must be >= 0")


def _to_target(packed: Sequence[PackedInstance]) -> TargetConfiguration:
    return TargetConfiguration.from_pairs(
        (p.instance, (t.task_id for t in p.tasks)) for p in packed
    )


class EvaScheduler(Scheduler):
    """The Eva cluster scheduler."""

    #: Eva launches, places, migrates, and terminates — it never returns
    #: a task to the queue without a new placement.
    action_types = frozenset(
        {LaunchInstance, AssignTask, MigrateTask, TerminateInstance}
    )

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
    ):
        self.catalog = list(catalog)
        self.config = config or EvaConfig()
        self.delay_model = delay_model or DelayModel()
        self.rp_calculator = ReservationPriceCalculator(self.catalog)
        self.monitor = ThroughputMonitor(
            table=CoLocationThroughputTable(default_tput=self.config.default_tput)
        )
        self.policy = EnsemblePolicy(delay_model=self.delay_model)
        self._tnrp_caches = TNRPCaches()
        self._pack_memo = PackMemo()
        self.name = name or self._default_name()
        self._known_job_ids: set[str] = set()
        #: Arrival/completion count accumulated from the observation
        #: channel; ``None`` until the first :meth:`observe` call, after
        #: which the channel (not snapshot diffing) drives the D̂
        #: estimator.
        self._pending_job_events: int | None = None
        self.last_decision: ReconfigDecision | None = None

    def _default_name(self) -> str:
        if not self.config.interference_aware:
            return "Eva-RP"
        if not self.config.multi_task_aware:
            return "Eva-Single"
        if not self.config.enable_partial:
            return "Eva-Full-only"
        if not self.config.enable_full:
            return "Eva-Partial-only"
        return "Eva"

    # ------------------------------------------------------------------
    # Scheduler contract
    # ------------------------------------------------------------------
    def on_throughput_reports(self, reports: tuple[JobThroughputReport, ...]) -> None:
        self.monitor.ingest(reports)

    def observe(self, observations: tuple[Observation, ...]) -> None:
        """Count arrival/completion events for the §4.5 D̂ estimator.

        Once the environment speaks the observation channel, the typed
        :class:`~repro.core.protocol.JobArrived`/:class:`~repro.core.protocol.JobFinished`
        events drive ``record_events`` directly; the legacy fallback in
        :meth:`_track_events` (diffing job-id sets between snapshots)
        only remains for direct ``schedule()`` callers.
        """
        count = count_job_events(observations)
        if self._pending_job_events is None:
            self._pending_job_events = count
        else:
            self._pending_job_events += count

    def make_evaluator(self, snapshot: ClusterSnapshot) -> AssignmentEvaluator:
        if not self.config.interference_aware:
            return RPEvaluator(self.rp_calculator)
        return TNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=self.config.multi_task_aware,
            caches=self._tnrp_caches,
        )

    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        self._track_events(snapshot)
        evaluator = self.make_evaluator(snapshot)

        full_cfg = (
            self._full_candidate(snapshot, evaluator)
            if self.config.enable_full
            else None
        )
        partial_cfg = (
            self._partial_candidate(snapshot, evaluator)
            if self.config.enable_partial
            else None
        )

        if full_cfg is not None and partial_cfg is not None:
            chosen, decision = self.policy.decide(
                full_cfg, partial_cfg, snapshot, evaluator
            )
            self.last_decision = decision
            return chosen
        chosen = full_cfg if full_cfg is not None else partial_cfg
        assert chosen is not None
        self.last_decision = None
        return chosen

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def _full_candidate(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        packed = full_reconfiguration(
            list(snapshot.tasks.values()),
            self.catalog,
            evaluator,
            group_identical=self.config.group_identical,
            cost_margin=self.config.efficiency_margin,
            memo=self._pack_memo,
        )
        packed = match_existing_instances(
            packed,
            [(st.instance, frozenset(st.task_ids)) for st in snapshot.instances],
        )
        return _to_target(packed)

    def _partial_candidate(
        self, snapshot: ClusterSnapshot, evaluator: AssignmentEvaluator
    ) -> TargetConfiguration:
        current = [
            # Sorted: greedy repacking must not depend on hash-randomized
            # frozenset order, or results change per process.
            (st.instance, [snapshot.tasks[tid] for tid in sorted(st.task_ids)])
            for st in snapshot.instances
        ]
        result = partial_reconfiguration(
            current,
            snapshot.unassigned_tasks(),
            self.catalog,
            evaluator,
            group_identical=self.config.group_identical,
            cost_margin=self.config.efficiency_margin,
            memo=self._pack_memo,
        )
        return _to_target(result.configuration)

    # ------------------------------------------------------------------
    # Event tracking for the D̂ estimator
    # ------------------------------------------------------------------
    def _track_events(self, snapshot: ClusterSnapshot) -> None:
        """Feed arrivals + completions into the Poisson event estimator.

        Preferred source is the typed observation channel (see
        :meth:`observe`); both sources count identically — every job
        arrival/completion is observed exactly once by the scheduler —
        which the byte-identical golden-digest matrix pins down.
        """
        if self._pending_job_events is not None:
            count = self._pending_job_events
            self._pending_job_events = 0
        else:
            # Legacy fallback for direct schedule() callers that bypass
            # decide(): infer events by diffing live job ids.
            job_ids = set(snapshot.jobs)
            count = len(job_ids - self._known_job_ids) + len(
                self._known_job_ids - job_ids
            )
            self._known_job_ids = job_ids
        self.policy.record_events(count, snapshot.time_s)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def full_adoption_fraction(self) -> float:
        """Fraction of ensemble decisions adopting Full Reconfig (Fig. 5a)."""
        return self.policy.full_adoption_fraction()

    def with_config(self, **overrides) -> "EvaScheduler":
        """A fresh scheduler with configuration overrides (for sweeps)."""
        return EvaScheduler(
            catalog=self.catalog,
            config=replace(self.config, **overrides),
            delay_model=self.delay_model,
        )


class EvictionAwareEvaScheduler(EvaScheduler):
    """Eva extended to react to spot eviction notices (§7 extension).

    A protocol-native policy: it consumes
    :class:`~repro.core.protocol.SpotEvictionNotice` observations through
    the :meth:`observe` hook and treats noticed instances as *doomed* —
    they are hidden from the packing snapshot, so their tasks are
    re-placed (migrated with their checkpointed progress intact, while
    the instance is still up) and the doomed instances are terminated
    ahead of the market reclaiming them.  Compared to riding out the
    preemption, tasks skip the queued-until-next-round gap and the
    cluster stops paying for capacity it is about to lose.

    Without notices (``SpotConfig.notice_s == 0``, or on-demand runs)
    no :meth:`observe` call ever records one, and the policy is
    behaviourally identical to :class:`EvaScheduler`.
    """

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
    ):
        super().__init__(
            catalog,
            config=config,
            delay_model=delay_model,
            name=name or "Eva-Eviction-Aware",
        )
        #: instance id -> promised eviction time, pruned against each
        #: snapshot (a notice may outlive its instance).
        self._eviction_notices: dict[str, float] = {}

    def observe(self, observations: tuple[Observation, ...]) -> None:
        super().observe(observations)
        for obs in observations:
            if isinstance(obs, SpotEvictionNotice):
                self._eviction_notices[obs.instance_id] = obs.eviction_time_s

    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        live_ids = {state.instance_id for state in snapshot.instances}
        self._eviction_notices = {
            iid: t for iid, t in self._eviction_notices.items() if iid in live_ids
        }
        if self._eviction_notices:
            snapshot = self._without_doomed(snapshot)
        return super().schedule(snapshot)

    def _without_doomed(self, snapshot: ClusterSnapshot) -> ClusterSnapshot:
        """The snapshot with doomed instances hidden from packing.

        Their tasks become unassigned (re-placed by partial reconfig,
        repacked from scratch by full reconfig) and
        ``match_existing_instances`` cannot keep a doomed id, so the
        planned decision migrates the tasks off and terminates the
        instance — the drain emerges from the ordinary packing path.
        """
        doomed = self._eviction_notices
        return ClusterSnapshot(
            time_s=snapshot.time_s,
            tasks=snapshot.tasks,
            jobs=snapshot.jobs,
            instances=tuple(
                state
                for state in snapshot.instances
                if state.instance_id not in doomed
            ),
        )


def make_eva_variant(
    catalog: Sequence[InstanceType],
    variant: str = "eva",
    delay_model: DelayModel | None = None,
) -> EvaScheduler:
    """Factory for the named Eva variants used in the evaluation."""
    variants = {
        "eva": EvaConfig(),
        "eva-tnrp": EvaConfig(),
        "eva-rp": EvaConfig(interference_aware=False),
        "eva-single": EvaConfig(multi_task_aware=False),
        "eva-full-only": EvaConfig(enable_partial=False),
        "eva-partial-only": EvaConfig(enable_full=False),
    }
    key = variant.lower()
    if key not in variants:
        raise KeyError(f"unknown Eva variant {variant!r}; known: {sorted(variants)}")
    name_map = {
        "eva": "Eva",
        "eva-tnrp": "Eva-TNRP",
        "eva-rp": "Eva-RP",
        "eva-single": "Eva-Single",
        "eva-full-only": "Eva-Full-only",
        "eva-partial-only": "Eva-Partial-only",
    }
    return EvaScheduler(
        catalog, config=variants[key], delay_model=delay_model, name=name_map[key]
    )
