"""Eva's core contribution: reservation-price scheduling (§4).

Also hosts the central scheduler registry: every evaluation scheduler
(Eva and its ablation variants plus the four baselines) is constructible
from a plain string name, so batch scenarios (:mod:`repro.sim.batch`)
stay picklable across process boundaries.
"""

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.ensemble import (
    EnsemblePolicy,
    PoissonEventEstimator,
    ReconfigDecision,
    mean_time_to_full_reconfig_hours,
    migration_cost,
    provisioning_saving,
)
from repro.core.evaluation import (
    AssignmentEvaluator,
    PackState,
    RPEvaluator,
    TNRPCaches,
    TNRPEvaluator,
)
from repro.core.full_reconfig import (
    PackedInstance,
    PackMemo,
    configuration_cost,
    full_reconfiguration,
    match_existing_instances,
    packing_summary,
)
from repro.core.heterogeneous import (
    FamilySpeedProfile,
    HeterogeneousEvaluator,
    HeterogeneousRPCalculator,
    heterogeneous_full_reconfiguration,
)
from repro.core.deadline import (
    DeadlineAwareEvaScheduler,
    DeadlineConfig,
    DeadlineTNRPEvaluator,
)
from repro.core.failure import (
    FailureAwareConfig,
    FailureAwareEvaScheduler,
    HazardTNRPEvaluator,
)
from repro.core.ilp import ILPResult, ilp_schedule
from repro.core.market import (
    MarketAwareEvaScheduler,
    MarketPolicyConfig,
)
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.monitor import ThroughputMonitor
from repro.core.partial_reconfig import (
    PartialReconfigResult,
    partial_reconfiguration,
)
from repro.core.protocol import (
    Action,
    AssignTask,
    ClusterEnvironment,
    DeadlineApproaching,
    Decision,
    InstanceFailed,
    JobArrived,
    JobFinished,
    LaunchInstance,
    MigrateTask,
    Observation,
    PoolExhausted,
    PriceChanged,
    ProtocolError,
    SpotEvictionNotice,
    StragglerReport,
    TerminateInstance,
    ThroughputReport,
    UnassignTask,
    count_job_events,
    diff_target,
    replay_decision,
    throughput_reports,
)
from repro.core.reservation_price import (
    InfeasibleTaskError,
    ReservationPriceCalculator,
    no_packing_cost,
)
from repro.core.scheduler import (
    EvaConfig,
    EvaScheduler,
    EvictionAwareEvaScheduler,
    make_eva_variant,
)
from repro.core.throughput_table import (
    DEFAULT_PAIRWISE_TPUT,
    CoLocationThroughputTable,
    TaskPlacementObservation,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cloud.delays import DelayModel
    from repro.cluster.instance import InstanceType
    from repro.interference.model import InterferenceModel

#: Signature every registry factory implements: catalog plus the two
#: optional environment models (schedulers ignore what they don't use).
SchedulerFactoryFn = Callable[..., Scheduler]

_SCHEDULER_REGISTRY: dict[str, SchedulerFactoryFn] = {}


def _canonical_scheduler_name(name: str) -> str:
    """Normalize a scheduler name: case-insensitive, ``_``/space == ``-``."""
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def register_scheduler(name: str, factory: SchedulerFactoryFn) -> None:
    """Register ``factory`` under ``name`` (canonicalized).

    Factories are called as ``factory(catalog, interference=..., delay_model=...)``
    and must return a fresh :class:`Scheduler` (the evaluation schedulers
    are stateful learners, so instances are never shared between runs).
    """
    key = _canonical_scheduler_name(name)
    if not key:
        raise ValueError("scheduler name must be non-empty")
    _SCHEDULER_REGISTRY[key] = factory


def scheduler_names() -> tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(_SCHEDULER_REGISTRY))


def make_scheduler(
    name: str,
    catalog: "Sequence[InstanceType]",
    interference: "InterferenceModel | None" = None,
    delay_model: "DelayModel | None" = None,
) -> Scheduler:
    """Construct a fresh scheduler from its registry name.

    ``interference`` is the ground-truth co-location profile; per §6.1 it
    is provided exclusively to Owl (the other schedulers learn from
    throughput reports).  ``delay_model`` reaches Eva's migration-aware
    ensemble.
    """
    key = _canonical_scheduler_name(name)
    try:
        factory = _SCHEDULER_REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; registered: {', '.join(scheduler_names())}"
        ) from None
    return factory(catalog, interference=interference, delay_model=delay_model)


def _make_no_packing(catalog, interference=None, delay_model=None) -> Scheduler:
    from repro.baselines.no_packing import NoPackingScheduler

    return NoPackingScheduler(catalog)


def _make_stratus(catalog, interference=None, delay_model=None) -> Scheduler:
    from repro.baselines.stratus import StratusScheduler

    return StratusScheduler(catalog)


def _make_synergy(catalog, interference=None, delay_model=None) -> Scheduler:
    from repro.baselines.synergy import SynergyScheduler

    return SynergyScheduler(catalog)


def _make_owl(catalog, interference=None, delay_model=None) -> Scheduler:
    from repro.baselines.owl import OwlScheduler
    from repro.interference.model import InterferenceModel

    return OwlScheduler(catalog, profile=interference or InterferenceModel())


def _eva_variant_factory(variant: str) -> SchedulerFactoryFn:
    def factory(catalog, interference=None, delay_model=None) -> Scheduler:
        return make_eva_variant(catalog, variant, delay_model=delay_model)

    return factory


def _make_eviction_aware(catalog, interference=None, delay_model=None) -> Scheduler:
    return EvictionAwareEvaScheduler(catalog, delay_model=delay_model)


def _make_deadline_aware(catalog, interference=None, delay_model=None) -> Scheduler:
    return DeadlineAwareEvaScheduler(catalog, delay_model=delay_model)


def _make_failure_aware(catalog, interference=None, delay_model=None) -> Scheduler:
    return FailureAwareEvaScheduler(catalog, delay_model=delay_model)


def _make_market_aware(catalog, interference=None, delay_model=None) -> Scheduler:
    return MarketAwareEvaScheduler(catalog, delay_model=delay_model)


register_scheduler("eva-eviction-aware", _make_eviction_aware)
register_scheduler("eva-deadline", _make_deadline_aware)
register_scheduler("eva-failure", _make_failure_aware)
register_scheduler("eva-market", _make_market_aware)
register_scheduler("no-packing", _make_no_packing)
register_scheduler("stratus", _make_stratus)
register_scheduler("synergy", _make_synergy)
register_scheduler("owl", _make_owl)
for _variant in (
    "eva",
    "eva-tnrp",
    "eva-rp",
    "eva-single",
    "eva-full-only",
    "eva-partial-only",
):
    register_scheduler(_variant, _eva_variant_factory(_variant))
del _variant

__all__ = [
    "EnsemblePolicy",
    "PoissonEventEstimator",
    "ReconfigDecision",
    "mean_time_to_full_reconfig_hours",
    "migration_cost",
    "provisioning_saving",
    "AssignmentEvaluator",
    "PackState",
    "RPEvaluator",
    "TNRPCaches",
    "TNRPEvaluator",
    "PackMemo",
    "PackedInstance",
    "configuration_cost",
    "full_reconfiguration",
    "match_existing_instances",
    "packing_summary",
    "FamilySpeedProfile",
    "HeterogeneousEvaluator",
    "HeterogeneousRPCalculator",
    "heterogeneous_full_reconfiguration",
    "ILPResult",
    "ilp_schedule",
    "JobThroughputReport",
    "Scheduler",
    "ThroughputMonitor",
    "PartialReconfigResult",
    "partial_reconfiguration",
    "InfeasibleTaskError",
    "ReservationPriceCalculator",
    "no_packing_cost",
    "EvaConfig",
    "EvaScheduler",
    "EvictionAwareEvaScheduler",
    "DeadlineAwareEvaScheduler",
    "DeadlineConfig",
    "DeadlineTNRPEvaluator",
    "FailureAwareConfig",
    "FailureAwareEvaScheduler",
    "HazardTNRPEvaluator",
    "MarketAwareEvaScheduler",
    "MarketPolicyConfig",
    "make_eva_variant",
    "Action",
    "AssignTask",
    "ClusterEnvironment",
    "DeadlineApproaching",
    "Decision",
    "InstanceFailed",
    "JobArrived",
    "JobFinished",
    "LaunchInstance",
    "MigrateTask",
    "Observation",
    "PoolExhausted",
    "PriceChanged",
    "ProtocolError",
    "SpotEvictionNotice",
    "StragglerReport",
    "TerminateInstance",
    "ThroughputReport",
    "UnassignTask",
    "count_job_events",
    "diff_target",
    "replay_decision",
    "throughput_reports",
    "DEFAULT_PAIRWISE_TPUT",
    "CoLocationThroughputTable",
    "TaskPlacementObservation",
    "SchedulerFactoryFn",
    "register_scheduler",
    "scheduler_names",
    "make_scheduler",
]
