"""Eva's core contribution: reservation-price scheduling (§4)."""

from repro.core.ensemble import (
    EnsemblePolicy,
    PoissonEventEstimator,
    ReconfigDecision,
    mean_time_to_full_reconfig_hours,
    migration_cost,
    provisioning_saving,
)
from repro.core.evaluation import (
    AssignmentEvaluator,
    PackState,
    RPEvaluator,
    TNRPEvaluator,
)
from repro.core.full_reconfig import (
    PackedInstance,
    configuration_cost,
    full_reconfiguration,
    match_existing_instances,
    packing_summary,
)
from repro.core.heterogeneous import (
    FamilySpeedProfile,
    HeterogeneousEvaluator,
    HeterogeneousRPCalculator,
    heterogeneous_full_reconfiguration,
)
from repro.core.ilp import ILPResult, ilp_schedule
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.monitor import ThroughputMonitor
from repro.core.partial_reconfig import (
    PartialReconfigResult,
    partial_reconfiguration,
)
from repro.core.reservation_price import (
    InfeasibleTaskError,
    ReservationPriceCalculator,
    no_packing_cost,
)
from repro.core.scheduler import EvaConfig, EvaScheduler, make_eva_variant
from repro.core.throughput_table import (
    DEFAULT_PAIRWISE_TPUT,
    CoLocationThroughputTable,
    TaskPlacementObservation,
)

__all__ = [
    "EnsemblePolicy",
    "PoissonEventEstimator",
    "ReconfigDecision",
    "mean_time_to_full_reconfig_hours",
    "migration_cost",
    "provisioning_saving",
    "AssignmentEvaluator",
    "PackState",
    "RPEvaluator",
    "TNRPEvaluator",
    "PackedInstance",
    "configuration_cost",
    "full_reconfiguration",
    "match_existing_instances",
    "packing_summary",
    "FamilySpeedProfile",
    "HeterogeneousEvaluator",
    "HeterogeneousRPCalculator",
    "heterogeneous_full_reconfiguration",
    "ILPResult",
    "ilp_schedule",
    "JobThroughputReport",
    "Scheduler",
    "ThroughputMonitor",
    "PartialReconfigResult",
    "partial_reconfiguration",
    "InfeasibleTaskError",
    "ReservationPriceCalculator",
    "no_packing_cost",
    "EvaConfig",
    "EvaScheduler",
    "make_eva_variant",
    "DEFAULT_PAIRWISE_TPUT",
    "CoLocationThroughputTable",
    "TaskPlacementObservation",
]
