"""Full Reconfiguration — Algorithm 1 (§4.2).

The algorithm generalizes the classic variable-sized-bin-packing heuristic
(largest bins, largest balls first) to multi-dimensional resources by
ranking instance types by hourly cost and tasks by (throughput-normalized)
reservation price:

1. Iterate instance types in descending cost.
2. For each type, repeatedly open a new instance and greedily add the
   unassigned task maximizing the set's value ``RP(T ∪ {τ})`` while it
   fits; stop early if adding the best candidate *decreases* the value
   (possible under TNRP with severe interference — lines 9–11).
3. Accept the instance iff the final set's value covers the instance's
   hourly cost (the cost-efficiency criterion, line 14); otherwise return
   the tasks and move to the next cheaper type.

Every accepted assignment is therefore cost-efficient by construction, and
(under plain RP) the resulting configuration never costs more per hour
than No-Packing.

``group_identical=True`` evaluates the argmax over one representative per
group of interchangeable tasks (same workload, demand signature, and — for
the multi-task-aware evaluator — job arity), reducing the paper's
O(|T|²) scan to roughly O(|T|·|groups|) without changing results;
``group_identical=False`` restores the faithful per-task scan (both are
measured in the Table 5 bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.cluster.instance import Instance, InstanceType, fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.task import Task
from repro.core.evaluation import AssignmentEvaluator

_EPS = 1e-9


@dataclass(frozen=True)
class PackedInstance:
    """One instance of the output configuration with its task set."""

    instance: Instance
    tasks: tuple[Task, ...]

    @property
    def instance_type(self) -> InstanceType:
        return self.instance.instance_type

    @property
    def hourly_cost(self) -> float:
        return self.instance.hourly_cost

    def task_ids(self) -> frozenset[str]:
        return frozenset(t.task_id for t in self.tasks)


class _TaskPool:
    """Unassigned tasks, bucketed into interchangeable groups.

    Groups are ordered deterministically; tasks inside a group are stacks
    sorted by task id, so runs are reproducible.
    """

    def __init__(self, tasks: Iterable[Task], evaluator: AssignmentEvaluator,
                 group_identical: bool):
        self._evaluator = evaluator
        buckets: dict[tuple, list[Task]] = {}
        for task in sorted(tasks, key=lambda t: t.task_id, reverse=True):
            key = (
                evaluator.group_key(task)
                if group_identical
                else (task.task_id,)
            )
            buckets.setdefault(key, []).append(task)
        self._buckets = dict(sorted(buckets.items(), key=lambda kv: kv[0]))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def is_empty(self) -> bool:
        return not self._buckets

    def representatives(self) -> list[Task]:
        """One candidate task per non-empty group."""
        return [bucket[-1] for bucket in self._buckets.values()]

    def pop(self, task: Task) -> Task:
        key = next(k for k, b in self._buckets.items() if b and b[-1] is task)
        bucket = self._buckets[key]
        popped = bucket.pop()
        if not bucket:
            del self._buckets[key]
        return popped

    def push_back(self, tasks: Sequence[Task], group_identical: bool) -> None:
        for task in tasks:
            key = (
                self._evaluator.group_key(task)
                if group_identical
                else (task.task_id,)
            )
            self._buckets.setdefault(key, []).append(task)
        self._buckets = dict(sorted(self._buckets.items(), key=lambda kv: kv[0]))


def _pack_one_instance(
    itype: InstanceType,
    pool: _TaskPool,
    evaluator: AssignmentEvaluator,
) -> tuple[list[Task], float]:
    """Greedy inner loop of Algorithm 1 (lines 6–13) for one instance."""
    chosen: list[Task] = []
    state = evaluator.make_state()
    remaining = itype.capacity
    family = itype.family
    while True:
        best_task: Task | None = None
        best_value = -float("inf")
        for candidate in pool.representatives():
            if not candidate.demand_for(family).fits_within(remaining):
                continue
            value = state.value_with(candidate)
            rank = (value, evaluator.task_rp(candidate), candidate.task_id)
            if best_task is None or rank > (
                best_value,
                evaluator.task_rp(best_task),
                best_task.task_id,
            ):
                best_task, best_value = candidate, value
        if best_task is None:
            break  # nothing fits (line 7 exit)
        if best_value < state.value - _EPS:
            break  # lines 9–11: adding would reduce the set's value
        pool.pop(best_task)
        state.add(best_task)
        chosen.append(best_task)
        remaining = remaining - best_task.demand_for(family)
    return chosen, state.value


def full_reconfiguration(
    tasks: Sequence[Task],
    instance_types: Sequence[InstanceType],
    evaluator: AssignmentEvaluator,
    group_identical: bool = True,
    cost_margin: float = 0.0,
) -> list[PackedInstance]:
    """Run Algorithm 1 over ``tasks`` and return the packed configuration.

    Every task appears in exactly one returned instance (each task is
    cost-efficient standalone on its reservation-price type, so the
    algorithm always terminates with a complete assignment).

    ``cost_margin`` is the JCT-aware extension the paper leaves as future
    work (§6.3): multi-task co-locations must beat the instance cost by
    the margin (value ≥ cost · (1 + margin)), trading some packing — and
    its throughput loss — for shorter JCTs.  Standalone placements are
    exempt so every task remains placeable at its reservation-price type.
    """
    if cost_margin < 0:
        raise ValueError("cost_margin must be >= 0")
    pool = _TaskPool(tasks, evaluator, group_identical)
    types_desc = sorted(
        (it for it in instance_types if not it.is_ghost),
        key=lambda it: (-it.hourly_cost, it.name),
    )
    packed: list[PackedInstance] = []
    for itype in types_desc:
        while not pool.is_empty():
            chosen, value = _pack_one_instance(itype, pool, evaluator)
            threshold = itype.hourly_cost * (
                1.0 + (cost_margin if len(chosen) > 1 else 0.0)
            )
            if chosen and value >= threshold - _EPS:
                packed.append(
                    PackedInstance(
                        instance=fresh_instance(itype), tasks=tuple(chosen)
                    )
                )
            elif (
                len(chosen) > 1
                and cost_margin > 0
                and value >= itype.hourly_cost - _EPS
                and evaluator.set_value([chosen[0]]) >= itype.hourly_cost - _EPS
            ):
                # The margin (not cost-efficiency) blocked this
                # co-location; place the anchor standalone so tasks whose
                # only feasible type is this one are never stranded.
                packed.append(
                    PackedInstance(
                        instance=fresh_instance(itype), tasks=(chosen[0],)
                    )
                )
                pool.push_back(chosen[1:], group_identical)
            else:
                # Line 17: not cost-efficient on this type; put the tasks
                # back and move to the next cheaper type.
                pool.push_back(chosen, group_identical)
                break
        if pool.is_empty():
            break
    if not pool.is_empty():
        leftover = [t.task_id for t in pool.representatives()]
        raise RuntimeError(
            f"{len(pool)} task(s) could not be packed (e.g. {leftover[:3]}); "
            "is some task infeasible on every instance type?"
        )
    return packed


def configuration_cost(packed: Sequence[PackedInstance]) -> float:
    """Hourly provisioning cost of a packed configuration."""
    return sum(p.hourly_cost for p in packed)


def match_existing_instances(
    packed: Sequence[PackedInstance],
    existing: Sequence[tuple[Instance, frozenset[str]]],
) -> list[PackedInstance]:
    """Relabel packed instances with existing instance ids where possible.

    Full Reconfiguration plans instances abstractly; when the plan calls
    for an instance type that is already provisioned, reusing the live
    instance avoids a spurious terminate+launch and reduces migrations.
    For each type, packed instances are matched to live instances of the
    same type by descending task-set overlap.
    """
    by_type: dict[str, list[tuple[Instance, frozenset[str]]]] = {}
    for inst, task_ids in existing:
        by_type.setdefault(inst.instance_type.name, []).append((inst, task_ids))

    relabelled: list[PackedInstance] = []
    for pi in sorted(
        packed, key=lambda p: (-p.hourly_cost, -len(p.tasks), p.instance.instance_id)
    ):
        candidates = by_type.get(pi.instance_type.name)
        if not candidates:
            relabelled.append(pi)
            continue
        want = pi.task_ids()
        best_idx = max(
            range(len(candidates)),
            key=lambda i: (len(candidates[i][1] & want), candidates[i][0].instance_id),
        )
        live_instance, _ = candidates.pop(best_idx)
        if not candidates:
            del by_type[pi.instance_type.name]
        relabelled.append(PackedInstance(instance=live_instance, tasks=pi.tasks))
    return relabelled


def instances_by_type(
    existing: Mapping[str, Sequence[Instance]] | None,
) -> dict[str, list[Instance]]:
    """Normalize an optional reusable-instance mapping (helper for callers)."""
    if existing is None:
        return {}
    return {k: list(v) for k, v in existing.items()}


def packing_summary(packed: Sequence[PackedInstance]) -> dict[str, float]:
    """Quick aggregate stats used by tests and reports."""
    num_tasks = sum(len(p.tasks) for p in packed)
    return {
        "instances": float(len(packed)),
        "tasks": float(num_tasks),
        "hourly_cost": configuration_cost(packed),
        "tasks_per_instance": num_tasks / len(packed) if packed else 0.0,
    }


def total_demand(tasks: Iterable[Task], family: str) -> ResourceVector:
    """Summed family-specific demand — handy for capacity sanity checks."""
    return ResourceVector.sum(t.demand_for(family) for t in tasks)
