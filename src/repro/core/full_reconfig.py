"""Full Reconfiguration — Algorithm 1 (§4.2).

The algorithm generalizes the classic variable-sized-bin-packing heuristic
(largest bins, largest balls first) to multi-dimensional resources by
ranking instance types by hourly cost and tasks by (throughput-normalized)
reservation price:

1. Iterate instance types in descending cost.
2. For each type, repeatedly open a new instance and greedily add the
   unassigned task maximizing the set's value ``RP(T ∪ {τ})`` while it
   fits; stop early if adding the best candidate *decreases* the value
   (possible under TNRP with severe interference — lines 9–11).
3. Accept the instance iff the final set's value covers the instance's
   hourly cost (the cost-efficiency criterion, line 14); otherwise return
   the tasks and move to the next cheaper type.

Every accepted assignment is therefore cost-efficient by construction, and
(under plain RP) the resulting configuration never costs more per hour
than No-Packing.

``group_identical=True`` evaluates the argmax over one representative per
group of interchangeable tasks (same workload, demand signature, and — for
the multi-task-aware evaluator — job arity), reducing the paper's
O(|T|²) scan to roughly O(|T|·|groups|) without changing results;
``group_identical=False`` restores the faithful per-task scan (both are
measured in the Table 5 bench).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.cluster.instance import Instance, InstanceType, fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.task import Task
from repro.core import pack_kernel
from repro.core.evaluation import AssignmentEvaluator

_EPS = 1e-9


@dataclass(frozen=True)
class PackedInstance:
    """One instance of the output configuration with its task set."""

    instance: Instance
    tasks: tuple[Task, ...]

    @property
    def instance_type(self) -> InstanceType:
        return self.instance.instance_type

    @property
    def hourly_cost(self) -> float:
        return self.instance.hourly_cost

    def task_ids(self) -> frozenset[str]:
        return frozenset(t.task_id for t in self.tasks)


class _TaskPool:
    """Unassigned tasks, bucketed into interchangeable groups.

    Groups are ordered deterministically (ascending group key, maintained
    incrementally with bisect instead of re-sorting on every mutation);
    tasks inside a group are stacks sorted by task id, so runs are
    reproducible.  ``pop`` resolves the bucket by the task's group key in
    O(1) instead of scanning every bucket.
    """

    def __init__(self, tasks: Iterable[Task], evaluator: AssignmentEvaluator,
                 group_identical: bool):
        self._evaluator = evaluator
        self._group_identical = group_identical
        self._key_by_id: dict[str, tuple] = {}
        buckets: dict[tuple, list[Task]] = {}
        size = 0
        for task in sorted(tasks, key=lambda t: t.task_id, reverse=True):
            buckets.setdefault(self._key(task), []).append(task)
            size += 1
        self._buckets = buckets
        self._ordered_keys = sorted(buckets)
        self._size = size
        #: Mutation counter backing the fingerprint cache: Algorithm 1
        #: fingerprints the pool once per (type, state) pack attempt, and
        #: consecutive attempts over an unmutated pool reuse the tuple.
        self._rev = 0
        self._fp_rev = -1
        self._fp: tuple = ()
        #: Per-type restricted fingerprints (type name → (rev, fp)) and
        #: per-(group, family) demand triples backing them.
        self._fp_by_type: dict[str, tuple[int, tuple]] = {}
        self._demand_by_key: dict[tuple, tuple[float, float, float]] = {}

    def _key(self, task: Task) -> tuple:
        key = self._key_by_id.get(task.task_id)
        if key is None:
            key = (
                self._evaluator.group_key(task)
                if self._group_identical
                else (task.task_id,)
            )
            self._key_by_id[task.task_id] = key
        return key

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return self._size == 0

    def representatives(self) -> list[Task]:
        """One candidate task per non-empty group."""
        buckets = self._buckets
        return [buckets[key][-1] for key in self._ordered_keys]

    def pop(self, task: Task) -> Task:
        key = self._key(task)
        bucket = self._buckets.get(key)
        if bucket is None or bucket[-1] is not task:
            raise KeyError(
                f"task {task.task_id} is not a current representative"
            )
        popped = bucket.pop()
        self._size -= 1
        self._rev += 1
        if not bucket:
            del self._buckets[key]
            del self._ordered_keys[bisect_left(self._ordered_keys, key)]
        return popped

    def push_back(self, tasks: Sequence[Task]) -> None:
        self._rev += 1
        for task in tasks:
            key = self._key(task)
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [task]
                insort(self._ordered_keys, key)
            else:
                bucket.append(task)
            self._size += 1

    def fingerprint(self) -> tuple:
        """Hashable snapshot of the pool's full decision-relevant state.

        Captures group order AND per-bucket task-id stack order — the
        greedy argmax tie-breaks on task id, so two pools pack
        identically iff their fingerprints match (given the same
        evaluator state).
        """
        if self._fp_rev != self._rev:
            buckets = self._buckets
            self._fp = tuple(
                (key, tuple(t.task_id for t in buckets[key]))
                for key in self._ordered_keys
            )
            self._fp_rev = self._rev
        return self._fp

    def fingerprint_for(self, itype: InstanceType) -> tuple:
        """Fingerprint restricted to groups feasible on an empty ``itype``.

        A group whose demand exceeds the type's full capacity can never
        be chosen by the greedy scan (remaining capacity only shrinks),
        so it cannot influence the pack outcome or the pop sequence —
        two pools that agree on their feasible groups pack identically
        on this type.  Feasibility mirrors :class:`_ArgmaxScan`'s test
        (same ``_EPS`` slack) at full capacity.  All tasks in a group
        share a demand signature, so the representative's demand decides
        for the whole bucket.
        """
        cached = self._fp_by_type.get(itype.name)
        if cached is not None and cached[0] == self._rev:
            return cached[1]
        cap = itype.capacity
        family = itype.family
        max_g = cap.gpus + _EPS
        max_c = cap.cpus + _EPS
        max_r = cap.ram_gb + _EPS
        demands = self._demand_by_key
        buckets = self._buckets
        parts = []
        for key in self._ordered_keys:
            bucket = buckets[key]
            dkey = (key, family)
            d = demands.get(dkey)
            if d is None:
                vec = bucket[-1].demand_for(family)
                d = (vec.gpus, vec.cpus, vec.ram_gb)
                demands[dkey] = d
            if d[0] > max_g or d[1] > max_c or d[2] > max_r:
                continue
            parts.append((key, tuple(t.task_id for t in bucket)))
        fp = tuple(parts)
        self._fp_by_type[itype.name] = (self._rev, fp)
        return fp

    def drain(self) -> list[Task]:
        """Remove and return every task, in pop order (ascending group
        key, LIFO within each bucket) — what repeated
        ``pop(representatives()[0])`` would produce, without the per-pop
        representative rebuild."""
        drained: list[Task] = []
        for key in self._ordered_keys:
            drained.extend(reversed(self._buckets[key]))
        self._buckets = {}
        self._ordered_keys = []
        self._size = 0
        self._rev += 1
        return drained


class _ArgmaxScan:
    """Memoized inner argmax of Algorithm 1 (line 8) for one instance.

    Reused across the iterations of one greedy packing: single-task
    reservation prices and family demands are cached per representative,
    and for delta-stable evaluators (plain RP) each group's ``value_with``
    increment is computed once and reused for the rest of the scan
    instead of re-evaluated against the grown set every iteration.
    Remaining capacity is tracked as three scalars with the same clamped
    arithmetic as ``ResourceVector.__sub__``/``fits_within`` (identical
    feasibility decisions, no per-check vector allocation).  Ranking is
    unchanged: ``(value, RP(τ), task_id)``, descending.
    """

    def __init__(
        self, pool: _TaskPool, evaluator: AssignmentEvaluator, capacity, family: str
    ):
        self._pool = pool
        self._evaluator = evaluator
        self._family = family
        self._rp: dict[str, float] = {}
        self._delta: dict[str, float] = {}
        self._demand: dict[str, tuple[float, float, float]] = {}
        self._gpus = capacity.gpus
        self._cpus = capacity.cpus
        self._ram = capacity.ram_gb

    def charge(self, task: Task) -> None:
        """Deduct ``task``'s demand from the tracked remaining capacity."""
        gpus, cpus, ram = self._demand_of(task)
        # Clamped like ResourceVector.__sub__ so feasibility decisions
        # match the vector arithmetic bit for bit.
        self._gpus = max(0.0, self._gpus - gpus)
        self._cpus = max(0.0, self._cpus - cpus)
        self._ram = max(0.0, self._ram - ram)

    def _demand_of(self, task: Task) -> tuple[float, float, float]:
        demand = self._demand.get(task.task_id)
        if demand is None:
            vec = task.demand_for(self._family)
            demand = (vec.gpus, vec.cpus, vec.ram_gb)
            self._demand[task.task_id] = demand
        return demand

    def best(self, state) -> tuple[Task | None, float]:
        """The feasible candidate maximizing ``value_with``, and its value."""
        evaluator = self._evaluator
        rp_cache = self._rp
        delta_stable = state.delta_stable
        deltas = self._delta
        base = state.value
        max_gpus = self._gpus + _EPS
        max_cpus = self._cpus + _EPS
        max_ram = self._ram + _EPS
        best_task: Task | None = None
        best_rank: tuple[float, float, str] | None = None
        pool = self._pool
        buckets = pool._buckets
        for key in pool._ordered_keys:
            candidate = buckets[key][-1]
            gpus, cpus, ram = self._demand_of(candidate)
            if gpus > max_gpus or cpus > max_cpus or ram > max_ram:
                continue
            task_id = candidate.task_id
            if delta_stable:
                delta = deltas.get(task_id)
                if delta is None:
                    delta = state.delta(candidate)
                    deltas[task_id] = delta
                value = base + delta
            else:
                value = state.value_with(candidate)
            rp = rp_cache.get(task_id)
            if rp is None:
                rp = evaluator.task_rp(candidate)
                rp_cache[task_id] = rp
            rank = (value, rp, task_id)
            if best_rank is None or rank > best_rank:
                best_task, best_rank = candidate, rank
        if best_task is None:
            return None, -float("inf")
        assert best_rank is not None
        return best_task, best_rank[0]


def _make_scan(
    pool: _TaskPool, evaluator: AssignmentEvaluator, capacity, family: str
):
    """Pick the argmax implementation for one pack attempt.

    The vectorized kernel (``EVA_PACK_KERNEL=numpy``, the default) takes
    over when the pool is wide enough for the array setup to pay off;
    both implementations make bit-identical decisions, so the choice is
    pure mechanism (see :mod:`repro.core.pack_kernel`).
    """
    if pack_kernel.should_vectorize(evaluator, len(pool._ordered_keys)):
        return pack_kernel.VectorScan(pool, evaluator, capacity, family)
    return _ArgmaxScan(pool, evaluator, capacity, family)


def _pack_one_instance(
    itype: InstanceType,
    pool: _TaskPool,
    evaluator: AssignmentEvaluator,
    memo: "PackMemo | None" = None,
    token: tuple | None = None,
) -> tuple[list[Task], float]:
    """Greedy inner loop of Algorithm 1 (lines 6–13) for one instance.

    With a ``memo`` and a valid evaluator ``token``, the outcome is
    memoized per ``(token, type, pool fingerprint)``: the greedy scan is
    fully determined by the evaluator state (token), the type's capacity
    and family (its name, within one catalog — and the token embeds the
    catalog), and the pool's group/stack order (fingerprint).  A hit
    replays the recorded pop sequence against the live pool, so pool
    mutations — including the bucket rotation a later ``push_back``
    causes after a rejected pack — are byte-identical to a real scan.
    """
    pack_key: tuple | None = None
    if memo is not None and token is not None:
        pack_key = (token, itype.name, pool.fingerprint_for(itype))
        hit = memo.get_pack(pack_key)
        if hit is not None:
            pop_keys, value = hit
            buckets = pool._buckets
            return [pool.pop(buckets[key][-1]) for key in pop_keys], value
    chosen: list[Task] = []
    pop_keys: list[tuple] = []
    state = evaluator.make_state()
    scan = _make_scan(pool, evaluator, itype.capacity, itype.family)
    while True:
        best_task, best_value = scan.best(state)
        if best_task is None:
            break  # nothing fits (line 7 exit)
        if best_value < state.value - _EPS:
            break  # lines 9–11: adding would reduce the set's value
        if pack_key is not None:
            pop_keys.append(pool._key(best_task))
        pool.pop(best_task)
        state.add(best_task)
        chosen.append(best_task)
        scan.charge(best_task)
    if pack_key is not None:
        memo.put_pack(pack_key, (tuple(pop_keys), state.value))
    return chosen, state.value


class PackMemo:
    """Memoized Algorithm 1 outcomes across scheduling rounds.

    In steady state (no arrivals, completions, or throughput-table
    changes between rounds) Full Reconfiguration re-derives the *same*
    packing every period from bit-identical inputs.  The memo keys on the
    pool fingerprint plus the evaluator's :meth:`cache_token` and returns
    the abstract packing (instance type + task tuple per instance); the
    caller re-mints instance ids with :func:`fresh_instance` in packing
    order, so the global id counter advances exactly as a real run and
    results stay byte-identical.  Entries are dropped wholesale when the
    memo exceeds its cap (steady-state reuse is between consecutive
    rounds, so a small cap suffices).
    """

    __slots__ = ("_entries", "max_entries", "_packs", "max_pack_entries")

    def __init__(self, max_entries: int = 64, max_pack_entries: int = 8192):
        self._entries: dict[tuple, tuple] = {}
        self.max_entries = max_entries
        #: Inner-loop memo: one entry per (token, type, pool fingerprint)
        #: pack attempt — see :func:`_pack_one_instance`.  Entries are a
        #: (pop-key sequence, value) pair, a few machine words each, so
        #: the cap is generous.
        self._packs: dict[tuple, tuple] = {}
        self.max_pack_entries = max_pack_entries

    def get(self, key: tuple) -> tuple | None:
        return self._entries.get(key)

    def put(self, key: tuple, value: tuple) -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = value

    def get_pack(self, key: tuple) -> tuple | None:
        return self._packs.get(key)

    def put_pack(self, key: tuple, entry: tuple) -> None:
        if len(self._packs) >= self.max_pack_entries:
            self._packs.clear()
        self._packs[key] = entry


def full_reconfiguration(
    tasks: Sequence[Task],
    instance_types: Sequence[InstanceType],
    evaluator: AssignmentEvaluator,
    group_identical: bool = True,
    cost_margin: float = 0.0,
    memo: PackMemo | None = None,
) -> list[PackedInstance]:
    """Run Algorithm 1 over ``tasks`` and return the packed configuration.

    Every task appears in exactly one returned instance (each task is
    cost-efficient standalone on its reservation-price type, so the
    algorithm always terminates with a complete assignment).

    ``cost_margin`` is the JCT-aware extension the paper leaves as future
    work (§6.3): multi-task co-locations must beat the instance cost by
    the margin (value ≥ cost · (1 + margin)), trading some packing — and
    its throughput loss — for shorter JCTs.  Standalone placements are
    exempt so every task remains placeable at its reservation-price type.

    ``memo`` optionally reuses identical packings across calls (see
    :class:`PackMemo`); it only engages when the evaluator reports a
    valid :meth:`~AssignmentEvaluator.cache_token`.
    """
    if cost_margin < 0:
        raise ValueError("cost_margin must be >= 0")
    pool = _TaskPool(tasks, evaluator, group_identical)
    memo_key: tuple | None = None
    token: tuple | None = None
    if memo is not None:
        token = evaluator.cache_token()
        if token is not None:
            memo_key = (
                token,
                cost_margin,
                group_identical,
                tuple(it.name for it in instance_types),
                pool.fingerprint(),
            )
            cached = memo.get(memo_key)
            if cached is not None:
                return [
                    PackedInstance(
                        instance=fresh_instance(itype), tasks=packed_tasks
                    )
                    for itype, packed_tasks in cached
                ]
    types_desc = sorted(
        (it for it in instance_types if not it.is_ghost),
        key=lambda it: (-it.hourly_cost, it.name),
    )
    packed: list[PackedInstance] = []
    for itype in types_desc:
        while not pool.is_empty():
            chosen, value = _pack_one_instance(
                itype, pool, evaluator, memo=memo, token=token
            )
            threshold = itype.hourly_cost * (
                1.0 + (cost_margin if len(chosen) > 1 else 0.0)
            )
            if chosen and value >= threshold - _EPS:
                packed.append(
                    PackedInstance(
                        instance=fresh_instance(itype), tasks=tuple(chosen)
                    )
                )
            elif (
                len(chosen) > 1
                and cost_margin > 0
                and value >= itype.hourly_cost - _EPS
                and evaluator.set_value([chosen[0]]) >= itype.hourly_cost - _EPS
            ):
                # The margin (not cost-efficiency) blocked this
                # co-location; place the anchor standalone so tasks whose
                # only feasible type is this one are never stranded.
                packed.append(
                    PackedInstance(
                        instance=fresh_instance(itype), tasks=(chosen[0],)
                    )
                )
                pool.push_back(chosen[1:])
            else:
                # Line 17: not cost-efficient on this type; put the tasks
                # back and move to the next cheaper type.
                pool.push_back(chosen)
                break
        if pool.is_empty():
            break
    if not pool.is_empty():
        leftover = [t.task_id for t in pool.representatives()]
        raise RuntimeError(
            f"{len(pool)} task(s) could not be packed (e.g. {leftover[:3]}); "
            "is some task infeasible on every instance type?"
        )
    if memo_key is not None:
        memo.put(
            memo_key, tuple((p.instance_type, p.tasks) for p in packed)
        )
    return packed


def configuration_cost(packed: Sequence[PackedInstance]) -> float:
    """Hourly provisioning cost of a packed configuration."""
    return sum(p.hourly_cost for p in packed)


def match_existing_instances(
    packed: Sequence[PackedInstance],
    existing: Sequence[tuple[Instance, frozenset[str]]],
) -> list[PackedInstance]:
    """Relabel packed instances with existing instance ids where possible.

    Full Reconfiguration plans instances abstractly; when the plan calls
    for an instance type that is already provisioned, reusing the live
    instance avoids a spurious terminate+launch and reduces migrations.
    For each type, packed instances are matched to live instances of the
    same type by descending task-set overlap.
    """
    by_type: dict[str, list[tuple[Instance, frozenset[str]]]] = {}
    for inst, task_ids in existing:
        by_type.setdefault(inst.instance_type.name, []).append((inst, task_ids))

    relabelled: list[PackedInstance] = []
    for pi in sorted(
        packed, key=lambda p: (-p.hourly_cost, -len(p.tasks), p.instance.instance_id)
    ):
        candidates = by_type.get(pi.instance_type.name)
        if not candidates:
            relabelled.append(pi)
            continue
        want = pi.task_ids()
        best_idx = max(
            range(len(candidates)),
            key=lambda i: (len(candidates[i][1] & want), candidates[i][0].instance_id),
        )
        live_instance, _ = candidates.pop(best_idx)
        if not candidates:
            del by_type[pi.instance_type.name]
        relabelled.append(PackedInstance(instance=live_instance, tasks=pi.tasks))
    return relabelled


def instances_by_type(
    existing: Mapping[str, Sequence[Instance]] | None,
) -> dict[str, list[Instance]]:
    """Normalize an optional reusable-instance mapping (helper for callers)."""
    if existing is None:
        return {}
    return {k: list(v) for k, v in existing.items()}


def packing_summary(packed: Sequence[PackedInstance]) -> dict[str, float]:
    """Quick aggregate stats used by tests and reports."""
    num_tasks = sum(len(p.tasks) for p in packed)
    return {
        "instances": float(len(packed)),
        "tasks": float(num_tasks),
        "hourly_cost": configuration_cost(packed),
        "tasks_per_instance": num_tasks / len(packed) if packed else 0.0,
    }


def total_demand(tasks: Iterable[Task], family: str) -> ResourceVector:
    """Summed family-specific demand — handy for capacity sanity checks."""
    return ResourceVector.sum(t.demand_for(family) for t in tasks)
