"""Scheduler interface and throughput-report types.

Every scheduler — Eva and the four baselines — implements the same
contract: consume a :class:`~repro.cluster.state.ClusterSnapshot`, return a
:class:`~repro.cluster.state.TargetConfiguration`.  Interference-aware
schedulers additionally receive per-job throughput reports collected by the
workers (§5: the worker queries each job's ``EvaIterator`` and reports to
the master every scheduling round).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.state import ClusterSnapshot, TargetConfiguration
from repro.core.throughput_table import TaskPlacementObservation


@dataclass(frozen=True, slots=True)
class JobThroughputReport:
    """One job's observed throughput over the last scheduling window.

    Attributes:
        job_id: The observed job.
        normalized_tput: Job throughput normalized by its standalone
            throughput (1.0 = no degradation).  For multi-task jobs this
            is the straggler-limited job throughput (§4.4).
        placements: Per-task placement context (workload + co-located
            workloads) at observation time.
    """

    job_id: str
    normalized_tput: float
    placements: tuple[TaskPlacementObservation, ...]

    @property
    def is_multi_task(self) -> bool:
        return len(self.placements) > 1


class Scheduler(ABC):
    """Snapshot-in, target-configuration-out scheduling contract (§3)."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "scheduler"

    @abstractmethod
    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        """Decide the cluster configuration for the next period."""

    def on_throughput_reports(self, reports: tuple[JobThroughputReport, ...]) -> None:
        """Ingest throughput observations (no-op for interference-blind
        schedulers)."""
