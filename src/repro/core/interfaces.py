"""Scheduler interface and throughput-report types.

Every scheduler — Eva and the four baselines — drives the cluster
through the typed action/observation protocol
(:mod:`repro.core.protocol`): each round it receives a
:class:`~repro.cluster.state.ClusterSnapshot` plus the round's typed
observations and returns a :class:`~repro.core.protocol.Decision` (an
ordered action bundle).  Legacy schedulers keep implementing the
classic §3 contract — snapshot in,
:class:`~repro.cluster.state.TargetConfiguration` out — via
:meth:`Scheduler.schedule`; the default :meth:`Scheduler.decide` routes
them through the :func:`~repro.core.protocol.diff_target` shim, which
is byte-identical to the pre-protocol apply paths.  Protocol-native
policies override :meth:`decide` (or the :meth:`observe` hook) and emit
actions directly.

Interference-aware schedulers receive per-job throughput reports (§5:
the worker queries each job's ``EvaIterator`` and reports to the master
every scheduling round) — on the wire these are
:class:`~repro.core.protocol.ThroughputReport` observations, unwrapped
by the default ``decide`` into :meth:`Scheduler.on_throughput_reports`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.state import ClusterSnapshot, TargetConfiguration
from repro.core.protocol import (
    Decision,
    Observation,
    diff_target,
    throughput_reports,
)
from repro.core.throughput_table import TaskPlacementObservation


@dataclass(frozen=True, slots=True)
class JobThroughputReport:
    """One job's observed throughput over the last scheduling window.

    Attributes:
        job_id: The observed job.
        normalized_tput: Job throughput normalized by its standalone
            throughput (1.0 = no degradation).  For multi-task jobs this
            is the straggler-limited job throughput (§4.4).
        placements: Per-task placement context (workload + co-located
            workloads) at observation time.
    """

    job_id: str
    normalized_tput: float
    placements: tuple[TaskPlacementObservation, ...]

    @property
    def is_multi_task(self) -> bool:
        return len(self.placements) > 1


class Scheduler(ABC):
    """The scheduling contract (§3), spoken over the typed protocol.

    Implement :meth:`schedule` (legacy: whole target configuration) or
    override :meth:`decide` (protocol-native: ordered actions).  The
    environment — simulator or runtime master — only ever calls
    :meth:`decide`.
    """

    #: Human-readable name used in reports and experiment tables.
    name: str = "scheduler"

    #: Action vocabulary this scheduler's decisions may contain, or
    #: ``None`` for unconstrained.  Declaring it makes behavioural
    #: contracts machine-checkable (e.g. "reactive baselines never
    #: migrate"): every environment passes it to
    #: :meth:`~repro.core.protocol.Decision.validate` — the runtime
    #: master on every round, the simulator in validate mode.
    action_types: frozenset[type] | None = None

    @abstractmethod
    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        """Decide the cluster configuration for the next period."""

    def on_throughput_reports(self, reports: tuple[JobThroughputReport, ...]) -> None:
        """Ingest throughput observations (no-op for interference-blind
        schedulers)."""

    def observe(self, observations: tuple[Observation, ...]) -> None:
        """Ingest the round's non-throughput observations (default: ignore).

        Hook for policies that react to typed events — job arrivals and
        completions, spot eviction notices, deadline warnings — without
        overriding :meth:`decide` wholesale.
        """

    def decide(
        self,
        snapshot: ClusterSnapshot,
        observations: tuple[Observation, ...] = (),
    ) -> Decision:
        """One scheduling round: observations in, action bundle out.

        The default implementation preserves the legacy call sequence
        exactly — throughput reports first, then :meth:`schedule` — and
        plans the returned target through
        :func:`~repro.core.protocol.diff_target`, so legacy schedulers
        produce byte-identical results through the protocol path.
        """
        self.on_throughput_reports(throughput_reports(observations))
        self.observe(observations)
        return diff_target(snapshot, self.schedule(snapshot))
