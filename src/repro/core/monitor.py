"""ThroughputMonitor (§3, §4.3–§4.4).

The monitor owns the co-location throughput table and translates raw
per-job throughput reports into table updates:

* single-task jobs update their own co-location entry directly;
* multi-task jobs go through the §4.4 attribution rules, which identify a
  single entry (the likely straggler) to update so that recorded values
  remain lower bounds of the truth.

The scheduler reads estimates back through :meth:`tput` when computing
throughput-normalized reservation prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.interfaces import JobThroughputReport
from repro.core.throughput_table import (
    CoLocationThroughputTable,
    TaskPlacementObservation,
)


@dataclass
class ThroughputMonitor:
    """Online interference learning from job throughput reports."""

    table: CoLocationThroughputTable = field(default_factory=CoLocationThroughputTable)
    reports_seen: int = 0
    #: The previous round's report objects and whether ingesting them
    #: left the table untouched — the fixpoint fast path below.
    _last_reports: tuple[JobThroughputReport, ...] = field(
        default=(), repr=False
    )
    _last_was_fixpoint: bool = field(default=False, repr=False)

    def ingest(self, reports: Sequence[JobThroughputReport]) -> None:
        """Apply a round of job throughput reports to the table.

        Fast path: when this round's reports are the *same objects* as
        last round's (steady state — the environment's placements did
        not change) and last round's ingest changed nothing, re-applying
        them is provably a no-op.  A changeless ingest means no entry
        was added (adding always changes a value: ``None != tput``) and
        no value moved, so the table state is identical to the state the
        same reports were just applied to — every §4.4 attribution rule
        takes the same branch and rewrites the same values.
        """
        last = self._last_reports
        if (
            self._last_was_fixpoint
            and len(reports) == len(last)
            and all(a is b for a, b in zip(reports, last))
        ):
            self.reports_seen += len(reports)
            return
        version_before = self.table.version
        for report in reports:
            self.reports_seen += 1
            if report.is_multi_task:
                self.table.observe_multi_task_job(
                    report.placements, report.normalized_tput
                )
            elif report.placements:
                self.table.observe_single_task_job(
                    report.placements[0], report.normalized_tput
                )
        self._last_reports = tuple(reports)
        self._last_was_fixpoint = self.table.version == version_before

    def tput(self, workload: str, neighbours: Sequence[str]) -> float:
        """Estimated normalized throughput for a prospective placement."""
        return self.table.tput(workload, neighbours)

    def observation(
        self, workload: str, neighbours: Sequence[str]
    ) -> TaskPlacementObservation:
        """Convenience constructor for placement observations."""
        return TaskPlacementObservation(
            workload=workload, neighbours=tuple(neighbours)
        )
