"""ThroughputMonitor (§3, §4.3–§4.4).

The monitor owns the co-location throughput table and translates raw
per-job throughput reports into table updates:

* single-task jobs update their own co-location entry directly;
* multi-task jobs go through the §4.4 attribution rules, which identify a
  single entry (the likely straggler) to update so that recorded values
  remain lower bounds of the truth.

The scheduler reads estimates back through :meth:`tput` when computing
throughput-normalized reservation prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.interfaces import JobThroughputReport
from repro.core.throughput_table import (
    CoLocationThroughputTable,
    TaskPlacementObservation,
)


@dataclass
class ThroughputMonitor:
    """Online interference learning from job throughput reports."""

    table: CoLocationThroughputTable = field(default_factory=CoLocationThroughputTable)
    reports_seen: int = 0

    def ingest(self, reports: Sequence[JobThroughputReport]) -> None:
        """Apply a round of job throughput reports to the table."""
        for report in reports:
            self.reports_seen += 1
            if report.is_multi_task:
                self.table.observe_multi_task_job(
                    report.placements, report.normalized_tput
                )
            elif report.placements:
                self.table.observe_single_task_job(
                    report.placements[0], report.normalized_tput
                )

    def tput(self, workload: str, neighbours: Sequence[str]) -> float:
        """Estimated normalized throughput for a prospective placement."""
        return self.table.tput(workload, neighbours)

    def observation(
        self, workload: str, neighbours: Sequence[str]
    ) -> TaskPlacementObservation:
        """Convenience constructor for placement observations."""
        return TaskPlacementObservation(
            workload=workload, neighbours=tuple(neighbours)
        )
