"""Vectorized TNRP/Algorithm-1 packing kernel (§4.2–§4.5).

The greedy inner argmax of Algorithm 1 evaluates every candidate group
("lane") against the instance's tentative task set each iteration.  The
scalar scan (:class:`~repro.core.full_reconfig._ArgmaxScan`) does this
one lane at a time in Python; this module batches the feasibility test
and the (T)NRP evaluation over all lanes as NumPy float64 arrays held in
a :class:`PackArrays` columnar structure, selected via the
``EVA_PACK_KERNEL={scalar,numpy}`` knob.

Bit-identity contract — the kernel must NOT change results:

* Elementwise NumPy float64 ops round exactly like the equivalent Python
  scalar expressions (one IEEE-754 operation per element, no FMA
  contraction), so every lane's value is computed with the *same ops in
  the same order* as the scalar code path it replaces.
* Accumulation over the tentative set's members is member-ordered
  (running vector sums/products, never ``np.sum``/``np.prod``, whose
  pairwise reductions re-associate floats).
* Ranking replicates the scalar ``(value, RP(τ), task_id)`` tuple
  maximum through an exact-equality filter chain: max value, then max
  RP among exact-value ties, then max task id (Python string compare).
* The §4.4 / deadline-urgency formulas are selected per lane exactly as
  the scalar :meth:`~repro.core.evaluation.TNRPEvaluator.tnrp_from_tput`
  branches: single-task lanes use ``tput·RP``, multi-task lanes
  ``RP − (1−tput)·RP(j)``, and ``u≠1`` lanes the urgency escalation
  ``RP − (1−tput)·RP(charge)·u`` — ``u==1`` lanes take the stock branch.
* When the throughput table holds exact entries larger than a pair, the
  member-side sum is *not* pairwise-decomposable; those scalars come
  from the pack state's exact-path scan memo (one table lookup chain per
  distinct candidate workload) and only the per-lane candidate term is
  vectorized.

Lanes hold per-group *representative* scalars.  Groups pin workload,
demand signature, and (for TNRP) job arity and urgency, so a lane's
demand, RP, workload, and urgency survive a pop — but the §4.4 whole-job
charge ``RP(j)`` belongs to the representative's *job* and siblings in a
group can come from different jobs, so :meth:`VectorScan.charge`
refreshes the lane's job charge (and task id) when the representative
changes.

The kernel engages per pack attempt when the lane count reaches
``EVA_PACK_NUMPY_MIN_LANES`` (vector setup has a fixed cost that only
amortizes over wide pools; replay-scale traces hit hundreds of lanes,
the small Table-13 traces stay scalar) and only for the evaluator types
whose value algebra it replicates; everything else falls back to the
scalar scan.  NumPy itself is optional — without it the knob degrades to
``scalar``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.cluster.task import Task
from repro.core.evaluation import (
    AssignmentEvaluator,
    RPEvaluator,
    TNRPEvaluator,
    _TNRPPackState,
)

if TYPE_CHECKING:  # circular at runtime (full_reconfig imports us)
    from numpy.typing import NDArray

    from repro.cluster.resources import ResourceVector
    from repro.core.full_reconfig import _TaskPool

    #: Float64 lane columns; ``NDArray`` only exists for the checker.
    _FloatArray = NDArray[np.float64]
    _BoolArray = NDArray[np.bool_]

__all__ = ["PackArrays", "VectorScan", "kernel_name", "should_vectorize"]

_EPS = 1e-9

#: Default lane-count floor below which vector setup costs more than the
#: scalar scan; tests force 0 to exercise the kernel on tiny pools.
_DEFAULT_MIN_LANES = 32


def kernel_name() -> str:
    """The selected kernel: ``numpy`` (default) or ``scalar``."""
    name = os.environ.get("EVA_PACK_KERNEL", "numpy")
    if name not in ("numpy", "scalar"):
        raise ValueError(
            f"EVA_PACK_KERNEL must be 'scalar' or 'numpy', got {name!r}"
        )
    return name


def _min_lanes() -> int:
    raw = os.environ.get("EVA_PACK_NUMPY_MIN_LANES")
    return _DEFAULT_MIN_LANES if raw is None else int(raw)


def _supported_evaluator(evaluator: AssignmentEvaluator) -> bool:
    """Exact-type check: a subclass may override the value algebra the
    kernel replicates, so only the three known evaluators qualify."""
    t = type(evaluator)
    if t in (RPEvaluator, TNRPEvaluator):
        return True
    # DeadlineTNRPEvaluator lives in repro.core.deadline, which imports
    # the scheduler stack; import lazily to keep this module light.
    from repro.core.deadline import DeadlineTNRPEvaluator

    return t is DeadlineTNRPEvaluator


def should_vectorize(evaluator: AssignmentEvaluator, num_lanes: int) -> bool:
    """Whether a pack attempt with ``num_lanes`` candidate groups should
    run on the vector kernel."""
    return (
        np is not None
        and num_lanes >= _min_lanes()
        and kernel_name() == "numpy"
        and _supported_evaluator(evaluator)
    )


class PackArrays:
    """Columnar lane state for one pack attempt.

    One lane per candidate group of the task pool, aligned with the
    pool's deterministic group order at construction.  Float columns are
    NumPy float64; identity columns (representative task, task id) stay
    Python objects because ranking ties break on string task ids.
    """

    __slots__ = (
        "reps",
        "task_ids",
        "keys",
        "workloads",
        "gpus",
        "cpus",
        "ram",
        "rp",
        "job_rp",
        "multi",
        "urgency",
        "alive",
        "lane_by_key",
    )

    reps: list[Task]
    task_ids: list[str]
    keys: list[Any]
    workloads: list[str]
    gpus: "_FloatArray"
    cpus: "_FloatArray"
    ram: "_FloatArray"
    rp: "_FloatArray"
    job_rp: "_FloatArray | None"
    multi: "_BoolArray | None"
    urgency: "_FloatArray | None"
    alive: "_BoolArray"
    lane_by_key: dict[Any, int]

    def __init__(
        self, pool: "_TaskPool", evaluator: AssignmentEvaluator, family: str
    ) -> None:
        buckets = pool._buckets
        keys = list(pool._ordered_keys)
        reps = [buckets[key][-1] for key in keys]
        n = len(reps)
        self.keys = keys
        self.reps = reps
        self.task_ids = [t.task_id for t in reps]
        self.workloads = [t.workload for t in reps]
        self.lane_by_key = {key: i for i, key in enumerate(keys)}
        gpus = np.empty(n)
        cpus = np.empty(n)
        ram = np.empty(n)
        for i, task in enumerate(reps):
            vec = task.demand_for(family)
            gpus[i] = vec.gpus
            cpus[i] = vec.cpus
            ram[i] = vec.ram_gb
        self.gpus = gpus
        self.cpus = cpus
        self.ram = ram
        self.rp = np.array([evaluator.task_rp(t) for t in reps])
        self.alive = np.ones(n, dtype=bool)
        # §4.4 / urgency columns (TNRP evaluators only).
        if isinstance(evaluator, TNRPEvaluator):
            job_rp = np.empty(n)
            multi = np.empty(n, dtype=bool)
            for i, task in enumerate(reps):
                rp_j = evaluator._job_rp(task)
                multi[i] = rp_j is not None
                job_rp[i] = 0.0 if rp_j is None else rp_j
            self.job_rp = job_rp
            self.multi = multi
            urgency_map = getattr(evaluator, "urgency", None)
            if urgency_map:
                self.urgency = np.array(
                    [urgency_map.get(t.job_id, 1.0) for t in reps]
                )
            else:
                self.urgency = None
        else:
            self.job_rp = None
            self.multi = None
            self.urgency = None

    def refresh_lane(
        self, lane: int, rep: Task, evaluator: AssignmentEvaluator
    ) -> None:
        """Re-point a lane at its group's new representative.

        Workload, demand, RP, and urgency are group invariants; the task
        id and — for TNRP — the whole-job charge are per-task.
        """
        self.reps[lane] = rep
        self.task_ids[lane] = rep.task_id
        if self.job_rp is not None:
            rp_j = evaluator._job_rp(rep)  # type: ignore[attr-defined]
            self.multi[lane] = rp_j is not None
            self.job_rp[lane] = 0.0 if rp_j is None else rp_j

    def tnrp_of(self, tput: "_FloatArray") -> "_FloatArray":
        """Vectorized ``tnrp_from_tput`` over all lanes for per-lane
        throughputs ``tput`` — branch selection and operation order match
        the scalar method exactly."""
        rp = self.rp
        stock = np.where(
            self.multi, rp - (1.0 - tput) * self.job_rp, tput * rp
        )
        u = self.urgency
        if u is None:
            return stock
        charge = np.where(self.multi, self.job_rp, rp)
        escalated = rp - (1.0 - tput) * charge * u
        return np.where(u == 1.0, stock, escalated)


class VectorScan:
    """Drop-in replacement for ``_ArgmaxScan`` running on :class:`PackArrays`.

    Same interface (``best(state)`` / ``charge(task)``), same decisions
    bit for bit — see the module docstring for the equivalence rules.
    """

    __slots__ = (
        "_pool",
        "_evaluator",
        "_family",
        "_arrays",
        "_gpus",
        "_cpus",
        "_ram",
        "_fwd",
        "_bwd",
        "_synced_members",
        "_delta",
    )

    def __init__(
        self,
        pool: "_TaskPool",
        evaluator: AssignmentEvaluator,
        capacity: "ResourceVector",
        family: str,
    ) -> None:
        self._pool = pool
        self._evaluator = evaluator
        self._family = family
        self._arrays = PackArrays(pool, evaluator, family)
        self._gpus = capacity.gpus
        self._cpus = capacity.cpus
        self._ram = capacity.ram_gb
        #: Per already-synced member i: pairwise rows against the lane
        #: workloads — fwd[i][lane] = pairwise(w_member_i, w_lane) scales
        #: the member's throughput, bwd[i][lane] = pairwise(w_lane,
        #: w_member_i) scales the candidate's (argument order matters to
        #: the table).
        self._fwd: list["_FloatArray"] = []
        self._bwd: list["_FloatArray"] = []
        self._synced_members = 0
        self._delta: "_FloatArray | None" = None  # lazy, delta-stable states

    # -- interface shared with _ArgmaxScan ------------------------------
    def charge(self, task: Task) -> None:
        """Deduct demand and refresh the popped task's lane (the caller
        pops from the pool before charging, so the bucket already shows
        the next representative)."""
        arrays = self._arrays
        lane = arrays.lane_by_key.get(self._pool._key(task))
        if lane is not None:
            bucket = self._pool._buckets.get(arrays.keys[lane])
            if bucket:
                arrays.refresh_lane(lane, bucket[-1], self._evaluator)
            else:
                arrays.alive[lane] = False
        # Clamped like ResourceVector.__sub__, mirroring _ArgmaxScan.
        vec = task.demand_for(self._family)
        self._gpus = max(0.0, self._gpus - vec.gpus)
        self._cpus = max(0.0, self._cpus - vec.cpus)
        self._ram = max(0.0, self._ram - vec.ram_gb)

    def best(self, state: Any) -> tuple[Task | None, float]:
        arrays = self._arrays
        feasible = (
            arrays.alive
            & (arrays.gpus <= self._gpus + _EPS)
            & (arrays.cpus <= self._cpus + _EPS)
            & (arrays.ram <= self._ram + _EPS)
        )
        if not feasible.any():
            return None, -float("inf")
        if state.delta_stable:
            values = state.value + self._deltas(state)
        else:
            values = self._tnrp_values(state)
        masked = np.where(feasible, values, -np.inf)
        vmax = masked.max()
        (tied,) = np.nonzero(masked == vmax)
        if len(tied) > 1:
            rp_tied = arrays.rp[tied]
            tied = tied[rp_tied == rp_tied.max()]
            if len(tied) > 1:
                task_ids = arrays.task_ids
                lane = max(tied, key=lambda i: task_ids[i])
            else:
                lane = tied[0]
        else:
            lane = tied[0]
        return arrays.reps[lane], float(vmax)

    # -- value kernels --------------------------------------------------
    def _deltas(self, state: Any) -> "_FloatArray":
        """Member-independent per-lane increments (plain RP)."""
        if self._delta is None:
            self._delta = np.array(
                [state.delta(rep) for rep in self._arrays.reps]
            )
        return self._delta

    def _tnrp_values(self, state: _TNRPPackState) -> "_FloatArray":
        arrays = self._arrays
        members = state._members
        if not members:
            # Scalar short-circuit: an empty set values any candidate at
            # tnrp(τ, 1.0) on both the pairwise and the exact path.
            return arrays.tnrp_of(np.ones(len(arrays.reps)))
        if not state._fast:
            # Exact path: member sums and candidate throughputs are
            # per-workload scalars from the state's scan memo (shared
            # with the scalar path); only the candidate term vectorizes.
            entries = {
                w: state.scan_entry(w) for w in sorted(set(arrays.workloads))
            }
            member_sum = np.array(
                [entries[w][0] for w in arrays.workloads]
            )
            tput_cand = np.array(
                [entries[w][1] for w in arrays.workloads]
            )
            return member_sum + arrays.tnrp_of(tput_cand)
        self._sync_pairwise(state)
        ev = self._evaluator
        n = len(arrays.reps)
        acc = np.zeros(n)
        tput_new = np.ones(n)
        urgency_map = getattr(ev, "urgency", None)
        for i, member in enumerate(members):
            x = state._tputs[i] * self._fwd[i]
            rp_m = ev.calculator.rp(member)
            jrp_m = ev._job_rp(member)
            u_m = (
                urgency_map.get(member.job_id, 1.0) if urgency_map else 1.0
            )
            if u_m != 1.0:
                charge = jrp_m if jrp_m is not None else rp_m
                term = rp_m - (1.0 - x) * charge * u_m
            elif jrp_m is not None:
                term = rp_m - (1.0 - x) * jrp_m
            else:
                term = x * rp_m
            acc = acc + term
            tput_new = tput_new * self._bwd[i]
        return acc + arrays.tnrp_of(tput_new)

    def _sync_pairwise(self, state: _TNRPPackState) -> None:
        """Extend the per-member pairwise rows to cover new members."""
        members = state._members
        if self._synced_members == len(members):
            return
        pairwise = self._evaluator.table.pairwise  # type: ignore[attr-defined]
        workloads = self._arrays.workloads
        for i in range(self._synced_members, len(members)):
            w_m = members[i].workload
            self._fwd.append(
                np.array([pairwise(w_m, w_l) for w_l in workloads])
            )
            self._bwd.append(
                np.array([pairwise(w_l, w_m) for w_l in workloads])
            )
        self._synced_members = len(members)
