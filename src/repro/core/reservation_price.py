"""Reservation price (§4.2).

The reservation price ``RP(τ)`` of a task is the hourly cost of the
*cheapest* instance type capable of meeting the task's resource demands —
i.e. the minimum hourly cost of hosting τ standalone, without packing.
For a set of tasks, ``RP(T) = Σ_τ RP(τ)``.

A task-to-instance assignment is cost-efficient iff the reservation price
of the assigned set is at least the instance's hourly cost: provisioning
the shared instance is then no more expensive than giving every task its
own reservation-price instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.task import Task


class InfeasibleTaskError(ValueError):
    """Raised when no instance type in the catalog can host a task."""


def _demand_signature(task: Task) -> tuple:
    """Hashable key identifying a task's demand structure.

    Tasks created from the same workload share demand content but not
    dict identity, so the signature hashes the demand values themselves.
    """
    return tuple(
        sorted((family, vec.as_tuple()) for family, vec in task.demands.items())
    )


@dataclass
class ReservationPriceCalculator:
    """Computes and caches reservation prices against an instance catalog.

    The catalog is snapshotted (as a tuple) at construction: every memo
    below — the signature cache, the per-task-id memo — is only valid
    against the catalog the calculator was built with, so later mutation
    of the caller's catalog list must not leak in.  :attr:`catalog_token`
    names that snapshot; caches shared *across* calculators (pack memos,
    evaluator set-value memos) must key on it, or two schedulers with
    different catalogs sharing a cache would serve each other's prices.

    Attributes:
        catalog: Available instance types (ghost types are ignored).
    """

    catalog: Sequence[InstanceType]
    _cache: dict[tuple, tuple[InstanceType, float]] = field(
        default_factory=dict, repr=False
    )
    #: Per-task-id memo in front of the signature cache: computing the
    #: demand signature itself (a sorted tuple over the demand map) is the
    #: hot part of repeated ``rp()`` calls in Algorithm 1's inner argmax.
    #: Task ids are immutable and unique within a scheduler's lifetime, so
    #: the id fully determines the signature.
    _by_task_id: dict[str, tuple[InstanceType, float]] = field(
        default_factory=dict, repr=False
    )
    _sig_by_task_id: dict[str, tuple] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # Snapshot: memos below assume the catalog never changes under
        # them, so sever the alias to the caller's (possibly mutable) list.
        self.catalog = tuple(self.catalog)
        real_types = [it for it in self.catalog if not it.is_ghost]
        if not real_types:
            raise ValueError("catalog has no (non-ghost) instance types")
        # Ascending cost: the first feasible type is the RP type.
        object.__setattr__(
            self,
            "_by_cost_asc",
            sorted(real_types, key=lambda it: (it.hourly_cost, it.name)),
        )
        object.__setattr__(
            self,
            "_catalog_token",
            tuple(
                (it.name, it.family, it.capacity.as_tuple(), it.hourly_cost)
                for it in self.catalog
            ),
        )

    @property
    def catalog_token(self) -> tuple:
        """Hashable content snapshot of the catalog this calculator prices
        against.  Two calculators agree on every RP iff their tokens are
        equal, so cross-calculator caches key their entries on it."""
        return self._catalog_token  # type: ignore[attr-defined]

    def rp_type(self, task: Task) -> InstanceType:
        """The reservation-price instance type: cheapest feasible for ``task``."""
        return self._lookup(task)[0]

    def demand_signature(self, task: Task) -> tuple:
        """Memoized :func:`_demand_signature` (hot in grouping/argmax paths)."""
        sig = self._sig_by_task_id.get(task.task_id)
        if sig is None:
            sig = _demand_signature(task)
            self._sig_by_task_id[task.task_id] = sig
        return sig

    def rp(self, task: Task) -> float:
        """The reservation price of ``task`` in $/hr."""
        return self._lookup(task)[1]

    def rp_of_set(self, tasks: Iterable[Task]) -> float:
        """``RP(T) = Σ RP(τ)`` (§4.2)."""
        return sum(self.rp(t) for t in tasks)

    def job_rp(self, tasks: Iterable[Task]) -> float:
        """Reservation price of a whole job (used by the §4.4 extension)."""
        return self.rp_of_set(tasks)

    def is_cost_efficient(
        self, tasks: Iterable[Task], instance_type: InstanceType, value: float | None = None
    ) -> bool:
        """The §4.2 criterion: RP (or supplied value) ≥ instance hourly cost."""
        total = value if value is not None else self.rp_of_set(tasks)
        return total >= instance_type.hourly_cost - 1e-9

    def _lookup(self, task: Task) -> tuple[InstanceType, float]:
        hit = self._by_task_id.get(task.task_id)
        if hit is not None:
            return hit
        key = _demand_signature(task)
        hit = self._cache.get(key)
        if hit is not None:
            self._by_task_id[task.task_id] = hit
            return hit
        for itype in self._by_cost_asc:  # type: ignore[attr-defined]
            if task.demand_for(itype.family).fits_within(itype.capacity):
                result = (itype, itype.hourly_cost)
                self._cache[key] = result
                self._by_task_id[task.task_id] = result
                return result
        raise InfeasibleTaskError(
            f"task {task.task_id} ({task.workload}) fits no instance type; "
            f"max demand {task.max_demand}"
        )


def no_packing_cost(
    tasks: Iterable[Task], calculator: ReservationPriceCalculator
) -> float:
    """Hourly cost of hosting every task on its own reservation-price
    instance — the No-Packing baseline's instantaneous provisioning cost."""
    return calculator.rp_of_set(tasks)


def job_rp_index(
    jobs: Mapping[str, Sequence[Task]], calculator: ReservationPriceCalculator
) -> dict[str, float]:
    """Precompute RP(j) for each job — the §4.4 multi-task penalty weight."""
    return {job_id: calculator.rp_of_set(tasks) for job_id, tasks in jobs.items()}
