"""Deadline-SLO scheduling: urgency-weighted reservation prices.

Eva's reservation-price machinery optimizes cost and is deadline-blind.
This module adds the deadline-aware policy on top of the *unchanged*
Algorithm-1 path: :class:`DeadlineAwareEvaScheduler` consumes
:class:`~repro.core.protocol.DeadlineApproaching` observations natively
(the typed channel, never snapshot diffing), estimates each
deadline-bearing job's remaining work from its throughput reports, and
— when the job can no longer meet its deadline at the co-located
throughput the table predicts — escalates the rate at which the job's
reservation price is charged against interference.

The escalation generalizes the §4.4 multi-task penalty.  The standard
single-task TNRP ``tput · RP(τ)`` is algebraically
``RP(τ) − (1 − tput) · RP(τ)``: full reservation price minus the
degradation charge.  For an *at-risk* job the charge is multiplied by an
urgency factor ``u ≥ 1``:

    ``TNRP_u(τ, tput) = RP(τ) − (1 − tput) · RP(charge) · u``

(``RP(charge)`` is ``RP(j)`` for multi-task jobs, exactly as in §4.4,
and ``RP(τ)`` for single-task jobs).  Standalone placements
(``tput = 1``) are untouched, so an at-risk job costs exactly what it
always cost on its reservation-price instance.  Everything else falls
out of the ordinary packing path:

* **greedy guard (Algorithm 1, lines 9–11)** — adding a neighbour to an
  at-risk task's instance now decreases the set's value, so urgent
  tasks come out of packing isolated;
* **survivor extraction (§4.5)** — an instance co-locating an at-risk
  task loses its cost-efficiency (the inflated degradation charge
  pushes the set's value below the instance's hourly cost), so Partial
  Reconfiguration drains it and re-packs the task at full throughput;
* **termination/launch** — the standard plan executor migrates the
  at-risk task off and closes the drained instance; no special-case
  actions exist, so the declared ``action_types`` vocabulary is Eva's.

The urgency factor comes from remaining work vs. time-to-deadline: with
``required = remaining_work_h / time_to_deadline_h``, the job is at risk
once ``required`` exceeds the throughput the table predicts for a packed
placement (its pairwise default), and then

    ``u = min(max_urgency, 1 / max(1 − required, 1 / max_urgency))``

— exactly the factor at which a ``(1 − tput) = 1 − required``
degradation charge cancels one full reservation price, so the escalation
grows as slack shrinks and saturates at ``max_urgency`` for jobs whose
deadline is already unattainable (bounding lateness instead).

With no deadline-bearing jobs (or before any warning fires) the
scheduler builds the stock evaluator with its shared cross-round caches
and is behaviourally — and byte-for-byte — identical to
:class:`~repro.core.scheduler.EvaScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping, Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType
from repro.cluster.state import ClusterSnapshot
from repro.core.evaluation import AssignmentEvaluator, TNRPCaches, TNRPEvaluator
from repro.core.interfaces import JobThroughputReport
from repro.core.protocol import DeadlineApproaching, Observation
from repro.core.scheduler import EvaConfig, EvaScheduler
from repro.cluster.task import Task

__all__ = [
    "DeadlineConfig",
    "DeadlineTNRPEvaluator",
    "DeadlineAwareEvaScheduler",
]


@dataclass(frozen=True)
class DeadlineConfig:
    """Tuning knobs of the deadline-urgency escalation.

    Attributes:
        max_urgency: Cap on the degradation-charge multiplier.  The
            default (64) is far past the point where any tabled
            co-location stops looking cost-efficient (a pairwise
            throughput of ``t`` needs ``u > 1/(1-t)``; the table default
            0.95 needs 20), while keeping values finite for the
            already-late case.
        risk_tput: Packed-throughput estimate that defines "at risk":
            a job whose required throughput exceeds it cannot meet its
            deadline if co-located.  ``None`` (default) reads the
            scheduler's co-location table default — "via the throughput
            table" — so the risk bar moves with the table the policy
            actually packs against.
        reconfig_headroom_s: Reconfiguration allowance subtracted from
            the time-to-deadline before computing the required
            throughput.  Isolating a job is not instantaneous — the
            at-risk call must land a scheduling round plus a
            checkpoint/launch cycle before the deadline — so the policy
            plans against an effective deadline this many seconds early
            (default: two scheduling periods, like the simulator's
            default warning horizon).  A job inside the headroom window
            escalates to ``max_urgency`` outright.
    """

    max_urgency: float = 64.0
    risk_tput: float | None = None
    reconfig_headroom_s: float = 600.0

    def __post_init__(self) -> None:
        if self.max_urgency < 1.0:
            raise ValueError("max_urgency must be >= 1")
        if self.risk_tput is not None and not 0.0 < self.risk_tput <= 1.0:
            raise ValueError(f"risk_tput must be in (0, 1], got {self.risk_tput}")
        if self.reconfig_headroom_s < 0:
            raise ValueError("reconfig_headroom_s must be >= 0")


@dataclass
class DeadlineTNRPEvaluator(TNRPEvaluator):
    """TNRP with per-job urgency multipliers on the degradation charge.

    ``urgency`` maps job id → multiplier (``>= 1``); jobs absent from
    the map are valued by the stock TNRP formula, bit for bit.  Built
    fresh each round with fresh :class:`~repro.core.evaluation.TNRPCaches`
    (urgency-dependent values must not leak into the scheduler's shared
    cross-round memo), and its :meth:`cache_token` carries the urgency
    map so whole-packing memo entries can never be reused across
    different urgency states.
    """

    urgency: Mapping[str, float] = field(default_factory=dict)

    #: Namespace of this evaluator's :meth:`cache_token`.  Subclasses
    #: reusing the urgency machinery for a different policy (e.g. the
    #: failure-hazard evaluator) override it so whole-packing memo
    #: entries can never be shared across policies.
    cache_tag: ClassVar[str] = "deadline"

    def tnrp_from_tput(self, task: Task, tput: float) -> float:
        u = self.urgency.get(task.job_id, 1.0)
        if u == 1.0:
            return super().tnrp_from_tput(task, tput)
        # A task's u is fixed for this evaluator's (per-round) lifetime,
        # so urgent values share the per-round tnrp memo without ever
        # colliding with stock values under the same key.
        cache = self.caches.tnrp
        key = (task.task_id, tput)
        cached = cache.get(key)
        if cached is not None:
            return cached
        rp = self.calculator.rp(task)
        job_rp = self._job_rp(task)
        charge = job_rp if job_rp is not None else rp
        value = rp - (1.0 - tput) * charge * u
        cache[key] = value
        return value

    def group_key(self, task: Task) -> tuple:
        # Equal workload/demand/arity tasks stop being interchangeable
        # when their jobs carry different urgency.
        return (*super().group_key(task), self.urgency.get(task.job_id, 1.0))

    def cache_token(self) -> tuple | None:
        base = super().cache_token()
        if base is None:
            return None
        return (*base, self.cache_tag, tuple(sorted(self.urgency.items())))


class DeadlineAwareEvaScheduler(EvaScheduler):
    """Eva extended with deadline-SLO urgency (see module docstring).

    A protocol-native policy: deadlines reach it exclusively as
    :class:`~repro.core.protocol.DeadlineApproaching` observations
    through the :meth:`observe` hook (direct ``schedule()`` callers that
    bypass the observation channel get plain Eva behaviour — the policy
    never sniffs ``Job.deadline_hours`` off the snapshot).  Remaining
    work is estimated by integrating the per-round throughput reports,
    the same signal that feeds the co-location table.
    """

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
        deadline_config: DeadlineConfig | None = None,
    ):
        super().__init__(
            catalog,
            config=config,
            delay_model=delay_model,
            name=name or "Eva-Deadline",
        )
        if not self.config.interference_aware:
            raise ValueError(
                "DeadlineAwareEvaScheduler needs the TNRP evaluator "
                "(interference_aware=True): urgency escalates the "
                "throughput-degradation charge"
            )
        self.deadline_config = deadline_config or DeadlineConfig()
        #: job id -> absolute deadline (seconds), learned from the typed
        #: observation channel and pruned against each snapshot.
        self._deadlines: dict[str, float] = {}
        #: job id -> (last integration time, estimated work done in
        #: standalone-hours).
        self._progress: dict[str, tuple[float, float]] = {}
        #: This round's reported normalized throughput per job (jobs not
        #: fully running have no report and integrate at rate 0).
        self._round_tputs: dict[str, float] = {}
        #: Urgency multipliers used by the most recent round (for
        #: introspection and tests).
        self.last_urgency: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Observation channel
    # ------------------------------------------------------------------
    def observe(self, observations: tuple[Observation, ...]) -> None:
        super().observe(observations)
        for obs in observations:
            if isinstance(obs, DeadlineApproaching):
                self._deadlines[obs.job_id] = obs.deadline_s

    def on_throughput_reports(
        self, reports: tuple[JobThroughputReport, ...]
    ) -> None:
        super().on_throughput_reports(reports)
        self._round_tputs = {r.job_id: r.normalized_tput for r in reports}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pre_schedule(self, snapshot: ClusterSnapshot) -> None:
        # Runs on every round — including memoized no-op rounds — so the
        # progress integrals and urgency map never go stale.  Urgency
        # feeds the evaluator's cache token, which keys the round memo.
        self._update_progress(snapshot)
        self.last_urgency = self._compute_urgency(snapshot)
        super()._pre_schedule(snapshot)

    def make_evaluator(self, snapshot: ClusterSnapshot) -> AssignmentEvaluator:
        urgency = self.last_urgency
        if not urgency:
            # No at-risk jobs: the stock evaluator with the shared
            # cross-round caches — the exact EvaScheduler path.
            return super().make_evaluator(snapshot)
        return DeadlineTNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=self.config.multi_task_aware,
            caches=TNRPCaches(),
            urgency=urgency,
        )

    # ------------------------------------------------------------------
    # Remaining-work estimation and urgency
    # ------------------------------------------------------------------
    def _update_progress(self, snapshot: ClusterSnapshot) -> None:
        """Integrate observed throughput into per-job work estimates.

        A job's report at this round reflects its placement over the
        just-elapsed interval, so the interval is credited at that rate;
        intervals without a report (queued, pending, straggling) accrue
        nothing — a pessimistic estimate, which can only make the policy
        act earlier, never later.
        """
        now = snapshot.time_s
        jobs = snapshot.jobs
        for job_id in [j for j in self._progress if j not in jobs]:
            del self._progress[job_id]
        for job_id, job in jobs.items():
            last_s, work_h = self._progress.get(job_id, (now, 0.0))
            rate = self._round_tputs.get(job_id, 0.0)
            if now > last_s and rate > 0.0:
                work_h = min(
                    job.duration_hours, work_h + rate * (now - last_s) / 3600.0
                )
            self._progress[job_id] = (now, work_h)

    def _compute_urgency(self, snapshot: ClusterSnapshot) -> dict[str, float]:
        """Urgency multipliers for the at-risk deadline-bearing jobs."""
        self._deadlines = {
            job_id: deadline_s
            for job_id, deadline_s in self._deadlines.items()
            if job_id in snapshot.jobs
        }
        if not self._deadlines:
            return {}
        cfg = self.deadline_config
        risk_tput = (
            cfg.risk_tput
            if cfg.risk_tput is not None
            else self.monitor.table.default_tput
        )
        now = snapshot.time_s
        urgency: dict[str, float] = {}
        for job_id, deadline_s in self._deadlines.items():
            job = snapshot.jobs[job_id]
            work_h = self._progress.get(job_id, (now, 0.0))[1]
            remaining_h = job.duration_hours - work_h
            if remaining_h <= 0.0:
                continue  # estimator says done; the finish is imminent
            raw_slack_h = (deadline_s - now) / 3600.0
            if remaining_h >= raw_slack_h:
                # Lost cause: even uninterrupted full-throughput
                # execution cannot finish in time.  Escalating would
                # spend money and migrations on a miss either way, so
                # the job falls back to pure cost scheduling.
                continue
            slack_h = (deadline_s - cfg.reconfig_headroom_s - now) / 3600.0
            if slack_h <= 0.0:
                # Attainable, but only if isolation happens right now —
                # the reconfiguration headroom is already being spent.
                urgency[job_id] = cfg.max_urgency
                continue
            required = remaining_h / slack_h
            if required <= risk_tput:
                continue  # on track even at packed throughput
            urgency[job_id] = min(
                cfg.max_urgency,
                1.0 / max(1.0 - required, 1.0 / cfg.max_urgency),
            )
        return urgency
