"""Market-aware scheduling: live pool prices folded into reservation prices.

Eva's reservation price *is* a price — the cheapest hourly rate that
could host a task (§4.2) — but the stock calculator reads the catalog's
static on-demand column.  When a spot market moves pool prices, a
cost-efficiency argmax against stale prices keeps packing jobs into a
pool whose discount has evaporated.  This module makes RP track the
live market while leaving the Algorithm-1 path untouched, following the
protocol-native precedents (eviction PR 4, deadline PR 5, failure PR 7):

* **Price tracking** — the scheduler consumes
  :class:`~repro.core.protocol.PriceChanged` observations (never market
  internals) into a per-family multiplier map.  Each round it prices
  packing against a *repriced catalog* — the stock catalog with each
  type's ``hourly_cost`` scaled by its family's current multiplier —
  through a :class:`~repro.core.reservation_price.ReservationPriceCalculator`
  built per price level and cached.  Because every RP/TNRP/packing memo
  keys on the calculator's ``catalog_token`` (which embeds the hourly
  costs), the existing cache discipline partitions per price level for
  free; with all multipliers at 1 the scheduler runs the stock
  calculator, stock caches, stock everything — byte-identical to
  :class:`~repro.core.scheduler.EvaScheduler`.

* **Cross-pool migration** — emerges from the ordinary path: when pool
  A's multiplier rises, A's types price out of the full-reconfiguration
  argmax and the cost-efficiency criterion, so new and repacked tasks
  land in the cheaper pool and drained instances in the expensive one
  terminate.  No bespoke migration mechanism exists.

* **Bid ceiling** — a family whose multiplier exceeds ``bid_ceiling``
  is withheld from the packing catalog entirely (the scheduler refuses
  to bid at that price), *unless* dropping it would strand demand: a
  family is only droppable while some surviving family's per-dimension
  maximum capacity covers it (GPU types therefore never drop when they
  are the only GPU capacity).

* **On-demand fallback** — :class:`~repro.core.protocol.SpotEvictionNotice`
  observations within ``storm_window_s`` of each other count toward an
  eviction storm; at ``storm_threshold`` the scheduler clears its
  ``use_spot`` flag for ``storm_cooldown_s``, and the simulator bills
  subsequent launches at the full on-demand rate with no preemption
  draw — paying the premium to stop churning.

* **Capacity pressure** — a :class:`~repro.core.protocol.PoolExhausted`
  observation applies a one-round ``exhaust_penalty`` price floor to
  the pool's families; if launches keep tripping the pool's capacity
  the penalty keeps re-arming, steering load toward pools with room.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType
from repro.cluster.state import ClusterSnapshot
from repro.core.evaluation import (
    AssignmentEvaluator,
    RPEvaluator,
    TNRPCaches,
    TNRPEvaluator,
)
from repro.core.protocol import (
    Observation,
    PoolExhausted,
    PriceChanged,
    SpotEvictionNotice,
)
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.scheduler import EvaConfig, EvaScheduler

__all__ = [
    "MarketPolicyConfig",
    "MarketAwareEvaScheduler",
]


@dataclass(frozen=True)
class MarketPolicyConfig:
    """Bid/fallback knobs of the market-aware policy.

    Attributes:
        bid_ceiling: Maximum price multiplier the scheduler will bid at;
            families priced above it are withheld from packing when a
            covering family survives (see module docstring).
        storm_threshold: Eviction notices within the window that declare
            an eviction storm.  On-demand trades at ~3x the spot rate,
            so the fallback is an emergency brake against pathological
            churn, not a routine response — the default only trips when
            evictions cluster far beyond the background rate.
        storm_window_s: Sliding window (over notice eviction times) the
            threshold counts in.
        storm_cooldown_s: How long after a storm declaration launches
            stay on-demand.
        exhaust_penalty: One-round price-multiplier floor applied to an
            exhausted pool's families.
    """

    bid_ceiling: float = 1.6
    storm_threshold: int = 6
    storm_window_s: float = 900.0
    storm_cooldown_s: float = 900.0
    exhaust_penalty: float = 1.5

    def __post_init__(self) -> None:
        if self.bid_ceiling < 1.0:
            raise ValueError(f"bid_ceiling must be >= 1, got {self.bid_ceiling}")
        if self.storm_threshold < 1:
            raise ValueError(
                f"storm_threshold must be >= 1, got {self.storm_threshold}"
            )
        if self.storm_window_s <= 0:
            raise ValueError(
                f"storm_window_s must be > 0, got {self.storm_window_s}"
            )
        if self.storm_cooldown_s < 0:
            raise ValueError(
                f"storm_cooldown_s must be >= 0, got {self.storm_cooldown_s}"
            )
        if self.exhaust_penalty < 1.0:
            raise ValueError(
                f"exhaust_penalty must be >= 1, got {self.exhaust_penalty}"
            )


class MarketAwareEvaScheduler(EvaScheduler):
    """Eva bidding into a live spot market (see module docstring).

    Protocol-native: prices, capacity pressure, and eviction storms
    reach it exclusively as typed observations.  With no market
    observations (or all multipliers back at 1) every round runs the
    stock :class:`~repro.core.scheduler.EvaScheduler` path byte for
    byte — the market golden matrix pins the reaction, the legacy
    matrices pin the identity.
    """

    #: Cached repriced calculators per distinct price level (bounded;
    #: quantized pool prices keep the level count small in practice).
    _MAX_PRICE_LEVELS: ClassVar[int] = 64

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
        market_config: MarketPolicyConfig | None = None,
    ):
        super().__init__(
            catalog,
            config=config,
            delay_model=delay_model,
            name=name or "Eva-Market-Aware",
        )
        self.market_config = market_config or MarketPolicyConfig()
        #: family -> current market multiplier (absent == 1.0).
        self._multipliers: dict[str, float] = {}
        #: pool -> families, pending one-round exhaustion penalties.
        self._exhausted: dict[str, tuple[str, ...]] = {}
        #: Eviction times of recent spot notices (storm detector).
        self._notice_times: list[float] = []
        #: Simulation time until which launches stay on-demand.
        self._storm_until = float("-inf")
        #: Read by the simulator at each launch (True = bid spot).
        self.use_spot = True
        #: Effective family multipliers this round (prices + penalties).
        self._effective: dict[str, float] = {}
        self._stock_catalog = self.catalog
        self._stock_calculator = self.rp_calculator
        #: price level -> (packing catalog, calculator, TNRP caches).
        self._price_levels: dict[
            tuple, tuple[list[InstanceType], ReservationPriceCalculator, TNRPCaches]
        ] = {}

    # ------------------------------------------------------------------
    # Observation channel
    # ------------------------------------------------------------------
    def observe(self, observations: tuple[Observation, ...]) -> None:
        super().observe(observations)
        for obs in observations:
            if isinstance(obs, PriceChanged):
                for family in obs.families:
                    if obs.multiplier == 1.0:
                        # Back at par: forget the family so an all-par
                        # market runs the stock byte-identical path.
                        self._multipliers.pop(family, None)
                    else:
                        self._multipliers[family] = obs.multiplier
            elif isinstance(obs, PoolExhausted):
                self._exhausted[obs.pool] = obs.families
            elif isinstance(obs, SpotEvictionNotice):
                self._notice_times.append(obs.eviction_time_s)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pre_schedule(self, snapshot: ClusterSnapshot) -> None:
        # Runs on memoized rounds too, so the storm detector and the
        # penalty decay never go stale.
        now = snapshot.time_s
        cfg = self.market_config
        self._notice_times = [
            t for t in self._notice_times if t > now - cfg.storm_window_s
        ]
        if len(self._notice_times) >= cfg.storm_threshold:
            self._storm_until = now + cfg.storm_cooldown_s
            # Consume the notices that declared the storm: extending the
            # cooldown requires a fresh cluster of evictions, not the
            # same ones re-counted every round.
            self._notice_times.clear()
        self.use_spot = not now < self._storm_until
        effective = dict(self._multipliers)
        for families in self._exhausted.values():
            for family in families:
                effective[family] = max(
                    effective.get(family, 1.0), cfg.exhaust_penalty
                )
        # Penalties last one round; a still-hot pool re-emits on the
        # next over-capacity launch, re-arming them.
        self._exhausted.clear()
        self._effective = {f: m for f, m in effective.items() if m != 1.0}
        self._apply_price_level(self._effective)
        super()._pre_schedule(snapshot)

    def _apply_price_level(self, effective: dict[str, float]) -> None:
        """Point catalog + calculator at the current price level."""
        if not effective:
            self.catalog = self._stock_catalog
            self.rp_calculator = self._stock_calculator
            return
        key = tuple(sorted(effective.items()))
        entry = self._price_levels.get(key)
        if entry is None:
            if len(self._price_levels) >= self._MAX_PRICE_LEVELS:
                self._price_levels.clear()
            catalog = self._repriced_catalog(effective)
            entry = (catalog, ReservationPriceCalculator(catalog), TNRPCaches())
            self._price_levels[key] = entry
        self.catalog, self.rp_calculator = entry[0], entry[1]

    def _repriced_catalog(self, effective: dict[str, float]) -> list[InstanceType]:
        """Stock catalog at live prices, minus families bid-ceilinged out."""
        ceiling = self.market_config.bid_ceiling
        overpriced = {
            family
            for family, mult in effective.items()
            if mult > ceiling and self._family_droppable(family)
        }
        return [
            replace(
                itype,
                hourly_cost=itype.hourly_cost
                * effective.get(itype.family, 1.0),
            )
            for itype in self._stock_catalog
            if itype.family not in overpriced
        ]

    def _family_droppable(self, family: str) -> bool:
        """True when another family's biggest type covers this family's.

        The conservative feasibility guard behind the bid ceiling: a
        task that fit the dropped family's largest type also fits the
        covering family's (demands across interchangeable CPU families
        match; a sole GPU family has no cover and never drops).
        """
        mine = [it.capacity for it in self._stock_catalog if it.family == family]
        if not mine:
            return False
        need = (
            max(c.gpus for c in mine),
            max(c.cpus for c in mine),
            max(c.ram_gb for c in mine),
        )
        for other in sorted({it.family for it in self._stock_catalog} - {family}):
            caps = [
                it.capacity for it in self._stock_catalog if it.family == other
            ]
            have = (
                max(c.gpus for c in caps),
                max(c.cpus for c in caps),
                max(c.ram_gb for c in caps),
            )
            if all(h >= n for h, n in zip(have, need)):
                return True
        return False

    def make_evaluator(self, snapshot: ClusterSnapshot) -> AssignmentEvaluator:
        if self.rp_calculator is self._stock_calculator:
            # At-par market: the stock evaluator with the shared
            # cross-round caches — the exact EvaScheduler path.
            return super().make_evaluator(snapshot)
        if not self.config.interference_aware:
            return RPEvaluator(self.rp_calculator)
        return TNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=self.config.multi_task_aware,
            caches=self._price_levels[tuple(sorted(self._effective.items()))][2],
        )

    def _round_key_extra(self) -> tuple:
        # Prices partition the memo through the evaluator's catalog
        # token already, but the spot/on-demand flag and any pending
        # penalties do not reach the evaluator — key them explicitly.
        return (tuple(sorted(self._effective.items())), self.use_spot)
