"""Heterogeneous-resource extension of reservation price (§4.2,
"Generalizability to Heterogeneous Resources").

Different instance families may carry different versions of the same
resource (A100 vs V100 GPUs; the Table-7 footnote's faster C7i/R7i CPUs),
so a task's throughput depends on *where* it runs.  The paper sketches the
extension: redefine reservation price as the minimum **cost per iteration**
over feasible types, and evaluate a tasks-to-instance assignment by each
task's cost-per-hour *scaled by its throughput on that family*, summed and
compared to the instance's hourly cost.

Concretely, with ``speed(τ, f)`` the task's relative iteration rate on
family ``f`` (1.0 on its reference family):

* ``RP_het(τ) = min over feasible k of  C_k / speed(τ, family(k))`` —
  the cheapest dollars-per-unit-of-work, attained at the task's
  *efficiency type*;
* a set ``T`` on an instance of type ``k`` is cost-efficient iff
  ``Σ_τ RP_het(τ) · speed(τ, family(k)) · tput_τ ≥ C_k`` — each task
  contributes what it would be worth at the rate it actually achieves
  there.

:class:`HeterogeneousEvaluator` plugs into Algorithm 1 unchanged; with all
speeds equal to 1.0 it reduces exactly to the homogeneous TNRP evaluator
(property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.task import Job, Task
from repro.core.evaluation import AssignmentEvaluator, PackState
from repro.core.reservation_price import (
    InfeasibleTaskError,
    ReservationPriceCalculator,
    _demand_signature,
)
from repro.core.throughput_table import CoLocationThroughputTable


@dataclass(frozen=True)
class FamilySpeedProfile:
    """Relative iteration rates per instance family.

    ``speeds[workload][family]`` is the task's standalone rate on that
    family relative to its reference family; missing entries default to
    ``default_speed`` (1.0: family makes no difference).
    """

    speeds: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    default_speed: float = 1.0

    def speed(self, workload: str, family: str) -> float:
        row = self.speeds.get(workload)
        if row is None:
            return self.default_speed
        return row.get(family, self.default_speed)


@dataclass
class HeterogeneousRPCalculator:
    """Cost-per-iteration reservation prices (§4.2 extension).

    Attributes:
        catalog: Available instance types.
        profile: Per-(workload, family) speed factors.
    """

    catalog: Sequence[InstanceType]
    profile: FamilySpeedProfile = field(default_factory=FamilySpeedProfile)

    def __post_init__(self) -> None:
        self._types = [it for it in self.catalog if not it.is_ghost]
        if not self._types:
            raise ValueError("catalog has no (non-ghost) instance types")
        self._cache: dict[tuple, tuple[InstanceType, float]] = {}

    def _key(self, task: Task) -> tuple:
        return (task.workload, _demand_signature(task))

    def rp(self, task: Task) -> float:
        """min over feasible k of C_k / speed(τ, family(k))."""
        return self._lookup(task)[1]

    def rp_type(self, task: Task) -> InstanceType:
        """The efficiency type attaining the heterogeneous RP."""
        return self._lookup(task)[0]

    def _lookup(self, task: Task) -> tuple[InstanceType, float]:
        key = self._key(task)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        best: tuple[InstanceType, float] | None = None
        for itype in self._types:
            if not task.demand_for(itype.family).fits_within(itype.capacity):
                continue
            speed = self.profile.speed(task.workload, itype.family)
            if speed <= 0:
                continue
            cost_per_work = itype.hourly_cost / speed
            if best is None or cost_per_work < best[1]:
                best = (itype, cost_per_work)
        if best is None:
            raise InfeasibleTaskError(
                f"task {task.task_id} fits no instance type in the catalog"
            )
        self._cache[key] = best
        return best

    def rp_of_set(self, tasks: Sequence[Task]) -> float:
        return sum(self.rp(t) for t in tasks)


class _HetPackState(PackState):
    """Recomputing pack state (heterogeneous sets stay small in practice)."""

    def __init__(self, evaluator: "HeterogeneousEvaluator", tasks: Sequence[Task]):
        self._ev = evaluator
        self._members: list[Task] = list(tasks)
        self._value = evaluator.set_value(self._members)

    @property
    def value(self) -> float:
        return self._value

    def value_with(self, task: Task) -> float:
        return self._ev.set_value(self._members + [task])

    def add(self, task: Task) -> None:
        self._members.append(task)
        self._value = self._ev.set_value(self._members)


@dataclass
class HeterogeneousEvaluator(AssignmentEvaluator):
    """TNRP with family-dependent speeds, for a fixed instance family.

    Algorithm 1 evaluates candidate sets per instance type; this evaluator
    is *bound to one family* (the type currently being packed), so the
    family-speed factor is known.  Use :meth:`for_family` to derive bound
    evaluators from a family-agnostic template.
    """

    calculator: HeterogeneousRPCalculator
    table: CoLocationThroughputTable
    family: str = "*"
    jobs: Mapping[str, Job] = field(default_factory=dict)
    multi_task_aware: bool = True

    def for_family(self, family: str) -> "HeterogeneousEvaluator":
        return HeterogeneousEvaluator(
            calculator=self.calculator,
            table=self.table,
            family=family,
            jobs=self.jobs,
            multi_task_aware=self.multi_task_aware,
        )

    def task_rp(self, task: Task) -> float:
        return self.calculator.rp(task)

    def _speed(self, task: Task) -> float:
        return self.calculator.profile.speed(task.workload, self.family)

    def _task_value(self, task: Task, tput: float) -> float:
        rate = tput * self._speed(task)
        rp = self.calculator.rp(task)
        if self.multi_task_aware:
            job = self.jobs.get(task.job_id)
            if job is not None and job.is_multi_task:
                job_rp = self.calculator.rp_of_set(list(job.tasks))
                return rp - (1.0 - rate) * job_rp
        return rate * rp

    def set_value(self, tasks: Sequence[Task]) -> float:
        if not tasks:
            return 0.0
        workloads = [t.workload for t in tasks]
        total = 0.0
        for idx, task in enumerate(tasks):
            neighbours = workloads[:idx] + workloads[idx + 1 :]
            tput = self.table.tput(task.workload, neighbours)
            total += self._task_value(task, tput)
        return total

    def make_state(self, tasks: Sequence[Task] = ()) -> PackState:
        return _HetPackState(self, tasks)

    def group_key(self, task: Task) -> tuple:
        job = self.jobs.get(task.job_id) if self.multi_task_aware else None
        arity = job.num_tasks if job is not None else 1
        return (task.workload, _demand_signature(task), arity)


def heterogeneous_full_reconfiguration(
    tasks: Sequence[Task],
    instance_types: Sequence[InstanceType],
    evaluator: HeterogeneousEvaluator,
    group_identical: bool = True,
):
    """Algorithm 1 with per-family evaluator binding.

    Identical to :func:`repro.core.full_reconfig.full_reconfiguration`
    except the evaluator is re-bound to each instance type's family as
    the outer loop walks the catalog, so speeds apply correctly.
    """
    from repro.core.full_reconfig import PackedInstance, _TaskPool, _pack_one_instance
    from repro.cluster.instance import fresh_instance

    pool = _TaskPool(tasks, evaluator, group_identical)
    types_desc = sorted(
        (it for it in instance_types if not it.is_ghost),
        key=lambda it: (-it.hourly_cost, it.name),
    )
    packed: list[PackedInstance] = []
    for itype in types_desc:
        bound = evaluator.for_family(itype.family)
        while not pool.is_empty():
            chosen, value = _pack_one_instance(itype, pool, bound)
            if chosen and value >= itype.hourly_cost - 1e-9:
                packed.append(
                    PackedInstance(instance=fresh_instance(itype), tasks=tuple(chosen))
                )
            else:
                pool.push_back(chosen)
                break
        if pool.is_empty():
            break
    if not pool.is_empty():
        raise RuntimeError(
            f"{len(pool)} task(s) could not be packed under the "
            "heterogeneous evaluator"
        )
    return packed


def reduces_to_homogeneous(
    calculator: HeterogeneousRPCalculator,
    homogeneous: ReservationPriceCalculator,
    task: Task,
) -> bool:
    """True if, with unit speeds, both calculators agree on RP(task).

    Used by the property tests: the heterogeneous extension must collapse
    to the paper's base definition when families do not matter.
    """
    return abs(calculator.rp(task) - homogeneous.rp(task)) < 1e-9
