"""Failure-aware scheduling: empirical hazard → urgency-weighted RPs.

Eva's reservation-price machinery optimizes cost and is failure-blind.
This module adds the reliability-aware policy on top of the *unchanged*
Algorithm-1 path, mirroring the two protocol-native precedents already
in the tree:

* **Crashes** (the ``eva-deadline`` precedent, PR 5): the scheduler
  consumes :class:`~repro.core.protocol.InstanceFailed` observations —
  never snapshot sniffing — and maintains *per-failure-domain empirical
  hazard estimates* (observed failure counts over elapsed time).  Jobs
  it saw lose work to a crash are charged an escalated
  throughput-degradation rate through the ordinary TNRP formula

      ``TNRP_u(τ, tput) = RP(τ) − (1 − tput) · RP(charge) · u``

  so struck jobs come out of packing isolated: they re-earn the
  rolled-back work at full throughput, which shortens their remaining
  execution time and with it their exposure to the next failure.  The
  escalation per strike is weighted by the striking domain's observed
  hazard share, so a domain hammered by correlated shocks (an
  above-uniform share of observed failures) escalates harder than
  background crash noise — avoidance emerges from TNRP, not a side
  mechanism.

* **Stragglers** (the ``eva-eviction-aware`` precedent, PR 4): a
  :class:`~repro.core.protocol.StragglerReport` marks an instance as
  degraded capacity (the CASH motivation: slow, not down).  Degraded
  instances are hidden from the packing snapshot exactly like
  notice-doomed spot instances, so the ordinary packing path drains
  them — their tasks are re-placed on healthy capacity and the cluster
  stops paying full price for fractional throughput.  A recovery report
  (``slowdown == 1.0``) clears the mark.

With no failure observations the scheduler builds the stock evaluator
with its shared cross-round caches and is behaviourally — and
byte-for-byte — identical to :class:`~repro.core.scheduler.EvaScheduler`
(the failure-enabled golden matrix pins the reaction, the fault-free
matrices pin the identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.instance import InstanceType
from repro.cluster.state import ClusterSnapshot
from repro.core.deadline import DeadlineTNRPEvaluator
from repro.core.evaluation import AssignmentEvaluator, TNRPCaches
from repro.core.protocol import InstanceFailed, Observation, StragglerReport
from repro.core.scheduler import EvaConfig, EvaScheduler

__all__ = [
    "FailureAwareConfig",
    "HazardTNRPEvaluator",
    "FailureAwareEvaScheduler",
]


@dataclass(frozen=True)
class FailureAwareConfig:
    """Tuning knobs of the failure-hazard escalation.

    Attributes:
        strike_urgency: Base degradation-charge multiplier per observed
            crash of a job (compounded: ``strike_urgency ** strikes``).
            The default 8 isolates a job after two strikes against the
            table's 0.95 pairwise default (which needs ``u > 20``), and
            after one strike when the striking domain is hot.
        max_urgency: Cap on the multiplier (same rationale as
            :class:`~repro.core.deadline.DeadlineConfig.max_urgency`).
        drain_stragglers: Hide straggler-reported instances from the
            packing snapshot so the ordinary path drains them
            (the eviction-notice precedent).  Disable to schedule as if
            degraded capacity were healthy.
    """

    strike_urgency: float = 8.0
    max_urgency: float = 64.0
    drain_stragglers: bool = True

    def __post_init__(self) -> None:
        if self.strike_urgency < 1.0:
            raise ValueError("strike_urgency must be >= 1")
        if self.max_urgency < self.strike_urgency:
            raise ValueError("max_urgency must be >= strike_urgency")


@dataclass
class HazardTNRPEvaluator(DeadlineTNRPEvaluator):
    """The urgency-weighted TNRP evaluator under its own cache tag.

    Identical arithmetic to the deadline evaluator — urgency multiplies
    the degradation charge — but namespaced so failure-urgency packing
    memo entries can never collide with deadline-urgency ones.
    """

    cache_tag: ClassVar[str] = "failure"


class FailureAwareEvaScheduler(EvaScheduler):
    """Eva extended with failure-hazard urgency (see module docstring).

    A protocol-native policy: failures and stragglers reach it
    exclusively as typed observations through the :meth:`observe` hook.
    Victim attribution is best-effort from the last snapshot's
    placements (the scheduler's own remembered state — a crash between
    a launch and the next round has no remembered placement and simply
    goes unattributed).
    """

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        config: EvaConfig | None = None,
        delay_model: DelayModel | None = None,
        name: str | None = None,
        failure_config: FailureAwareConfig | None = None,
    ):
        super().__init__(
            catalog,
            config=config,
            delay_model=delay_model,
            name=name or "Eva-Failure-Aware",
        )
        if not self.config.interference_aware:
            raise ValueError(
                "FailureAwareEvaScheduler needs the TNRP evaluator "
                "(interference_aware=True): hazard escalates the "
                "throughput-degradation charge"
            )
        self.failure_config = failure_config or FailureAwareConfig()
        #: domain id -> observed failure count (the empirical hazard
        #: numerators; rates are over elapsed snapshot time).
        self._domain_failures: dict[int, int] = {}
        self._total_failures = 0
        #: job id -> crashes observed to hit it (pruned on finish).
        self._strikes: dict[str, int] = {}
        #: job id -> domain of its most recent strike.
        self._strike_domain: dict[str, int] = {}
        #: instance id -> last reported slowdown (< 1.0); pruned against
        #: each snapshot, cleared by a 1.0 recovery report.
        self._stragglers: dict[str, float] = {}
        #: instance id -> job ids placed on it at the last observed
        #: snapshot (crash victim attribution).
        self._last_placements: dict[str, frozenset[str]] = {}
        #: Time of the most recent snapshot (hazard-rate denominator).
        self._last_time_s = 0.0
        #: Urgency multipliers used by the most recent round.
        self.last_urgency: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Observation channel
    # ------------------------------------------------------------------
    def observe(self, observations: tuple[Observation, ...]) -> None:
        super().observe(observations)
        for obs in observations:
            if isinstance(obs, InstanceFailed):
                domain = obs.failure_domain
                self._domain_failures[domain] = (
                    self._domain_failures.get(domain, 0) + 1
                )
                self._total_failures += 1
                for job_id in sorted(
                    self._last_placements.get(obs.instance_id, ())
                ):
                    self._strikes[job_id] = self._strikes.get(job_id, 0) + 1
                    self._strike_domain[job_id] = domain
                self._last_placements.pop(obs.instance_id, None)
                self._stragglers.pop(obs.instance_id, None)
            elif isinstance(obs, StragglerReport):
                if obs.slowdown >= 1.0:
                    self._stragglers.pop(obs.instance_id, None)
                else:
                    self._stragglers[obs.instance_id] = obs.slowdown

    # ------------------------------------------------------------------
    # Hazard estimates (introspection + escalation weights)
    # ------------------------------------------------------------------
    def domain_hazard_per_hour(self) -> dict[int, float]:
        """Observed failures per hour, per failure domain."""
        hours = self._last_time_s / 3600.0
        if hours <= 0.0:
            return {d: 0.0 for d in self._domain_failures}
        return {
            d: count / hours for d, count in self._domain_failures.items()
        }

    def _domain_weight(self, domain: int) -> float:
        """How much hotter ``domain`` runs than the observed average.

        ``1.0`` under uniform (independent-crash) hazard; grows toward
        the number of observed domains when correlated shocks hammer one
        domain, so shock-struck jobs escalate harder than crash-struck
        ones.  Floored at 1.0 — a cool domain never discounts a strike.
        """
        if self._total_failures <= 0 or not self._domain_failures:
            return 1.0
        mean = self._total_failures / len(self._domain_failures)
        return max(1.0, self._domain_failures.get(domain, 0) / mean)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pre_schedule(self, snapshot: ClusterSnapshot) -> None:
        # Runs on every round — including memoized no-op rounds — so the
        # hazard state and the remembered placements never go stale.
        self._last_time_s = snapshot.time_s
        live_jobs = snapshot.jobs
        for job_id in [j for j in self._strikes if j not in live_jobs]:
            del self._strikes[job_id]
            self._strike_domain.pop(job_id, None)
        live_instances = {st.instance_id for st in snapshot.instances}
        self._stragglers = {
            iid: s
            for iid, s in self._stragglers.items()
            if iid in live_instances
        }
        self.last_urgency = self._compute_urgency()
        self._last_placements = {
            st.instance_id: frozenset(
                snapshot.tasks[tid].job_id
                for tid in st.task_ids
                if tid in snapshot.tasks
            )
            for st in snapshot.instances
        }
        super()._pre_schedule(snapshot)

    def _compute_urgency(self) -> dict[str, float]:
        cfg = self.failure_config
        urgency: dict[str, float] = {}
        for job_id, strikes in self._strikes.items():
            weight = self._domain_weight(self._strike_domain.get(job_id, -1))
            urgency[job_id] = min(
                cfg.max_urgency, (cfg.strike_urgency**strikes) * weight
            )
        return urgency

    def make_evaluator(self, snapshot: ClusterSnapshot) -> AssignmentEvaluator:
        urgency = self.last_urgency
        if not urgency:
            # No struck jobs: the stock evaluator with the shared
            # cross-round caches — the exact EvaScheduler path.
            return super().make_evaluator(snapshot)
        return HazardTNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=self.config.multi_task_aware,
            caches=TNRPCaches(),
            urgency=urgency,
        )

    def _packing_snapshot(self, snapshot: ClusterSnapshot) -> ClusterSnapshot:
        if not (self.failure_config.drain_stragglers and self._stragglers):
            return snapshot
        # Degraded capacity is hidden from packing exactly like
        # notice-doomed spot instances: tasks re-place on healthy
        # capacity, match_existing_instances cannot keep the id, and the
        # ordinary diff drains + terminates the straggler.
        degraded = self._stragglers
        return ClusterSnapshot(
            time_s=snapshot.time_s,
            tasks=snapshot.tasks,
            jobs=snapshot.jobs,
            instances=tuple(
                state
                for state in snapshot.instances
                if state.instance_id not in degraded
            ),
        )

    def _round_key_extra(self) -> tuple:
        # Pending straggler marks change the decision (drain/terminate)
        # even though the packing snapshot hides the instances; urgency
        # already partitions the memo via the evaluator's cache token.
        return (tuple(sorted(self._stragglers.items())),)
