"""ILP formulation of the provisioning problem (§4.1).

The paper formulates cluster configuration as an integer linear program:
choose, for each of |I| = |T| potential instances, at most one instance
type, and assign every task to exactly one instance without exceeding any
resource capacity, minimizing the summed hourly cost.  (The paper's "ghost
type" — zero cost, zero capacity — is equivalent to allowing an instance
to have no type at all, which is how we encode it.)

This implementation differs from a literal transcription in two
solver-friendly, solution-preserving ways:

* **Group aggregation** — tasks with identical demand signatures are
  interchangeable, so assignment variables count tasks per (instance,
  group) instead of being one binary per (instance, task).
* **Family-aware capacities** — Table 7 tasks demand fewer CPUs on
  C7i/R7i than on P3, which the paper's fixed-demand ILP cannot express;
  we use per-type big-M capacity constraints so demands follow the chosen
  instance type's family.
* **Symmetry breaking** — instances are forced into non-increasing cost
  order, removing permutation symmetry.

The solver is HiGHS via :func:`scipy.optimize.milp` (the paper used
Gurobi; both are exact MILP solvers, only wall-clock differs), with a
configurable time limit — the paper itself reports best-found solutions
under a 30-minute limit (Table 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.sparse import lil_matrix

from repro.cluster.instance import InstanceType, fresh_instance
from repro.cluster.task import Task
from repro.core.full_reconfig import PackedInstance
from repro.core.reservation_price import _demand_signature


@dataclass(frozen=True)
class ILPResult:
    """Outcome of an ILP solve.

    Attributes:
        packed: The decoded configuration (None when no incumbent found).
        hourly_cost: Objective value of the incumbent.
        proven_optimal: Whether the solver proved optimality within the
            time limit.
        runtime_s: Wall-clock solve time.
        status_message: Solver status detail.
    """

    packed: list[PackedInstance] | None
    hourly_cost: float
    proven_optimal: bool
    runtime_s: float
    status_message: str


def _group_tasks(tasks: Sequence[Task]) -> list[list[Task]]:
    groups: dict[tuple, list[Task]] = {}
    for task in sorted(tasks, key=lambda t: t.task_id):
        groups.setdefault(_demand_signature(task), []).append(task)
    return [groups[key] for key in sorted(groups)]


def ilp_schedule(
    tasks: Sequence[Task],
    instance_types: Sequence[InstanceType],
    time_limit_s: float = 60.0,
    max_instances: int | None = None,
) -> ILPResult:
    """Solve the §4.1 ILP for an instantaneous task set.

    Args:
        tasks: The tasks to place.
        instance_types: Provisioning catalog (ghost types ignored).
        time_limit_s: Solver time budget; the best incumbent is returned
            if optimality is not proven in time.
        max_instances: Cap on |I| (defaults to |T|, the paper's bound).
    """
    if not tasks:
        return ILPResult([], 0.0, True, 0.0, "empty task set")

    types = [it for it in instance_types if not it.is_ghost]
    groups = _group_tasks(tasks)
    counts = [len(g) for g in groups]
    num_i = min(len(tasks), max_instances or len(tasks))
    num_k = len(types)
    num_g = len(groups)
    resources = ("gpus", "cpus", "ram_gb")

    # Variable layout: x[i,k] binaries first, then y[i,g] integers.
    def xi(i: int, k: int) -> int:
        return i * num_k + k

    x_end = num_i * num_k

    def yi(i: int, g: int) -> int:
        return x_end + i * num_g + g

    num_vars = x_end + num_i * num_g

    cost = np.zeros(num_vars)
    for i in range(num_i):
        for k, itype in enumerate(types):
            cost[xi(i, k)] = itype.hourly_cost

    # Per-(group, type, resource) demand table (family-specific).
    demand = np.zeros((num_g, num_k, len(resources)))
    for g, group in enumerate(groups):
        rep = group[0]
        for k, itype in enumerate(types):
            vec = rep.demand_for(itype.family)
            for r, rname in enumerate(resources):
                demand[g, k, r] = vec.get(rname)

    rows: list[tuple[dict[int, float], float, float]] = []  # (coeffs, lb, ub)

    # Each group fully assigned: Σ_i y_ig = n_g.
    for g in range(num_g):
        rows.append(({yi(i, g): 1.0 for i in range(num_i)}, counts[g], counts[g]))

    # At most one type per instance (no type = not provisioned).
    for i in range(num_i):
        rows.append(({xi(i, k): 1.0 for k in range(num_k)}, -np.inf, 1.0))

    # A task may only sit on a provisioned instance:
    # Σ_g y_ig ≤ (Σ_g n_g) · Σ_k x_ik.
    total_tasks = float(sum(counts))
    for i in range(num_i):
        coeffs = {yi(i, g): 1.0 for g in range(num_g)}
        for k in range(num_k):
            coeffs[xi(i, k)] = -total_tasks
        rows.append((coeffs, -np.inf, 0.0))

    # Family-aware capacity, big-M per (i, r, k):
    # Σ_g D_{g,k}^r y_ig + M·x_ik ≤ Q_k^r + M.
    for i in range(num_i):
        for k, itype in enumerate(types):
            cap = itype.capacity
            for r, rname in enumerate(resources):
                col = demand[:, k, r]
                if not col.any():
                    continue
                big_m = float(np.dot(col, counts))
                q = cap.get(rname)
                if big_m <= q:
                    continue  # capacity can never be exceeded
                coeffs = {yi(i, g): float(col[g]) for g in range(num_g) if col[g]}
                coeffs[xi(i, k)] = big_m
                rows.append((coeffs, -np.inf, q + big_m))

    # Symmetry breaking: instance costs non-increasing in i.
    for i in range(num_i - 1):
        coeffs: dict[int, float] = {}
        for k, itype in enumerate(types):
            coeffs[xi(i, k)] = coeffs.get(xi(i, k), 0.0) + itype.hourly_cost
            coeffs[xi(i + 1, k)] = coeffs.get(xi(i + 1, k), 0.0) - itype.hourly_cost
        rows.append((coeffs, 0.0, np.inf))

    a_matrix = lil_matrix((len(rows), num_vars))
    lbs = np.empty(len(rows))
    ubs = np.empty(len(rows))
    for row_idx, (coeffs, lb, ub) in enumerate(rows):
        for col_idx, coeff in coeffs.items():
            a_matrix[row_idx, col_idx] = coeff
        lbs[row_idx] = lb
        ubs[row_idx] = ub

    integrality = np.ones(num_vars)
    lower = np.zeros(num_vars)
    upper = np.empty(num_vars)
    upper[:x_end] = 1.0
    for i in range(num_i):
        for g in range(num_g):
            upper[yi(i, g)] = counts[g]

    start = time.perf_counter()
    result = milp(
        c=cost,
        constraints=LinearConstraint(a_matrix.tocsr(), lbs, ubs),
        integrality=integrality,
        bounds=(lower, upper),
        options={"time_limit": time_limit_s, "disp": False},
    )
    runtime = time.perf_counter() - start

    if result.x is None:
        return ILPResult(None, float("inf"), False, runtime, result.message)

    packed = _decode(result.x, groups, types, num_i, num_k, num_g, xi, yi)
    proven = result.status == 0
    return ILPResult(
        packed=packed,
        hourly_cost=float(result.fun),
        proven_optimal=proven,
        runtime_s=runtime,
        status_message=result.message,
    )


def _decode(x, groups, types, num_i, num_k, num_g, xi, yi) -> list[PackedInstance]:
    """Turn a MILP solution vector back into a packed configuration."""
    remaining = [list(g) for g in groups]
    packed: list[PackedInstance] = []
    for i in range(num_i):
        chosen_k = None
        for k in range(num_k):
            if round(x[xi(i, k)]) == 1:
                chosen_k = k
                break
        if chosen_k is None:
            continue
        chosen_tasks: list[Task] = []
        for g in range(num_g):
            count = int(round(x[yi(i, g)]))
            for _ in range(count):
                chosen_tasks.append(remaining[g].pop())
        if chosen_tasks:
            packed.append(
                PackedInstance(
                    instance=fresh_instance(types[chosen_k]),
                    tasks=tuple(chosen_tasks),
                )
            )
    leftovers = sum(len(g) for g in remaining)
    if leftovers:
        raise RuntimeError(
            f"ILP solution left {leftovers} task(s) unassigned — solver "
            "returned a fractional or inconsistent incumbent"
        )
    return packed
