"""Assignment-value evaluators: RP (§4.2) and TNRP (§4.3–§4.4).

Algorithm 1 is written against an abstract *assignment evaluator*: given a
set of tasks destined for one instance, return the set's value in $/hr.
Comparing that value against the instance's hourly cost is the
cost-efficiency criterion.

* :class:`RPEvaluator` values a set at its total reservation price —
  interference-blind ("Eva-RP").
* :class:`TNRPEvaluator` values each task at its throughput-normalized
  reservation price using the co-location throughput table, optionally
  with the §4.4 multi-task job extension ("Eva-TNRP" / "Eva-Multi").

Evaluators also expose an incremental :class:`PackState` so Algorithm 1's
inner ``argmax RP(T ∪ {τ'})`` runs in O(|T|) per candidate instead of
O(|T|²); the TNRP state falls back to an exact recomputation whenever the
throughput table holds exact-set entries that a pure pairwise-product
increment would miss.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster.task import Job, Task
from repro.core.reservation_price import ReservationPriceCalculator, _demand_signature
from repro.core.throughput_table import CoLocationThroughputTable


class PackState(ABC):
    """Incremental evaluation of one instance's tentative task set ``T``."""

    #: True when ``value_with(τ) == value + delta(τ)`` with ``delta(τ)``
    #: independent of the current members.  Algorithm 1's argmax then
    #: computes each group's delta once per packing and reuses it across
    #: iterations of the scan instead of re-calling ``value_with``.
    delta_stable: bool = False

    @property
    @abstractmethod
    def value(self) -> float:
        """Current value of the set (0.0 when empty)."""

    @abstractmethod
    def value_with(self, task: Task) -> float:
        """Value of ``T ∪ {task}`` without mutating the state."""

    def delta(self, task: Task) -> float:
        """Member-independent increment (only when ``delta_stable``)."""
        raise NotImplementedError(f"{type(self).__name__} is not delta-stable")

    @abstractmethod
    def add(self, task: Task) -> None:
        """Commit ``task`` into the set."""


class AssignmentEvaluator(ABC):
    """Values a prospective tasks-to-instance assignment in $/hr."""

    @abstractmethod
    def task_rp(self, task: Task) -> float:
        """Reservation price of a single task."""

    @abstractmethod
    def set_value(self, tasks: Sequence[Task]) -> float:
        """Value of assigning ``tasks`` together to one instance."""

    @abstractmethod
    def make_state(self, tasks: Sequence[Task] = ()) -> PackState:
        """Incremental state seeded with ``tasks``."""

    def group_key(self, task: Task) -> tuple:
        """Tasks with equal keys are interchangeable under this evaluator.

        Used by Algorithm 1's ``group_identical`` optimization: the inner
        argmax evaluates one representative per group.
        """
        return (task.workload, _demand_signature(task))

    def cache_token(self) -> tuple | None:
        """Hashable token identifying this evaluator's mutable inputs.

        Two calls against equal task pools with equal tokens are
        guaranteed to value every assignment identically, enabling
        whole-packing memoization (:class:`~repro.core.full_reconfig.PackMemo`).
        ``None`` (the default) disables that memoization — evaluators
        must opt in after establishing the guarantee.
        """
        return None

    def is_cost_efficient(self, tasks: Sequence[Task], hourly_cost: float) -> bool:
        """§4.2/§4.3 criterion: set value must cover the instance's cost."""
        return self.set_value(tasks) >= hourly_cost - 1e-9


# ----------------------------------------------------------------------
# Plain reservation price
# ----------------------------------------------------------------------


class _RPPackState(PackState):
    delta_stable = True

    def __init__(self, evaluator: "RPEvaluator", tasks: Sequence[Task]):
        self._evaluator = evaluator
        self._value = sum(evaluator.task_rp(t) for t in tasks)

    @property
    def value(self) -> float:
        return self._value

    def delta(self, task: Task) -> float:
        return self._evaluator.task_rp(task)

    def value_with(self, task: Task) -> float:
        return self._value + self._evaluator.task_rp(task)

    def add(self, task: Task) -> None:
        self._value += self._evaluator.task_rp(task)


@dataclass
class RPEvaluator(AssignmentEvaluator):
    """Plain reservation price: ``RP(T) = Σ RP(τ)`` (interference-blind)."""

    calculator: ReservationPriceCalculator

    def task_rp(self, task: Task) -> float:
        return self.calculator.rp(task)

    def set_value(self, tasks: Sequence[Task]) -> float:
        return self.calculator.rp_of_set(tasks)

    def make_state(self, tasks: Sequence[Task] = ()) -> PackState:
        return _RPPackState(self, tasks)

    def group_key(self, task: Task) -> tuple:
        return (task.workload, self.calculator.demand_signature(task))

    def cache_token(self) -> tuple | None:
        # RP depends only on immutable task demands and the catalog; the
        # catalog token keeps memo entries from leaking between schedulers
        # priced against different catalogs.
        return ("rp", self.calculator.catalog_token)


# ----------------------------------------------------------------------
# Throughput-normalized reservation price
# ----------------------------------------------------------------------


class TNRPCaches:
    """Cross-round memo shared by successive TNRP evaluators.

    A scheduler builds a fresh :class:`TNRPEvaluator` per round (the jobs
    mapping changes), but the underlying quantities are stable for the
    scheduler's lifetime: ``TNRP(τ, tput)`` depends only on the task's RP
    and its job's RP, and ``set_value`` additionally on the throughput
    table's current entries.  Passing one ``TNRPCaches`` to every
    evaluator lets those results survive across rounds; the set-value
    memo is dropped whenever the table records a changed value (its
    ``version`` bumps), the TNRP memo never needs invalidation.
    """

    __slots__ = ("tnrp", "set_value", "job_rp", "table_version", "catalog_token")

    def __init__(self) -> None:
        self.tnrp: dict[tuple[str, float], float] = {}
        self.set_value: dict[tuple[str, ...], float] = {}
        #: job_id → RP(j).  Jobs are immutable, so the §4.4 whole-job RP
        #: is stable across rounds; evaluators still recheck the job's
        #: presence/arity in their per-round mapping before using it.
        self.job_rp: dict[str, float] = {}
        self.table_version = -1
        self.catalog_token: tuple | None = None

    def sync(self, table: CoLocationThroughputTable) -> None:
        version = table.version
        if version != self.table_version:
            self.set_value.clear()
            self.table_version = version

    def bind(self, catalog_token: tuple) -> None:
        """Tie the memos to one catalog.  Every cached value embeds RPs,
        so an evaluator priced against a different catalog must not reuse
        them: rebinding to a new token drops everything."""
        if catalog_token != self.catalog_token:
            if self.catalog_token is not None:
                self.tnrp.clear()
                self.set_value.clear()
                self.job_rp.clear()
            self.catalog_token = catalog_token


class _TNRPPackState(PackState):
    """Incremental TNRP of a tentative set.

    Maintains, per member, the current throughput estimate.  Adding a
    candidate multiplies each member's throughput by the pairwise entry
    against the candidate's workload — valid exactly when no exact-set
    table entries could apply, which the state checks per operation.
    """

    def __init__(self, evaluator: "TNRPEvaluator", tasks: Sequence[Task]):
        self._ev = evaluator
        self._members: list[Task] = []
        self._tputs: list[float] = []
        self._workloads: list[str] = []
        self._value = 0.0
        # The table cannot change during this state's lifetime (updates
        # only happen between rounds, via the monitor), so the fast-path
        # predicate is fixed at construction.
        self._fast = not evaluator.table.has_large_exact_entries()
        #: Exact-path scan memo, cleared on every ``add``: for a fixed
        #: member set, the member-sum and the candidate's throughput
        #: depend only on the candidate's *workload*, so one computation
        #: serves every same-workload candidate in Algorithm 1's scan.
        self._scan_cache: dict[str, tuple[float, float]] = {}
        for task in tasks:
            self.add(task)

    @property
    def value(self) -> float:
        return self._value

    def _member_tnrp(self, task: Task, tput: float) -> float:
        return self._ev.tnrp_from_tput(task, tput)

    def _fast_path(self) -> bool:
        """Pairwise increments are exact iff the table has no exact-set
        entries for sets larger than a pair (pairs are the pairwise store
        itself)."""
        return self._fast

    def value_with(self, task: Task) -> float:
        if not self._members:
            return self._member_tnrp(task, 1.0)
        if not self._fast_path():
            member_sum, tput_cand = self.scan_entry(task.workload)
            return member_sum + self._ev.tnrp_from_tput(task, tput_cand)
        total = 0.0
        w_new = task.workload
        tput_new = 1.0
        tnrp = self._ev.tnrp_from_tput
        pairwise = self._ev.table.pairwise
        for member, tput, w in zip(self._members, self._tputs, self._workloads):
            total += tnrp(member, tput * pairwise(w, w_new))
            tput_new *= pairwise(w_new, w)
        total += tnrp(task, tput_new)
        return total

    def scan_entry(self, workload: str) -> tuple[float, float]:
        """Exact-path scan terms for a candidate of ``workload``.

        Reproduces ``set_value(members + [candidate])`` term by term and
        in the same accumulation order: member i sees neighbours
        ``ws[:i] + ws[i+1:] + [w_cand]``, the candidate sees ``ws``.
        Both the member sum and the candidate's throughput depend on the
        candidate only through its workload, hence the per-workload memo
        (shared by the scalar scan and the vector kernel).
        """
        entry = self._scan_cache.get(workload)
        if entry is None:
            ev = self._ev
            tnrp = ev.tnrp_from_tput
            tput = ev.table.tput
            ws = self._workloads
            member_sum = 0.0
            for i, member in enumerate(self._members):
                member_sum += tnrp(
                    member, tput(ws[i], ws[:i] + ws[i + 1 :] + [workload])
                )
            entry = (member_sum, tput(workload, ws))
            self._scan_cache[workload] = entry
        return entry

    def add(self, task: Task) -> None:
        if self._scan_cache:
            self._scan_cache.clear()
        if self._fast_path() or not self._members:
            w_new = task.workload
            tput_new = 1.0
            pairwise = self._ev.table.pairwise
            for idx, w in enumerate(self._workloads):
                self._tputs[idx] *= pairwise(w, w_new)
                tput_new *= pairwise(w_new, w)
            self._members.append(task)
            self._workloads.append(w_new)
            self._tputs.append(tput_new)
        else:
            self._members.append(task)
            self._workloads.append(task.workload)
            self._tputs = [
                self._ev.table.tput(
                    t.workload, self._workloads[:i] + self._workloads[i + 1 :]
                )
                for i, t in enumerate(self._members)
            ]
        tnrp = self._ev.tnrp_from_tput
        self._value = sum(
            tnrp(m, tp) for m, tp in zip(self._members, self._tputs)
        )


@dataclass
class TNRPEvaluator(AssignmentEvaluator):
    """Throughput-normalized reservation price (§4.3, §4.4).

    For a task τ in set T with estimated throughput ``tput``:

    * single-task job (or ``multi_task_aware=False``):
      ``TNRP(τ, T) = tput · RP(τ)``;
    * multi-task job j (``multi_task_aware=True``):
      ``TNRP(τ, T) = RP(τ) − (1 − tput) · RP(j)`` — the degradation is
      charged against the whole job's reservation price, since a straggler
      slows every sibling (§4.4).  TNRP can go negative for severely
      interfered multi-task jobs, which is what trips Algorithm 1's
      line 9–11 guard.

    Attributes:
        calculator: RP source.
        table: Co-location throughput table (online-learned).
        jobs: job_id → Job, needed for the multi-task extension.
        multi_task_aware: Toggle for the §4.4 extension ("Eva-Multi" vs
            "Eva-Single").
    """

    calculator: ReservationPriceCalculator
    table: CoLocationThroughputTable
    jobs: Mapping[str, Job] = field(default_factory=dict)
    multi_task_aware: bool = True
    #: Cross-round memo, normally owned by the scheduler so it persists
    #: between the per-round evaluator instances.
    caches: TNRPCaches = field(default_factory=TNRPCaches, repr=False)
    #: Memoized RP(j) (or None when §4.4 does not apply) per job id; jobs
    #: and their RPs are fixed for this evaluator's lifetime (one round).
    _job_rp_cache: dict[str, float | None] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # The shared caches hold RP-derived values; make sure they were
        # not populated against a different catalog (satellite-1 bugfix).
        self.caches.bind(self.calculator.catalog_token)

    def task_rp(self, task: Task) -> float:
        return self.calculator.rp(task)

    def _job_rp(self, task: Task) -> float | None:
        """RP(j) when the §4.4 extension applies to this task, else None."""
        if not self.multi_task_aware:
            return None
        job_id = task.job_id
        if job_id in self._job_rp_cache:
            return self._job_rp_cache[job_id]
        job = self.jobs.get(job_id)
        if job is None or not job.is_multi_task:
            rp = None
        else:
            # RP(j) is stable for an immutable job; share it across
            # rounds (presence in this round's mapping checked above).
            rp = self.caches.job_rp.get(job_id)
            if rp is None:
                rp = self.calculator.rp_of_set(job.tasks)
                self.caches.job_rp[job_id] = rp
        self._job_rp_cache[job_id] = rp
        return rp

    def tnrp_from_tput(self, task: Task, tput: float) -> float:
        cache = self.caches.tnrp
        key = (task.task_id, tput)
        cached = cache.get(key)
        if cached is not None:
            return cached
        rp = self.calculator.rp(task)
        job_rp = self._job_rp(task)
        value = rp - (1.0 - tput) * job_rp if job_rp is not None else tput * rp
        cache[key] = value
        return value

    def task_tnrp(self, task: Task, neighbours: Sequence[str]) -> float:
        """TNRP of one task given the workloads co-located with it."""
        return self.tnrp_from_tput(task, self.table.tput(task.workload, neighbours))

    def set_value(self, tasks: Sequence[Task]) -> float:
        if not tasks:
            return 0.0
        caches = self.caches
        caches.sync(self.table)
        key = tuple(t.task_id for t in tasks)
        cached = caches.set_value.get(key)
        if cached is not None:
            return cached
        workloads = [t.workload for t in tasks]
        total = 0.0
        for idx, task in enumerate(tasks):
            neighbours = workloads[:idx] + workloads[idx + 1 :]
            total += self.task_tnrp(task, neighbours)
        caches.set_value[key] = total
        return total

    def make_state(self, tasks: Sequence[Task] = ()) -> PackState:
        return _TNRPPackState(self, tasks)

    def group_key(self, task: Task) -> tuple:
        """Group also by job arity: RP(j) differs across arities (§4.4)."""
        job = self.jobs.get(task.job_id) if self.multi_task_aware else None
        arity = job.num_tasks if job is not None else 1
        return (task.workload, self.calculator.demand_signature(task), arity)

    def cache_token(self) -> tuple | None:
        # TNRP additionally depends on the (mutable) throughput table;
        # its version counter epochs every value-changing update.  Job
        # RPs/arities are covered by the task ids in the pool
        # fingerprint (jobs are immutable).  The catalog token keeps memo
        # entries from leaking between schedulers priced against
        # different catalogs (satellite-1 bugfix).
        return (
            "tnrp",
            self.multi_task_aware,
            self.calculator.catalog_token,
            self.table.version,
        )
