"""Migration-aware ensemble: choosing Full vs Partial Reconfiguration (§4.5).

At each scheduling period Eva computes both candidate configurations and
adopts Full Reconfiguration iff

    S_F · D̂ − M_F  >  S_P · D̂ − M_P                     (Equation 1)

where ``S`` is the instantaneous provisioning-cost saving of a candidate
(Σ over instances of value − cost), ``M`` its migration cost (task
checkpoint/launch delays and instance acquisition/setup delays, priced at
the involved instances' hourly rates), and ``D̂`` the estimated duration
the new configuration will last.

``D̂`` models job arrivals/completions ("events") as a Poisson process
with rate λ and each event triggering a Full Reconfiguration independently
with probability p, giving a geometric number of events until the next
Full Reconfiguration and

    D̂ = ∫₀^∞ (1 − p)^{λx} dx = −1 / (λ ln(1 − p)).

λ and p are estimated online from observed event and adoption counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.cloud.delays import DelayModel
from repro.cluster.state import ClusterSnapshot, TargetConfiguration, diff_configuration
from repro.core.evaluation import AssignmentEvaluator

#: Bounds keeping the D̂ formula finite with few observations.
_P_MIN, _P_MAX = 1e-3, 1.0 - 1e-3
_LAMBDA_MIN = 1e-6


def mean_time_to_full_reconfig_hours(lambda_per_hour: float, p: float) -> float:
    """Closed-form D̂ = −1/(λ ln(1−p)) with clamped inputs (§4.5)."""
    lam = max(_LAMBDA_MIN, lambda_per_hour)
    p = min(_P_MAX, max(_P_MIN, p))
    return -1.0 / (lam * math.log(1.0 - p))


@dataclass
class PoissonEventEstimator:
    """Online estimates of the event rate λ and trigger probability p.

    Events are job arrivals and completions.  ``p`` uses Laplace smoothing
    (add-one) so early rounds neither pin D̂ at infinity nor at zero.
    """

    prior_rate_per_hour: float = 1.0
    total_events: int = 0
    full_adoptions: int = 0
    first_time_s: float | None = None
    last_time_s: float | None = None

    def record_events(self, count: int, time_s: float) -> None:
        if count < 0:
            raise ValueError("event count must be >= 0")
        if self.first_time_s is None:
            self.first_time_s = time_s
        self.last_time_s = time_s
        self.total_events += count

    def record_decision(self, adopted_full: bool) -> None:
        if adopted_full:
            self.full_adoptions += 1

    @property
    def rate_per_hour(self) -> float:
        """λ — events per hour over the observation window."""
        if (
            self.first_time_s is None
            or self.last_time_s is None
            or self.last_time_s <= self.first_time_s
            or self.total_events == 0
        ):
            return self.prior_rate_per_hour
        hours = (self.last_time_s - self.first_time_s) / 3600.0
        return max(_LAMBDA_MIN, self.total_events / hours)

    @property
    def trigger_probability(self) -> float:
        """p — probability an event triggers a Full Reconfiguration."""
        p = (self.full_adoptions + 1.0) / (self.total_events + 2.0)
        return min(_P_MAX, max(_P_MIN, p))

    def estimated_duration_hours(self) -> float:
        """D̂ for Equation 1."""
        return mean_time_to_full_reconfig_hours(
            self.rate_per_hour, self.trigger_probability
        )


def provisioning_saving(
    target: TargetConfiguration,
    snapshot: ClusterSnapshot,
    evaluator: AssignmentEvaluator,
) -> float:
    """S — Σ over instances of (set value − hourly cost), in $/hr.

    Positive terms mean the packed instance is cheaper than reservation-
    price provisioning of its tasks.
    """
    saving = 0.0
    for ti in target.instances:
        tasks = [snapshot.tasks[tid] for tid in sorted(ti.task_ids)]
        saving += evaluator.set_value(tasks) - ti.hourly_cost
    return saving


def migration_cost(
    target: TargetConfiguration,
    snapshot: ClusterSnapshot,
    delay_model: DelayModel | None = None,
) -> float:
    """M — dollar cost of moving from the snapshot to ``target``.

    Components (§4.5: "task migration delays and the cost of the involved
    instances"):

    * per migrated/placed task: checkpoint delay billed at the source
      instance's rate (when there is a source) plus launch delay billed at
      the destination's rate;
    * per newly launched instance: acquisition + setup delay billed at its
      own rate (paid-but-idle time).
    """
    delays = delay_model or DelayModel()
    diff = diff_configuration(snapshot, target)

    cost = 0.0
    rate_by_id: dict[str, float] = {}
    for state in snapshot.instances:
        rate_by_id[state.instance_id] = state.instance_type.hourly_cost
    for ti in target.instances:
        rate_by_id.setdefault(ti.instance_id, ti.hourly_cost)

    for task_id, src, dst in diff.migrations:
        task = snapshot.tasks[task_id]
        mult = delays.migration_multiplier
        checkpoint_h = task.migration.checkpoint_s * mult / 3600.0
        launch_h = task.migration.launch_s * mult / 3600.0
        if src is not None:
            cost += checkpoint_h * rate_by_id.get(src, 0.0)
        cost += launch_h * rate_by_id.get(dst, 0.0)

    ready_h = delays.instance_ready_s() / 3600.0
    for ti in diff.launches:
        cost += ready_h * ti.hourly_cost
    return cost


@dataclass(frozen=True)
class ReconfigDecision:
    """Record of one ensemble decision (inputs and outcome)."""

    adopted_full: bool
    saving_full: float
    saving_partial: float
    migration_full: float
    migration_partial: float
    duration_estimate_hours: float

    @property
    def net_full(self) -> float:
        return self.saving_full * self.duration_estimate_hours - self.migration_full

    @property
    def net_partial(self) -> float:
        return (
            self.saving_partial * self.duration_estimate_hours
            - self.migration_partial
        )


@dataclass
class EnsemblePolicy:
    """Equation 1 decision-maker with online λ/p estimation."""

    delay_model: DelayModel = field(default_factory=DelayModel)
    estimator: PoissonEventEstimator = field(default_factory=PoissonEventEstimator)
    history: list[ReconfigDecision] = field(default_factory=list)

    def record_events(self, count: int, time_s: float) -> None:
        self.estimator.record_events(count, time_s)

    def decide(
        self,
        full: TargetConfiguration,
        partial: TargetConfiguration,
        snapshot: ClusterSnapshot,
        evaluator: AssignmentEvaluator,
    ) -> tuple[TargetConfiguration, ReconfigDecision]:
        """Pick between the two candidates per Equation 1."""
        d_hat = self.estimator.estimated_duration_hours()
        s_f = provisioning_saving(full, snapshot, evaluator)
        s_p = provisioning_saving(partial, snapshot, evaluator)
        m_f = migration_cost(full, snapshot, self.delay_model)
        m_p = migration_cost(partial, snapshot, self.delay_model)
        adopted_full = s_f * d_hat - m_f > s_p * d_hat - m_p
        decision = ReconfigDecision(
            adopted_full=adopted_full,
            saving_full=s_f,
            saving_partial=s_p,
            migration_full=m_f,
            migration_partial=m_p,
            duration_estimate_hours=d_hat,
        )
        self.history.append(decision)
        self.estimator.record_decision(adopted_full)
        return (full if adopted_full else partial), decision

    def full_adoption_fraction(self) -> float:
        """Fraction of decisions that adopted Full Reconfiguration (Fig. 5a)."""
        if not self.history:
            return 0.0
        return sum(1 for d in self.history if d.adopted_full) / len(self.history)
